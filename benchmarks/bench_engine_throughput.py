"""Engine throughput: compiled float32 serving path vs the training forward.

Not a paper figure — this benchmarks the repo's own inference engine on the
VGG surrogate workload.  Two properties are asserted:

* the compiled float32 engine delivers at least 2x the images/sec of
  ``MimeNetwork.forward`` on the same request stream, and
* the sparsity the engine *measures* while serving round-trips into a
  :class:`~repro.hardware.LayerSparsityProfile` that the systolic-array
  simulator accepts, with every masked conv layer covered by a measurement.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import MultiTaskEngine, compile_network
from repro.mime import MimeNetwork
from repro.models import extract_layer_shapes, vgg_small

TASKS = ("cifar10", "cifar100", "fmnist")
NUM_REQUESTS = 48
MICRO_BATCH = 8
# The target ratio; shared CI runners can lower it via the environment to
# avoid spurious failures from machine noise (locally it defaults to the 2x
# acceptance criterion; typical measurements land at 3-4x).
MIN_SPEEDUP = float(os.environ.get("ENGINE_BENCH_MIN_SPEEDUP", "2.0"))


@pytest.fixture(scope="module")
def served_network():
    rng = np.random.default_rng(42)
    backbone = vgg_small(num_classes=8, input_size=32, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index, name in enumerate(TASKS):
        task = network.add_task(name, num_classes=10 + 5 * index, rng=rng)
        for param in task.thresholds:
            param.data += rng.uniform(0.0, 0.2, size=param.data.shape)
    return network


def _request_stream(rng):
    images = rng.normal(size=(NUM_REQUESTS, 3, 32, 32))
    tasks = [TASKS[i % len(TASKS)] for i in range(NUM_REQUESTS)]
    return images, tasks


def _training_path_throughput(network, images, tasks) -> float:
    start = time.perf_counter()
    for begin in range(0, NUM_REQUESTS, MICRO_BATCH):
        batch_tasks = tasks[begin : begin + MICRO_BATCH]
        for task_name in sorted(set(batch_tasks)):
            rows = [begin + i for i, t in enumerate(batch_tasks) if t == task_name]
            network.forward(images[rows], task=task_name)
    return NUM_REQUESTS / (time.perf_counter() - start)


def test_engine_throughput_vs_training_forward(benchmark, served_network, smoke):
    min_speedup = 1.2 if smoke else MIN_SPEEDUP
    rng = np.random.default_rng(7)
    images, tasks = _request_stream(rng)
    plan = compile_network(served_network, dtype=np.float32)

    # Warm both paths once so BLAS threads and workspaces are initialised.
    _training_path_throughput(served_network, images, tasks)
    warm = MultiTaskEngine(plan, micro_batch=MICRO_BATCH)
    warm.submit(tasks[0], images[:MICRO_BATCH])
    warm.run_pending(mode="singular")

    baseline_ips = _training_path_throughput(served_network, images, tasks)

    engine = MultiTaskEngine(plan, micro_batch=MICRO_BATCH)

    def serve() -> float:
        for index, task_name in enumerate(tasks):
            engine.submit(task_name, images[index])
        start = time.perf_counter()
        engine.run_pending(mode="pipelined")
        return NUM_REQUESTS / (time.perf_counter() - start)

    engine_ips = benchmark.pedantic(serve, rounds=3, iterations=1)

    print()
    print("Engine throughput on the VGG (vgg_small @ 32x32) workload:")
    print(f"  training forward : {baseline_ips:10.1f} images/sec")
    print(f"  compiled engine  : {engine_ips:10.1f} images/sec  "
          f"({engine_ips / baseline_ips:.1f}x)")
    assert engine_ips >= min_speedup * baseline_ips, (
        f"compiled engine ({engine_ips:.1f} img/s) is not {min_speedup}x the "
        f"training forward ({baseline_ips:.1f} img/s)"
    )


def test_engine_measured_sparsity_drives_the_simulator(served_network):
    rng = np.random.default_rng(11)
    images, tasks = _request_stream(rng)
    plan = compile_network(served_network, dtype=np.float32)
    engine = MultiTaskEngine(plan, micro_batch=MICRO_BATCH)
    for index, task_name in enumerate(tasks):
        engine.submit(task_name, images[index])
    engine.run_pending(mode="pipelined")

    profile = engine.sparsity_profile()
    assert sorted(profile.tasks()) == sorted(TASKS)
    # Every masked conv layer carries a measurement for every task.
    conv_names = [name for name in plan.masked_layer_names() if name.startswith("conv")]
    for task_name in TASKS:
        for name in conv_names:
            assert profile.output_sparsity(task_name, name) > 0.0

    report = engine.hardware_report(extract_layer_shapes(served_network.backbone), conv_only=True)
    assert report.total_energy().total > 0
    assert report.total_cycles() > 0
    assert set(report.layer_names()) == set(conv_names)

    print()
    print("Measured-sparsity round-trip (pipelined stream, MIME config):")
    for task_name in TASKS:
        print(f"  {task_name}: mean sparsity {engine.recorder.mean_sparsity(task_name):.3f}")
    print(f"  simulator: {report.total_energy().total:,.0f} energy units, "
          f"{report.total_cycles():,.0f} cycles over {len(engine.recorder.schedule())} images")
