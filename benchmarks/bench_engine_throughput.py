"""Engine throughput: compiled float32 serving path vs the training forward.

Not a paper figure — this benchmarks the repo's own inference engine on the
VGG surrogate workload.  Four properties are asserted:

* the compiled float32 engine delivers at least 2x the images/sec of
  ``MimeNetwork.forward`` on the same request stream,
* the sparsity the engine *measures* while serving round-trips into a
  :class:`~repro.hardware.LayerSparsityProfile` that the systolic-array
  simulator accepts, with every masked conv layer covered by a measurement,
* the per-layer kernel chooser (``autotune_kernel_variants``) beats the
  generic im2col baseline by ``KERNEL_BENCH_MIN_SPEEDUP`` (default 1.3x) on
  the same pipelined drain, with a per-variant forced-drain breakdown
  recorded alongside the chooser aggregate,
* the winograd-forced drain stays at or above its
  ``WINOGRAD_BENCH_MIN_SPEEDUP`` floor vs the im2col baseline, and
* the int8 kernel variant holds its declared accuracy contract (argmax
  agreement with the float32 reference) on the sparse-weight ablation.

``--json OUT`` appends each run's machine-readable entry to a
``BENCH_*.json`` trajectory file (see ``benchmarks/BENCH_kernels.json``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import (
    MultiTaskEngine,
    PlanSpec,
    autotune_kernel_variants,
    calibrate_plan,
    compile_network,
    force_kernel_variant,
    quantize_plan_kernels,
)
from repro.experiments.builders import append_bench_entry
from repro.mime import MimeNetwork
from repro.models import extract_layer_shapes, vgg_small

TASKS = ("cifar10", "cifar100", "fmnist")
NUM_REQUESTS = 48
MICRO_BATCH = 8
# Serving batch for the kernel-variant benchmarks.  The cache-blocked
# variants hold their panel working set at any batch, while the monolithic
# im2col baseline degrades as its column matrix outgrows the caches — batch
# 16 is where the chooser's advantage is fully visible (and is a realistic
# steady-state drain batch: 48 queued requests over 3 tasks).
KERNEL_BENCH_BATCH = 16
# The target ratio; shared CI runners can lower it via the environment to
# avoid spurious failures from machine noise (locally it defaults to the 2x
# acceptance criterion; typical measurements land at 3-4x).
MIN_SPEEDUP = float(os.environ.get("ENGINE_BENCH_MIN_SPEEDUP", "2.0"))
# Chooser-selected kernels vs the generic im2col baseline, same pipelined
# drain.  1.3x is the enforced floor (measurements centre on ~1.6-1.8x at
# KERNEL_BENCH_BATCH but single-core machine noise is large); CI smoke
# relaxes it and shared runners can override via the environment.
KERNEL_MIN_SPEEDUP = float(os.environ.get("KERNEL_BENCH_MIN_SPEEDUP", "1.3"))
# Winograd canary: the winograd-forced drain vs the same im2col baseline.
# Winograd only replaces eligible stride-1 3x3 convs (other layers fall
# back), and on narrow-channel layers its transform passes roughly cancel
# its 2.25x multiply saving in pure-numpy form — so the gate defaults to
# "within a hair of im2col or better", a regression canary rather than a
# speedup claim.  Typical measurements land at 1.1-1.2x.
WINOGRAD_MIN_SPEEDUP = float(os.environ.get("WINOGRAD_BENCH_MIN_SPEEDUP", "0.95"))
# The int8 accuracy contract, measured on the trained surrogate workload:
# the quantized plan's aggregate top-1 accuracy may differ from the float32
# plan's by at most 0.5pp, with a per-image argmax-agreement sanity floor
# (threshold-masked networks flip near-threshold channels under
# quantization noise; the guard-band refinement epilogue keeps decisions
# exact per layer, but propagated value noise still perturbs a small
# fraction of predictions — symmetrically, which is what the delta bound
# captures).
INT8_MAX_DELTA_PP = 0.5
INT8_MIN_AGREEMENT = 0.90


@pytest.fixture(scope="module")
def served_network():
    rng = np.random.default_rng(42)
    backbone = vgg_small(num_classes=8, input_size=32, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index, name in enumerate(TASKS):
        task = network.add_task(name, num_classes=10 + 5 * index, rng=rng)
        for param in task.thresholds:
            param.data += rng.uniform(0.0, 0.2, size=param.data.shape)
    return network


def _request_stream(rng):
    images = rng.normal(size=(NUM_REQUESTS, 3, 32, 32))
    tasks = [TASKS[i % len(TASKS)] for i in range(NUM_REQUESTS)]
    return images, tasks


def _training_path_throughput(network, images, tasks) -> float:
    start = time.perf_counter()
    for begin in range(0, NUM_REQUESTS, MICRO_BATCH):
        batch_tasks = tasks[begin : begin + MICRO_BATCH]
        for task_name in sorted(set(batch_tasks)):
            rows = [begin + i for i, t in enumerate(batch_tasks) if t == task_name]
            network.forward(images[rows], task=task_name)
    return NUM_REQUESTS / (time.perf_counter() - start)


def test_engine_throughput_vs_training_forward(benchmark, served_network, smoke):
    min_speedup = 1.2 if smoke else MIN_SPEEDUP
    rng = np.random.default_rng(7)
    images, tasks = _request_stream(rng)
    plan = compile_network(served_network, dtype=np.float32)

    # Warm both paths once so BLAS threads and workspaces are initialised.
    _training_path_throughput(served_network, images, tasks)
    warm = MultiTaskEngine(plan, micro_batch=MICRO_BATCH)
    warm.submit(tasks[0], images[:MICRO_BATCH])
    warm.run_pending(mode="singular")

    baseline_ips = _training_path_throughput(served_network, images, tasks)

    engine = MultiTaskEngine(plan, micro_batch=MICRO_BATCH)

    def serve() -> float:
        for index, task_name in enumerate(tasks):
            engine.submit(task_name, images[index])
        start = time.perf_counter()
        engine.run_pending(mode="pipelined")
        return NUM_REQUESTS / (time.perf_counter() - start)

    engine_ips = benchmark.pedantic(serve, rounds=3, iterations=1)

    print()
    print("Engine throughput on the VGG (vgg_small @ 32x32) workload:")
    print(f"  training forward : {baseline_ips:10.1f} images/sec")
    print(f"  compiled engine  : {engine_ips:10.1f} images/sec  "
          f"({engine_ips / baseline_ips:.1f}x)")
    assert engine_ips >= min_speedup * baseline_ips, (
        f"compiled engine ({engine_ips:.1f} img/s) is not {min_speedup}x the "
        f"training forward ({baseline_ips:.1f} img/s)"
    )


def _drain_throughput(plan, images, tasks, micro_batch=MICRO_BATCH) -> float:
    """Images/sec for one pipelined drain of the request stream on ``plan``."""
    engine = MultiTaskEngine(plan, micro_batch=micro_batch)
    for index, task_name in enumerate(tasks):
        engine.submit(task_name, images[index])
    start = time.perf_counter()
    engine.run_pending(mode="pipelined")
    return NUM_REQUESTS / (time.perf_counter() - start)


def test_kernel_chooser_vs_im2col_baseline(served_network, smoke, bench_json):
    """Chooser-selected kernel variants beat the generic im2col engine path.

    Alongside the chooser aggregate, every conv lowering is also drained
    with that variant *forced* on all eligible layers, so the recorded
    trajectory entry breaks the speedup down per variant rather than only
    reporting the chooser's blend.
    """
    # An explicit KERNEL_BENCH_MIN_SPEEDUP wins even in smoke mode — that is
    # how CI pins its shared-runner gate; otherwise smoke relaxes to 1.05.
    if "KERNEL_BENCH_MIN_SPEEDUP" in os.environ:
        min_speedup = KERNEL_MIN_SPEEDUP
    else:
        min_speedup = 1.05 if smoke else KERNEL_MIN_SPEEDUP
    rng = np.random.default_rng(7)
    images, tasks = _request_stream(rng)

    baseline = compile_network(served_network, dtype=np.float32)
    tuned = PlanSpec.from_plan(baseline).build()
    choices = autotune_kernel_variants(tuned, batch=KERNEL_BENCH_BATCH, seed=0)
    contenders = {"im2col": baseline}
    for variant in ("blocked", "packed", "direct", "winograd"):
        plan = PlanSpec.from_plan(baseline).build()
        force_kernel_variant(plan, variant)
        contenders[variant] = plan
    contenders["tuned"] = tuned

    # Warm every plan (BLAS threads, workspace pools, cached weight
    # layouts), then interleave the measured rounds so machine noise hits
    # all contenders symmetrically.
    for plan in contenders.values():
        _drain_throughput(plan, images, tasks, KERNEL_BENCH_BATCH)
    # Best-of-5 interleaved rounds: single-core VM throughput swings by
    # tens of percent over seconds, and best-of absorbs the slow windows.
    rounds = 1 if smoke else 5
    best = dict.fromkeys(contenders, 0.0)
    for _ in range(rounds):
        for name, plan in contenders.items():
            best[name] = max(
                best[name], _drain_throughput(plan, images, tasks, KERNEL_BENCH_BATCH)
            )
    baseline_ips = best["im2col"]
    tuned_ips = best["tuned"]
    speedup = tuned_ips / baseline_ips

    print()
    print("Per-layer kernel chooser on the vgg_small @ 32x32 workload:")
    for name, ips in best.items():
        print(f"  {name:9s}: {ips:10.1f} images/sec  ({ips / baseline_ips:.2f}x)")
    print("  choices: " + ", ".join(f"{k}={v}" for k, v in choices.items()))
    if bench_json:
        append_bench_entry(bench_json, {
            "pr": 7,
            "date": time.strftime("%Y-%m-%d"),
            "command": "pytest benchmarks/bench_engine_throughput.py::"
                       "test_kernel_chooser_vs_im2col_baseline",
            "workload": "vgg_small@32 x3tasks",
            "requests": NUM_REQUESTS,
            "micro_batch": KERNEL_BENCH_BATCH,
            "report": {
                "baseline_images_per_sec": baseline_ips,
                "tuned_images_per_sec": tuned_ips,
                "speedup": speedup,
                "kernel_choices": choices,
                "variant_breakdown": {
                    name: {
                        "images_per_sec": ips,
                        "speedup": ips / baseline_ips,
                    }
                    for name, ips in best.items()
                },
            },
        })
    assert tuned_ips >= min_speedup * baseline_ips, (
        f"chooser-selected kernels ({tuned_ips:.1f} img/s) are not "
        f"{min_speedup}x the im2col baseline ({baseline_ips:.1f} img/s)"
    )


def test_winograd_drain_holds_its_floor(served_network, smoke):
    """The winograd-forced drain stays at or above its declared floor.

    A regression canary for the F(2x2, 3x3) lowering: the whole vgg_small
    drain with winograd forced on every eligible conv must not fall below
    ``WINOGRAD_BENCH_MIN_SPEEDUP`` times the im2col baseline.  See the
    constant's comment for why the default floor sits near parity.
    """
    if "WINOGRAD_BENCH_MIN_SPEEDUP" in os.environ:
        floor = WINOGRAD_MIN_SPEEDUP
    else:
        floor = 0.85 if smoke else WINOGRAD_MIN_SPEEDUP
    rng = np.random.default_rng(7)
    images, tasks = _request_stream(rng)

    baseline = compile_network(served_network, dtype=np.float32)
    wino = PlanSpec.from_plan(baseline).build()
    force_kernel_variant(wino, "winograd")

    _drain_throughput(baseline, images, tasks, KERNEL_BENCH_BATCH)
    _drain_throughput(wino, images, tasks, KERNEL_BENCH_BATCH)
    rounds = 1 if smoke else 3
    baseline_ips = wino_ips = 0.0
    for _ in range(rounds):
        baseline_ips = max(
            baseline_ips, _drain_throughput(baseline, images, tasks, KERNEL_BENCH_BATCH)
        )
        wino_ips = max(
            wino_ips, _drain_throughput(wino, images, tasks, KERNEL_BENCH_BATCH)
        )

    print()
    print(f"Winograd drain: {wino_ips:.1f} img/s vs im2col {baseline_ips:.1f} "
          f"img/s ({wino_ips / baseline_ips:.2f}x, floor {floor}x)")
    assert wino_ips >= floor * baseline_ips, (
        f"winograd drain ({wino_ips:.1f} img/s) fell below {floor}x the "
        f"im2col baseline ({baseline_ips:.1f} img/s)"
    )


def test_int8_accuracy_delta_on_sparse_weight_workload(trained_workload, smoke, bench_json):
    """Int8 holds the declared <= 0.5pp aggregate accuracy delta vs float32.

    Measured on the trained surrogate MIME workload (real thresholds, real
    per-task structured sparsity — the workload behind the sparse-weight
    ablation's accuracy baselines), against a large freshly-sampled
    evaluation set from the identical class generators: the synthetic task
    builders draw class prototypes from the per-task seed before any
    samples, so rebuilding the child tasks with a larger ``samples_per_class``
    yields more held-out images of the *same* classification problems.
    """
    from repro.datasets import DataLoader, build_child_tasks
    from repro.utils.rng import new_rng

    workload = trained_workload
    network = workload.mime_network
    network.eval()
    plan = compile_network(network, dtype=np.float32)
    profile = calibrate_plan(plan, batch_size=32, seed=5)
    quantized = PlanSpec.from_plan(plan).build()
    quantize_plan_kernels(quantized, profile)

    config = workload.config
    eval_tasks = build_child_tasks(
        scale=config.task_scale,
        backbone_size=config.backbone_input_size,
        samples_per_class=64 if smoke else 256,
    )
    rng = new_rng(123)
    totals = {"images": 0, "float32": 0, "int8": 0, "agree": 0}
    per_task = {}
    for task in eval_tasks:
        loader = DataLoader(task.test, batch_size=32, shuffle=False, rng=rng)
        n = f32_ok = int8_ok = agree = 0
        for images, labels in loader:
            ref = plan.run(images, task.name).argmax(axis=1)
            out = quantized.run(images, task.name).argmax(axis=1)
            n += len(labels)
            agree += int((ref == out).sum())
            f32_ok += int((ref == labels).sum())
            int8_ok += int((out == labels).sum())
        per_task[task.name] = (n, f32_ok / n, int8_ok / n, agree / n)
        for key, value in zip(("images", "float32", "int8", "agree"),
                              (n, f32_ok, int8_ok, agree)):
            totals[key] += value
    delta_pp = 100.0 * (totals["int8"] - totals["float32"]) / totals["images"]
    agreement = totals["agree"] / totals["images"]

    print()
    print("Int8 accuracy contract on the trained sparse-weight workload:")
    for name, (n, f32_acc, int8_acc, task_agree) in per_task.items():
        print(f"  {name:10s} n={n:4d}  acc(f32)={f32_acc:.4f}  acc(int8)={int8_acc:.4f}  "
              f"argmax agreement={task_agree:.4f}")
    print(f"  aggregate delta: {delta_pp:+.3f}pp over {totals['images']} images  "
          f"[contract: |delta| <= {INT8_MAX_DELTA_PP}pp]")
    if bench_json:
        append_bench_entry(bench_json, {
            "pr": 7,
            "date": time.strftime("%Y-%m-%d"),
            "command": "pytest benchmarks/bench_engine_throughput.py::"
                       "test_int8_accuracy_delta_on_sparse_weight_workload",
            "workload": "trained fast_config surrogate",
            "report": {
                "accuracy_delta_pp": delta_pp,
                "argmax_agreement": agreement,
                "per_task": {
                    name: {"n": n, "acc_float32": f, "acc_int8": q, "agreement": a}
                    for name, (n, f, q, a) in per_task.items()
                },
            },
        })
    assert abs(delta_pp) <= INT8_MAX_DELTA_PP, (
        f"int8 aggregate accuracy delta {delta_pp:+.3f}pp breaks the declared "
        f"<= {INT8_MAX_DELTA_PP}pp contract"
    )
    assert agreement >= INT8_MIN_AGREEMENT, (
        f"int8 argmax agreement {agreement:.4f} fell below the "
        f">= {INT8_MIN_AGREEMENT} sanity floor"
    )


def test_engine_measured_sparsity_drives_the_simulator(served_network):
    rng = np.random.default_rng(11)
    images, tasks = _request_stream(rng)
    plan = compile_network(served_network, dtype=np.float32)
    engine = MultiTaskEngine(plan, micro_batch=MICRO_BATCH)
    for index, task_name in enumerate(tasks):
        engine.submit(task_name, images[index])
    engine.run_pending(mode="pipelined")

    profile = engine.sparsity_profile()
    assert sorted(profile.tasks()) == sorted(TASKS)
    # Every masked conv layer carries a measurement for every task.
    conv_names = [name for name in plan.masked_layer_names() if name.startswith("conv")]
    for task_name in TASKS:
        for name in conv_names:
            assert profile.output_sparsity(task_name, name) > 0.0

    report = engine.hardware_report(extract_layer_shapes(served_network.backbone), conv_only=True)
    assert report.total_energy().total > 0
    assert report.total_cycles() > 0
    assert set(report.layer_names()) == set(conv_names)

    print()
    print("Measured-sparsity round-trip (pipelined stream, MIME config):")
    for task_name in TASKS:
        print(f"  {task_name}: mean sparsity {engine.recorder.mean_sparsity(task_name):.3f}")
    print(f"  simulator: {report.total_energy().total:,.0f} energy units, "
          f"{report.total_cycles():,.0f} cycles over {len(engine.recorder.schedule())} images")
