"""Figure 4 (and Figure 1): off-chip DRAM storage, conventional vs MIME.

Paper claim: storing ``{W_parent, T_child-1..n}`` instead of one fine-tuned
weight set per child task saves ~3.48x DRAM for 3 child tasks, and the saving
grows with the number of child tasks.
"""

from __future__ import annotations

from repro.experiments.figures import figure4_dram_storage
from repro.experiments.report import render_table
from benchmarks.conftest import run_once


def test_fig4_dram_storage(benchmark):
    result = run_once(benchmark, figure4_dram_storage, max_tasks=6)

    curve = result["curve"]
    rows = [
        [int(n), conv, mime, ratio]
        for n, conv, mime, ratio in zip(
            curve["num_tasks"], curve["conventional_mb"], curve["mime_mb"], curve["saving_ratio"]
        )
    ]
    print()
    print(
        render_table(
            ["child tasks", "conventional (MB)", "MIME (MB)", "saving"],
            rows,
            title="Figure 4 — off-chip DRAM storage vs number of child tasks",
        )
    )
    print(
        f"3-child saving: reproduced {result['saving_ratio_3_tasks']:.2f}x "
        f"(paper {result['paper_saving_ratio']:.2f}x)"
    )

    # Shape checks: MIME is much smaller, the saving is ~3x for 3 children and
    # grows monotonically with the number of child tasks.
    assert result["mime_mb"] < result["conventional_mb"]
    assert 2.5 < result["saving_ratio_3_tasks"] < 4.5
    ratios = curve["saving_ratio"]
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))
