"""Figure 6: layerwise energy in Pipelined task mode (Case-1 / Case-2 / MIME).

Paper claims: MIME saves ~2.4-3.1x vs Case-1 and ~1.3-2.4x vs Case-2, with the
DRAM and scratchpad savings most pronounced in the later convolutional layers.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure5_singular_energy, figure6_pipelined_energy
from repro.experiments.report import render_energy_report, render_ratio_table
from benchmarks.conftest import run_once


def test_fig6_pipelined_energy(benchmark):
    result = run_once(benchmark, figure6_pipelined_energy)

    print()
    print(
        render_energy_report(
            result["reports"],
            result["layer_names"],
            title="Figure 6 — Pipelined task mode, layerwise total energy (MAC-normalised)",
        )
    )
    print(render_ratio_table(result["mime_vs_case1"], title="MIME saving vs Case-1 (paper: 2.4-3.1x)"))
    print(render_ratio_table(result["mime_vs_case2"], title="MIME saving vs Case-2 (paper: 1.3-2.4x)"))

    ratios1 = [v for k, v in result["mime_vs_case1"].items() if k != "conv1"]
    ratios2 = [v for k, v in result["mime_vs_case2"].items() if k != "conv1"]
    assert 2.2 < min(ratios1) and max(ratios1) < 3.3
    assert 1.15 < min(ratios2) and max(ratios2) < 2.5

    # The pipelined advantage must exceed the singular-mode advantage — the
    # central argument of the paper.
    singular = figure5_singular_energy()
    assert np.mean(ratios2) > np.mean(list(singular["mime_vs_case2"].values()))

    # Savings vs Case-2 grow towards the deeper layers (weight re-fetch dominates).
    assert result["mime_vs_case2"]["conv13"] > result["mime_vs_case2"]["conv2"]
