"""Table II: MIME child-task accuracy and average layerwise neuronal sparsity.

Reproduced on the synthetic surrogate workload (see DESIGN.md): absolute
accuracies differ from the paper, but the structure — all three child tasks
learn well above chance with frozen parent weights, and the threshold masks
produce substantial (and larger-than-ReLU) activation sparsity — is checked.
"""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.report import render_sparsity_table
from repro.experiments.tables import paper_table2_reference, table2_mime_accuracy_and_sparsity
from benchmarks.conftest import run_once


def test_table2_mime_accuracy_and_sparsity(benchmark, trained_workload):
    table = run_once(benchmark, table2_mime_accuracy_and_sparsity, trained_workload)

    print()
    print(
        render_sparsity_table(
            table,
            title="Table II (reproduced on surrogate workload) — MIME accuracy (fraction) and layerwise sparsity",
        )
    )
    print(
        render_sparsity_table(
            paper_table2_reference(),
            layer_names=paper_data.PAPER_REPORTED_LAYERS,
            title="Table II (paper-reported) — accuracy (%) and layerwise sparsity",
        )
    )

    for task, row in table.items():
        chance = 1.0 / trained_workload.registry_num_classes(task) if hasattr(
            trained_workload, "registry_num_classes"
        ) else 1.0 / next(
            t.num_classes for t in trained_workload.child_tasks if t.name == task
        )
        assert row["test_accuracy"] > chance, f"{task} did not learn above chance"
        assert 0.0 < row["mean_sparsity"] < 1.0
