"""Figure 8: MIME vs 90 %-pruned conventional models in Pipelined task mode.

Paper claims: the pruned models win in the earliest layers (no threshold
fetches, and thresholds outnumber weights there), MIME wins from conv5 onwards
by ~1.36-2.0x because it avoids re-fetching weights for every task in the
pipeline.  The crossover mechanism is the parameter DRAM traffic, which is
reported separately from the total energy.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure8_vs_pruned
from repro.experiments.report import render_table
from benchmarks.conftest import run_once


def test_fig8_vs_pruned(benchmark):
    result = run_once(benchmark, figure8_vs_pruned)

    rows = [
        [layer, result["pruned_total_by_layer"][layer], result["mime_total_by_layer"][layer],
         result["pruned_over_mime"][layer], result["param_dram_pruned_over_mime"][layer]]
        for layer in result["layer_names"]
    ]
    print()
    print(
        render_table(
            ["layer", "pruned energy", "MIME energy", "pruned/MIME (total)", "pruned/MIME (param DRAM)"],
            rows,
            title="Figure 8 — Pipelined mode: MIME vs 90%-pruned conventional models",
        )
    )
    print(f"MIME wins (total energy): {result['mime_wins']}")
    print(f"pruned wins (total energy): {result['pruned_wins']}")
    print(f"MIME wins (parameter DRAM traffic): {result['param_dram_mime_wins']}")
    print(
        "paper: pruned wins conv2/conv4, MIME wins conv5 onwards by "
        f"{result['paper_late_layer_saving'][0]}-{result['paper_late_layer_saving'][1]}x"
    )

    param_ratio = result["param_dram_pruned_over_mime"]
    # Crossover on the parameter-DRAM mechanism: thresholds dominate the first
    # layers (pruned wins), weights dominate later (MIME wins).
    assert param_ratio["conv2"] < 1.0
    assert param_ratio["conv4"] < 1.05
    assert param_ratio["conv8"] > 1.2
    assert param_ratio["conv13"] > 1.5

    # Total-energy band in the latter layers matches the paper's 1.36-2.0x window.
    late = [result["pruned_over_mime"][f"conv{i}"] for i in range(8, 14)]
    assert min(late) > 1.2 and max(late) < 2.2


def test_fig8_pruned_model_generation(benchmark, pruned_workload):
    """The Fig. 8 comparison models: pruned at init to 90 % layerwise weight
    sparsity and trained to usable accuracy on each child task."""

    def summarize():
        return {
            task: (
                pruned_workload.pruned_weight_sparsity[task],
                pruned_workload.pruned_accuracy[task],
            )
            for task in pruned_workload.pruned_accuracy
        }

    summary = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["task", "weight sparsity", "test accuracy"],
            [[task, sparsity, accuracy] for task, (sparsity, accuracy) in summary.items()],
            title="Figure 8 comparison models — 90% pruned-at-init child models (surrogate workload)",
        )
    )
    target = pruned_workload.config.pruned_sparsity
    accuracy_margins = []
    for task, (sparsity, accuracy) in summary.items():
        chance = 1.0 / next(
            t.num_classes for t in pruned_workload.child_tasks if t.name == task
        )
        assert sparsity > target - 0.05, f"{task} not pruned to ~{target:.0%}"
        assert accuracy >= chance - 0.05, f"{task} pruned model collapsed below chance"
        accuracy_margins.append(accuracy - chance)
    # At 90 % sparsity the tiny surrogate backbones are heavily crippled (the
    # paper trains full VGG16s to near iso-accuracy); we only require that the
    # pruned models learn above chance on average.
    assert np.mean(accuracy_margins) >= 0.0
