"""Many-task serving: cross-task batch coalescing vs per-task-affinity batching.

Not a paper figure — this benchmarks the repo's own many-task serving regime
(ROADMAP: 50-200 tasks, where per-task plan memory and task-switch cost start
to dominate).  The paper's premise is that N tasks share one frozen backbone
and differ only in per-task threshold masks + FC head, so a micro-batch mixing
rows of several tasks can execute as **one** shared-backbone pass with a
per-row mask epilogue.  Three properties are asserted:

* at the primary task count (100 full / 50 smoke) on a zipf long-tail mix of
  dense plans, coalesced mixed-task batching delivers at least
  ``MANYTASK_BENCH_MIN_SPEEDUP``x (1.5x; 1.1x under ``--smoke``) the
  images/sec of today's per-task-affinity batching.  Throughput is measured
  as a *closed-loop bounded-admission drain* — the runtime is started first
  and the trace submitted with blocking admission against ``max_pending`` of
  two micro-batches, the production configuration (the serving examples
  default to a bounded queue).  That is the regime where the many-task cost
  is real: a bounded queue cannot hold deep per-task buckets for 100 tasks,
  so affinity micro-batches close by the ``max_wait`` timer with one or two
  rows each, while the coalescing batcher keeps filling full micro-batches
  from the very same queue.  Plans run the chooser-tuned kernel variants
  (``autotune_kernel_variants`` at the serving micro-batch), as serving
  would, and each configuration takes the best of three drains (shared-host
  noise shows up as multi-hundred-ms stalls, never as a speedup);
* coalescing never changes *what* is computed: every coalesced mixed-task
  batch is bit-identical to per-task singular execution of the same rows,
  verified through both serving backends (row *grouping* matters at the ULP
  level — BLAS reduces single-row GEMMs in a different order — so the exact
  contract is same-rows, not same-request-under-any-batching);
* the deduplicated plan memory stays flat: a 100-task ``PlanSet`` (per-task
  bit-exact specialized plans) holds at most 3x the *shared* plan bytes of a
  single-task set, and the v4 ``PlanSetSpec`` pickle a sharded spawn ships
  carries the backbone once (at least 4x smaller than the per-task-copy
  capture).

Set ``BENCH_RECORD=path.json`` to append this run's numbers to the
``BENCH_manytask.json`` trajectory file.

Run standalone with ``pytest benchmarks/bench_manytask.py -s``; pass
``--smoke`` for the seconds-scale CI configuration.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro.engine import autotune_kernel_variants, compile_network, specialize_tasks
from repro.engine.planspec import PlanSetSpec
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_small, vgg_tiny
from repro.serving import BACKENDS, LoadGenerator, ServingRuntime
from repro.serving.base import PlanSet


def _ratio_from_env(name: str, default: float, smoke_default: float, smoke: bool) -> float:
    """An explicitly-set env override always wins; --smoke only relaxes defaults."""
    value = os.environ.get(name)
    if value is not None:
        return float(value)
    return smoke_default if smoke else default


def _build_plan(num_tasks: int, smoke: bool, tune_batch: int | None = None):
    rng = np.random.default_rng(1234)
    if smoke:
        backbone = vgg_tiny(num_classes=8, input_size=16, in_channels=3, rng=rng)
    else:
        backbone = vgg_small(num_classes=8, input_size=32, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index in range(num_tasks):
        add_structured_sparsity_task(
            network, f"task{index:03d}", num_classes=10, rng=rng,
            dead_fraction=0.3, threshold_jitter=0.2,
        )
    plan = compile_network(network, dtype=np.float32)
    if tune_batch is not None:
        # Serve what serving would serve: the chooser-tuned kernel variants at
        # the micro-batch size the drain uses.  Timings are memoised process-
        # wide by layer geometry, so the sweep's other task counts reuse them.
        autotune_kernel_variants(plan, batch=tune_batch, seed=0)
    return plan


def _image_pools(plan, per_task: int = 4):
    rng = np.random.default_rng(5)
    return {
        task: rng.normal(size=(per_task,) + tuple(plan.input_shape))
        for task in plan.task_names()
    }


def _drain(
    plan,
    pools,
    trace,
    *,
    coalesce,
    micro_batch,
    workers,
    backend="thread",
    max_pending=0,
    repeats=1,
):
    """Drain the trace and return the (best) report plus per-request logits.

    With ``max_pending=0`` the whole trace is pre-queued before the runtime
    starts — batch composition is then deterministic (buckets close on the
    size trigger alone), which is what the bit-identity check needs.  With a
    bound, the runtime starts *first* and the trace is submitted with
    blocking admission: the closed-loop production regime the throughput
    comparison measures, where the queue can never hold more than
    ``max_pending`` rows and fragmented per-task buckets close by the
    ``max_wait`` timer.  ``repeats`` re-runs the drain and keeps the highest
    throughput (host noise only ever slows a run down).
    """
    tasks = plan.task_names()
    generator = LoadGenerator.zipf(tasks, rate=1000.0)  # trace passed explicitly
    best_report = None
    best_logits = None
    for _ in range(max(1, repeats)):
        runtime = BACKENDS[backend](
            plan,
            policy="fifo-deadline",
            micro_batch=micro_batch,
            max_wait=0.02,
            workers=workers,
            coalesce=coalesce,
            max_pending=max_pending,
        )
        if max_pending:
            runtime.start()
        futures = generator.replay(
            runtime, pools, num_requests=len(trace), time_scale=0.0, trace=trace
        )
        if not max_pending:
            runtime.start()
        report = runtime.stop(drain=True)
        logits = []
        for future in futures:
            assert future is not None and future.done()
            logits.append(future.result(timeout=0))
        if best_report is None or report.throughput > best_report.throughput:
            best_report, best_logits = report, logits
    return best_report, best_logits


def _verify_bit_identity(plan, pools, trace, *, micro_batch, backend):
    """Coalesced batches must match singular execution of the same rows.

    Dense tasks form one coalescing group, so with every request submitted
    up front and a single worker the coalesced micro-batches are exactly the
    consecutive ``micro_batch``-sized slices of the trace — which makes the
    per-task singular reference reconstructible here: group each slice's rows
    by task, run each group through ``plan.run``, and demand bit-equality.
    """
    _, logits = _drain(
        plan, pools, trace, coalesce=True,
        micro_batch=micro_batch, workers=1, backend=backend, max_pending=0,
    )
    counters: dict = {}
    images = []
    for arrival in trace:
        number = counters.get(arrival.task, 0)
        counters[arrival.task] = number + 1
        pool = pools[arrival.task]
        images.append(pool[number % len(pool)])
    for start in range(0, len(trace), micro_batch):
        stop = min(start + micro_batch, len(trace))
        rows_of: dict = {}
        for index in range(start, stop):
            rows_of.setdefault(trace[index].task, []).append(index)
        for task, rows in rows_of.items():
            reference = plan.run(np.stack([images[r] for r in rows]), task)
            for position, index in enumerate(rows):
                assert np.array_equal(logits[index], reference[position]), (
                    f"request {index} ({task}), {backend} backend: coalesced "
                    f"logits differ from singular execution of the same rows"
                )


def _record_entry(entry: dict) -> None:
    path = os.environ.get("BENCH_RECORD")
    if not path:
        return
    file = Path(path)
    payload = json.loads(file.read_text()) if file.exists() else {"entries": []}
    payload["entries"].append(entry)
    file.write_text(json.dumps(payload, indent=2) + "\n")


def test_coalesced_batching_beats_task_affinity(smoke):
    min_speedup = _ratio_from_env("MANYTASK_BENCH_MIN_SPEEDUP", 1.5, 1.1, smoke)
    task_counts = (10, 50) if smoke else (10, 50, 100, 200)
    primary = 50 if smoke else 100
    micro_batch = 8 if smoke else 16
    # Bounded admission: two micro-batches of queue, the production shape
    # (the serving examples run a bounded queue too).  One worker — the
    # reference container is single-core, where a second worker only makes
    # the two drain modes thrash each other's cache.
    max_pending = 2 * micro_batch
    workers = 1
    repeats = 5
    model = "vgg_tiny@16" if smoke else "vgg_small@32"

    rows = []
    sweep = []
    speedup_at_primary = None
    for count in task_counts:
        plan = _build_plan(count, smoke, tune_batch=micro_batch)
        pools = _image_pools(plan)
        num_requests = max(64, 2 * count) if smoke else max(192, 3 * count)
        trace = LoadGenerator.zipf(plan.task_names(), rate=1000.0, seed=17).trace(
            num_requests
        )
        if count == task_counts[0]:
            # Warm BLAS/workspaces once so the first measured config does not
            # absorb one-time setup cost.
            _drain(plan, pools, trace[:32], coalesce=False,
                   micro_batch=micro_batch, workers=workers)
        affinity, affinity_logits = _drain(
            plan, pools, trace, coalesce=False,
            micro_batch=micro_batch, workers=workers,
            max_pending=max_pending, repeats=repeats,
        )
        coalesced, coalesced_logits = _drain(
            plan, pools, trace, coalesce=True,
            micro_batch=micro_batch, workers=workers,
            max_pending=max_pending, repeats=repeats,
        )
        for report, label in ((affinity, "affinity"), (coalesced, "coalesced")):
            assert report.completed == num_requests, (
                f"{label}@{count} tasks lost requests: "
                f"{report.completed}/{num_requests}"
            )
        speedup = coalesced.throughput / affinity.throughput
        planset = PlanSet(plan, {})
        entry = {
            "tasks": count,
            "requests": num_requests,
            "affinity_ips": round(affinity.throughput, 1),
            "coalesced_ips": round(coalesced.throughput, 1),
            "speedup": round(speedup, 3),
            "affinity_switch_rate": round(
                affinity.task_switches / max(1, affinity.num_batches), 3
            ),
            "coalesced_switch_rate": round(
                coalesced.task_switches / max(1, coalesced.num_batches), 3
            ),
            "affinity_mean_batch": round(num_requests / max(1, affinity.num_batches), 2),
            "coalesced_mean_batch": round(num_requests / max(1, coalesced.num_batches), 2),
            "planset_bytes": planset.plan_bytes(),
            "planset_shared_bytes": planset.plan_bytes(shared_only=True),
            "per_task_bytes": round(
                (planset.plan_bytes() - planset.plan_bytes(shared_only=True)) / count
            ),
        }
        sweep.append(entry)
        rows.append(
            f"  {count:4d} tasks | affinity {affinity.throughput:8.1f} img/s "
            f"(switch rate {entry['affinity_switch_rate']:.2f}, "
            f"mean batch {entry['affinity_mean_batch']:5.2f}) | "
            f"coalesced {coalesced.throughput:8.1f} img/s "
            f"(switch rate {entry['coalesced_switch_rate']:.2f}, "
            f"mean batch {entry['coalesced_mean_batch']:5.2f}) | "
            f"{speedup:.2f}x"
        )
        if count == primary:
            speedup_at_primary = speedup
            # Exactness contract: every coalesced mixed-task batch must be
            # bit-identical to running the *same rows* as per-task singular
            # batches.  (Row grouping matters at the ULP level: BLAS takes a
            # gemv path for single-row GEMMs with a different reduction order,
            # so only same-rows comparisons can be exact.)  Verified through
            # both serving backends on a subset of the trace.
            subset = trace[:48]
            for backend in ("thread", "process"):
                _verify_bit_identity(
                    plan, pools, subset, micro_batch=micro_batch, backend=backend
                )

    print()
    print(f"Many-task coalescing ({model}, zipf mix, dense plans, tuned kernels, "
          f"micro-batch {micro_batch}, max_pending {max_pending}, "
          f"{workers} worker, best of {repeats}):")
    for row in rows:
        print(row)
    print(f"  speedup at {primary} tasks: {speedup_at_primary:.2f}x "
          f"(required {min_speedup}x)")

    _record_entry({
        "date": time.strftime("%Y-%m-%d"),
        "bench": "coalescing_throughput",
        "workload": f"{model} zipf dense, closed-loop bounded admission",
        "smoke": smoke,
        "micro_batch": micro_batch,
        "max_pending": max_pending,
        "workers": workers,
        "sweep": sweep,
        "primary_tasks": primary,
        "primary_speedup": round(speedup_at_primary, 3),
    })
    assert speedup_at_primary >= min_speedup, (
        f"coalesced batching delivers only {speedup_at_primary:.2f}x the "
        f"per-task-affinity throughput at {primary} tasks "
        f"(required {min_speedup}x)"
    )


def test_plan_memory_and_spawn_pickle_stay_flat(smoke):
    """Dedup keeps shared plan bytes O(1) and the spawn pickle near-O(1) in N.

    Model scale is irrelevant to a memory measurement, so this always runs on
    vgg_tiny; the task count is the acceptance regime's 100 (40 under
    ``--smoke`` to stay seconds-scale).
    """
    num_tasks = 40 if smoke else 100
    plan = _build_plan(num_tasks, smoke=True)
    # Bit-exact specialization maximises pass-through sharing: every array a
    # per-task plan does not reshape stays the dense plan's own object.
    specialized = specialize_tasks(plan, compact_reduction=False)
    single_plan = _build_plan(1, smoke=True)
    single_specialized = specialize_tasks(single_plan, compact_reduction=False)

    many = PlanSet(plan, specialized)
    single = PlanSet(single_plan, single_specialized)
    many_shared = many.plan_bytes(shared_only=True)
    single_shared = single.plan_bytes(shared_only=True)
    per_task = (many.plan_bytes() - many_shared) / num_tasks

    dedup = PlanSetSpec.capture(plan, specialized)
    plain = PlanSetSpec.capture(plan, specialized, dedup=False)
    dedup_bytes = len(pickle.dumps(dedup))
    plain_bytes = len(pickle.dumps(plain))

    print()
    print(f"Plan memory at {num_tasks} tasks (vgg_tiny, bit-exact specialized):")
    print(f"  shared plan bytes      : {many_shared:12,d} "
          f"({many_shared / single_shared:.2f}x single-task)")
    print(f"  per-task payload       : {per_task:12,.0f} bytes/task "
          f"(thresholds + FC head)")
    print(f"  spawn pickle (v4 dedup): {dedup_bytes:12,d} bytes")
    print(f"  spawn pickle (plain)   : {plain_bytes:12,d} bytes "
          f"({plain_bytes / dedup_bytes:.1f}x larger)")

    _record_entry({
        "date": time.strftime("%Y-%m-%d"),
        "bench": "plan_memory",
        "tasks": num_tasks,
        "smoke": smoke,
        "shared_bytes": many_shared,
        "shared_bytes_single_task": single_shared,
        "per_task_bytes": round(per_task),
        "pickle_dedup_bytes": dedup_bytes,
        "pickle_plain_bytes": plain_bytes,
        "pickle_ratio": round(plain_bytes / dedup_bytes, 2),
    })
    assert many_shared <= 3 * single_shared, (
        f"{num_tasks}-task PlanSet holds {many_shared / single_shared:.1f}x the "
        f"shared plan bytes of a single-task set (allowed 3x) — backbone "
        f"deduplication regressed"
    )
    assert dedup_bytes * 4 <= plain_bytes, (
        f"v4 spawn pickle is only {plain_bytes / dedup_bytes:.1f}x smaller than "
        f"the per-task-copy capture at {num_tasks} tasks (expected >=4x) — "
        f"tensor interning regressed"
    )
