"""Figure 9: MIME energy under reduced PE-array size and reduced cache size.

Paper claims: shrinking the PE array from 1024 to 256 raises the energy of the
intermediate convolutional layers (extra DRAM re-fetches of the task
parameters), while shrinking the cache from 156 KB to 128 KB has a much milder
effect — so the design should favour a large PE array over a large cache.
"""

from __future__ import annotations

from repro.experiments.figures import figure9_ablation
from repro.experiments.report import render_table
from benchmarks.conftest import run_once


def test_fig9_pe_and_cache_ablation(benchmark):
    result = run_once(benchmark, figure9_ablation)

    totals = result["totals"]
    rows = [
        [
            layer,
            totals["case_a_default"][layer],
            totals["case_b_reduced_pe"][layer],
            totals["case_c_reduced_cache"][layer],
            result["case_b_over_a"][layer],
            result["case_c_over_a"][layer],
        ]
        for layer in result["layer_names"]
    ]
    print()
    print(
        render_table(
            ["layer", "Case-A (PE1024/156KB)", "Case-B (PE256)", "Case-C (128KB)", "B/A", "C/A"],
            rows,
            title="Figure 9 — MIME pipelined energy under reduced PE array / cache",
        )
    )
    print(
        f"mean middle-layer increase: Case-B {result['case_b_middle_mean']:.3f}x "
        f"(paper {result['paper_pe_increase_range'][0]}-{result['paper_pe_increase_range'][1]}x), "
        f"Case-C {result['case_c_middle_mean']:.3f}x"
    )

    # Shape checks: the PE-array reduction penalises the intermediate layers,
    # leaves the first/last layers untouched, and dominates the cache reduction.
    assert result["case_b_middle_mean"] > 1.02
    assert result["case_b_over_a"]["conv1"] == 1.0
    assert result["case_b_over_a"]["conv13"] == 1.0
    assert result["case_c_middle_mean"] < result["case_b_middle_mean"]
    assert result["case_c_middle_mean"] < 1.05
