"""Figure 5: layerwise energy in Singular task mode (Case-1 / Case-2 / MIME).

Paper claims: MIME saves ~1.8-2.5x vs Case-1 and ~1.07-1.30x vs Case-2, but its
E_DRAM is slightly *higher* than Case-2 because thresholds must also be fetched.
"""

from __future__ import annotations

from repro.experiments.figures import figure5_singular_energy
from repro.experiments.report import render_energy_report, render_ratio_table
from benchmarks.conftest import run_once


def test_fig5_singular_energy(benchmark):
    result = run_once(benchmark, figure5_singular_energy)

    print()
    print(
        render_energy_report(
            result["reports"],
            result["layer_names"],
            title="Figure 5 — Singular task mode, layerwise total energy (MAC-normalised)",
        )
    )
    print(render_ratio_table(result["mime_vs_case1"], title="MIME saving vs Case-1 (paper: 1.8-2.5x)"))
    print(render_ratio_table(result["mime_vs_case2"], title="MIME saving vs Case-2 (paper: 1.07-1.30x)"))

    ratios1 = [v for k, v in result["mime_vs_case1"].items() if k != "conv1"]
    ratios2 = [v for k, v in result["mime_vs_case2"].items() if k != "conv1"]
    assert 1.6 < min(ratios1) and max(ratios1) < 3.2
    assert 1.0 < min(ratios2) and max(ratios2) < 1.6

    # E_DRAM of MIME is not lower than Case-2 in singular mode (threshold fetches).
    case2 = result["reports"]["case2-baseline-zeroskip"]
    mime = result["reports"]["mime"]
    dram_higher = [
        layer
        for layer in result["layer_names"]
        if mime.per_layer[layer].e_dram >= case2.per_layer[layer].e_dram
    ]
    print(f"layers where MIME E_DRAM >= Case-2 E_DRAM: {len(dram_higher)}/{len(result['layer_names'])}")
    assert len(dram_higher) >= len(result["layer_names"]) // 2
