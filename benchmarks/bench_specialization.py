"""Sparsity specialization: compacted per-task plans vs the dense plan.

Not a paper figure — this benchmarks the repo's own plan-specialization
pipeline on a workload with paper-level per-task structured sparsity (~65% of
every masked layer's channels structurally dead per task, cf. Table II's
0.5-0.9 layerwise sparsity).  Three properties are asserted:

* the default (throughput-mode) specialized plans deliver at least
  ``SPECIALIZATION_MIN_SPEEDUP``x (1.3x; 1.15x under ``--smoke``) the
  images/sec of the dense plan on the same pipelined request stream;
* specialization and the dynamic fast path never change *what* is computed:
  effective MACs drop while outputs stay ULP-equivalent (the bit-exact mode
  is covered by the tier-1 suite); and
* the dynamic sparse fast path costs nothing when there is nothing to skip:
  with zero measured sparsity the gate never opens and throughput stays
  within ``DYNAMIC_MAX_OVERHEAD`` (1.1x; 1.3x under ``--smoke``) of the
  plain dense run.

Set ``BENCH_RECORD=path.json`` to append this run's numbers to the
``BENCH_specialization.json`` trajectory file.

Run standalone with ``pytest benchmarks/bench_specialization.py -s``; pass
``--smoke`` for the seconds-scale CI configuration.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.engine import (
    MultiTaskEngine,
    compile_network,
    enable_dynamic_sparse,
    specialize_tasks,
)
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_small

TASKS = ("cifar10", "cifar100", "fmnist")
INPUT_SIZE = 32
MICRO_BATCH = 8
DEAD_FRACTION = 0.65  # paper-level structured sparsity (Table II: 0.5-0.9)

def _ratio_from_env(name: str, default: float, smoke_default: float, smoke: bool) -> float:
    """An explicitly-set env override always wins; --smoke only relaxes defaults."""
    value = os.environ.get(name)
    if value is not None:
        return float(value)
    return smoke_default if smoke else default


def _build_network(dead_fraction: float) -> MimeNetwork:
    rng = np.random.default_rng(42)
    backbone = vgg_small(num_classes=8, input_size=INPUT_SIZE, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index, name in enumerate(TASKS):
        task = add_structured_sparsity_task(
            network, name, num_classes=10 + index, rng=rng,
            dead_fraction=dead_fraction, threshold_jitter=0.2,
        )
        if dead_fraction == 0.0:
            for param in task.thresholds:
                param.data[:] = -1e9  # nothing is ever masked: zero sparsity
    return network


def _request_stream(num_requests: int):
    rng = np.random.default_rng(9)
    images = rng.normal(size=(num_requests, 3, INPUT_SIZE, INPUT_SIZE))
    tasks = [TASKS[i % len(TASKS)] for i in range(num_requests)]
    return images, tasks


def _drain_throughput(plan, specialized, images, tasks, rounds: int = 3) -> float:
    engine = MultiTaskEngine(plan, micro_batch=MICRO_BATCH, specialized=specialized)
    num_requests = len(tasks)

    def drain() -> float:
        for index, task in enumerate(tasks):
            engine.submit(task, images[index])
        start = time.perf_counter()
        engine.run_pending(mode="pipelined")
        return num_requests / (time.perf_counter() - start)

    drain()  # warm workspaces and BLAS
    return max(drain() for _ in range(rounds))


def _record_entry(entry: dict) -> None:
    path = os.environ.get("BENCH_RECORD")
    if not path:
        return
    file = Path(path)
    payload = json.loads(file.read_text()) if file.exists() else {"entries": []}
    payload["entries"].append(entry)
    file.write_text(json.dumps(payload, indent=2) + "\n")


def test_specialized_plans_beat_dense_throughput(smoke):
    min_speedup = _ratio_from_env("SPECIALIZATION_MIN_SPEEDUP", 1.3, 1.15, smoke)
    num_requests = 48 if smoke else 96
    network = _build_network(DEAD_FRACTION)
    plan = compile_network(network, dtype=np.float32)
    specialized = specialize_tasks(plan)  # default: throughput mode
    exact = specialize_tasks(plan, compact_reduction=False)
    images, tasks = _request_stream(num_requests)

    dense_ips = _drain_throughput(plan, {}, images, tasks)
    spec_ips = _drain_throughput(plan, specialized, images, tasks)
    exact_ips = _drain_throughput(plan, exact, images, tasks)

    mac_reduction = float(np.mean([s.mac_reduction() for s in specialized.values()]))
    print()
    print(f"Specialization throughput (vgg_small @ {INPUT_SIZE}x{INPUT_SIZE}, "
          f"{len(TASKS)} tasks, ~{100 * DEAD_FRACTION:.0f}% dead channels/task, "
          f"{num_requests} pipelined requests):")
    print(f"  dense plan            : {dense_ips:8.1f} images/sec")
    print(f"  specialized (default) : {spec_ips:8.1f} images/sec "
          f"({spec_ips / dense_ips:.2f}x, {100 * mac_reduction:.1f}% MACs avoided)")
    print(f"  specialized (bit-exact): {exact_ips:7.1f} images/sec "
          f"({exact_ips / dense_ips:.2f}x; verification mode)")

    # Equivalence spot check on one micro-batch per task.  float32 GEMM
    # reassociation can flip a mask bit for pre-activations within an ULP of
    # their threshold, so compare like the engine's own float32 test: small
    # mean deviation plus prediction agreement.
    for name in TASKS:
        sample = images[:24]
        spec_out = specialized[name].run(sample, name)
        dense_out = plan.run(sample, name)
        assert np.abs(spec_out - dense_out).mean() < 5e-3
        assert (np.argmax(spec_out, axis=1) == np.argmax(dense_out, axis=1)).mean() >= 0.8

    _record_entry({
        "date": time.strftime("%Y-%m-%d"),
        "workload": f"vgg_small@{INPUT_SIZE} x{len(TASKS)}tasks dead={DEAD_FRACTION}",
        "requests": num_requests,
        "smoke": smoke,
        "dense_ips": round(dense_ips, 1),
        "specialized_ips": round(spec_ips, 1),
        "exact_ips": round(exact_ips, 1),
        "speedup": round(spec_ips / dense_ips, 3),
        "mac_reduction": round(mac_reduction, 4),
    })
    assert spec_ips >= min_speedup * dense_ips, (
        f"specialized plans deliver only {spec_ips / dense_ips:.2f}x the dense "
        f"throughput (required {min_speedup}x at ~{100 * DEAD_FRACTION:.0f}% dead channels)"
    )


def test_dynamic_fast_path_is_free_at_zero_sparsity(smoke):
    max_overhead = _ratio_from_env("DYNAMIC_MAX_OVERHEAD", 1.1, 1.3, smoke)
    num_requests = 48 if smoke else 96
    network = _build_network(dead_fraction=0.0)  # thresholds never mask anything
    plan = compile_network(network, dtype=np.float32)
    images, tasks = _request_stream(num_requests)

    # Interleave the two measurements: on shared/1-core runners, measuring
    # one configuration entirely before the other folds machine drift into
    # the ratio this test exists to bound.
    dense_ips = 0.0
    dynamic_ips = 0.0
    for _ in range(3):
        plan.dynamic = None
        dense_ips = max(dense_ips, _drain_throughput(plan, {}, images, tasks, rounds=1))
        enable_dynamic_sparse(plan, gate=0.5, crossover=0.5)
        dynamic_ips = max(dynamic_ips, _drain_throughput(plan, {}, images, tasks, rounds=1))

    overhead = dense_ips / dynamic_ips
    print()
    print(f"Dynamic fast path at zero sparsity ({num_requests} requests):")
    print(f"  dense plan          : {dense_ips:8.1f} images/sec")
    print(f"  dynamic gate enabled: {dynamic_ips:8.1f} images/sec "
          f"({overhead:.3f}x dense time)")
    assert overhead <= max_overhead, (
        f"dynamic fast path costs {overhead:.2f}x at zero sparsity "
        f"(allowed {max_overhead}x) — the gate should make it free"
    )

    # Sanity: the gate really never opened (zero sparsity -> no row checks).
    from repro.engine import RunContext

    ctx = RunContext(plan.dynamic)
    plan.run(images[:MICRO_BATCH], tasks[0], ctx=ctx)
    assert ctx.dynamic_gemms == 0
    assert ctx.effective_macs == ctx.dense_macs
