"""Online serving: latency percentiles and throughput across policies/workers.

Not a paper figure — this benchmarks the repo's own online serving runtime on
a mixed-task Poisson workload.  Four properties are asserted:

* no run loses or duplicates a request, under any policy, worker count or
  backend;
* with enough CPU cores, 4 worker threads deliver at least
  ``SERVING_BENCH_MIN_SPEEDUP``x (default 1.5x) the images/sec of 1 worker —
  the thread-parallel-workspaces payoff (the assertion is skipped on boxes
  with fewer than 2 cores, where thread parallelism cannot help);
* under light load, p95 latency respects the dynamic batcher's configured
  ``max_wait`` deadline plus a service/scheduling budget
  (``SERVING_BENCH_P95_BUDGET`` seconds, default 0.25); and
* on a compute-heavy plan with ≥4 cores, the **process** backend at 4
  workers beats the **thread** backend at 4 workers by at least
  ``SERVING_PROCESS_MIN_SPEEDUP``x (default 1.5x) — the GIL-escape payoff of
  sharding across cores (im2col assembly, masking and batch stacking hold
  the GIL; only the GEMMs release it).

Run standalone with ``pytest benchmarks/bench_serving_latency.py -s``; pass
``--smoke`` for the seconds-scale CI configuration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine import SCHEDULING_MODES, compile_network
from repro.mime import MimeNetwork
from repro.serving import BACKENDS, LoadGenerator, ServingRuntime
from repro.models import vgg_small, vgg_tiny

TASKS = ("cifar10", "cifar100", "fmnist")
INPUT_SIZE = 16
MICRO_BATCH = 4
WORKER_COUNTS = (1, 2, 4)


def _default_min_speedup() -> float:
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.5
    if cores >= 2:
        return 1.1
    return 0.0  # single core: threads cannot speed up compute-bound work


MIN_SPEEDUP = float(os.environ.get("SERVING_BENCH_MIN_SPEEDUP", _default_min_speedup()))
P95_BUDGET = float(os.environ.get("SERVING_BENCH_P95_BUDGET", "0.25"))
PROCESS_MIN_SPEEDUP = float(os.environ.get("SERVING_PROCESS_MIN_SPEEDUP", "1.5"))


@pytest.fixture(scope="module")
def served_plan():
    rng = np.random.default_rng(21)
    backbone = vgg_tiny(num_classes=8, input_size=INPUT_SIZE, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index, name in enumerate(TASKS):
        task = network.add_task(name, num_classes=10 + index, rng=rng)
        for param in task.thresholds:
            param.data += rng.uniform(0.0, 0.2, size=param.data.shape)
    return compile_network(network, dtype=np.float32)


@pytest.fixture(scope="module")
def image_pools():
    rng = np.random.default_rng(5)
    return {task: rng.normal(size=(16, 3, INPUT_SIZE, INPUT_SIZE)) for task in TASKS}


def _drain_run(plan, image_pools, trace, policy, workers):
    """Submit the whole trace up front, then measure the parallel drain."""
    generator = LoadGenerator.uniform(TASKS, rate=1000.0)  # trace passed explicitly
    runtime = ServingRuntime(
        plan,
        policy=policy,
        micro_batch=MICRO_BATCH,
        max_wait=0.02,
        workers=workers,
    )
    futures = generator.replay(
        runtime, image_pools, num_requests=len(trace), time_scale=0.0, trace=trace
    )
    runtime.start()
    report = runtime.stop(drain=True)
    for future in futures:
        assert future is not None and future.done()
        future.result(timeout=0)
    return report


def test_worker_scaling_and_policy_table(served_plan, image_pools, smoke):
    num_requests = 64 if smoke else 192
    trace = LoadGenerator.uniform(TASKS, rate=500.0, seed=13).trace(num_requests)

    rows = []
    throughput = {}
    for workers in WORKER_COUNTS:
        for policy in SCHEDULING_MODES:
            report = _drain_run(served_plan, image_pools, trace, policy, workers)
            assert report.completed == num_requests, (
                f"{policy}/{workers}w lost requests: {report.completed}/{num_requests}"
            )
            throughput[(policy, workers)] = report.throughput
            rows.append(
                f"  {policy:>15} | {workers}w | {report.throughput:9.1f} img/s | "
                f"p50 {1e3 * report.latency.p50:6.1f} ms | "
                f"p95 {1e3 * report.latency.p95:6.1f} ms | "
                f"p99 {1e3 * report.latency.p99:6.1f} ms | "
                f"switches {report.task_switches:3d}"
            )

    print()
    print(f"Serving drain throughput ({num_requests} mixed-task Poisson requests, "
          f"micro-batch {MICRO_BATCH}, vgg_tiny @ {INPUT_SIZE}x{INPUT_SIZE}):")
    for row in rows:
        print(row)

    min_speedup = min(MIN_SPEEDUP, 1.2) if smoke else MIN_SPEEDUP
    scaling = throughput[("fifo-deadline", 4)] / throughput[("fifo-deadline", 1)]
    print(f"  fifo-deadline 4-worker scaling: {scaling:.2f}x "
          f"(required {min_speedup}x, {os.cpu_count()} cores)")
    if min_speedup <= 0:
        pytest.skip("single-core machine: worker-scaling assertion not meaningful")
    assert scaling >= min_speedup, (
        f"4 workers deliver only {scaling:.2f}x the 1-worker throughput "
        f"(required {min_speedup}x)"
    )


def test_thread_vs_process_scaling_table(smoke):
    """The sharded (process) backend must out-scale threads on heavy plans.

    Drains one deterministic mixed-task trace through both backends at 1, 2
    and 4 workers on a compute-heavy plan, prints the scaling table, and —
    when this machine has ≥4 cores for the comparison to be meaningful —
    asserts the acceptance ratio ``process(4w) >= PROCESS_MIN_SPEEDUP *
    thread(4w)``.  Process throughput excludes worker spawn time: the
    runtime's measurement window opens only after every worker has rebuilt
    its plan from the shipped PlanSpec.
    """
    rng = np.random.default_rng(33)
    if smoke:
        backbone = vgg_tiny(num_classes=8, input_size=INPUT_SIZE, in_channels=3, rng=rng)
        num_requests, micro_batch = 48, 4
    else:
        # Compute-heavy: the 6-conv reduced VGG at 24x24 keeps each
        # micro-batch on the CPU long enough for worker parallelism to matter.
        backbone = vgg_small(num_classes=8, input_size=24, in_channels=3, rng=rng)
        num_requests, micro_batch = 192, 8
    network = MimeNetwork(backbone)
    network.eval()
    for index, name in enumerate(TASKS):
        task = network.add_task(name, num_classes=10 + index, rng=rng)
        for param in task.thresholds:
            param.data += rng.uniform(0.0, 0.2, size=param.data.shape)
    plan = compile_network(network, dtype=np.float32)
    input_size = plan.input_shape[-1]
    pools = {task: rng.normal(size=(16, 3, input_size, input_size)) for task in TASKS}
    trace = LoadGenerator.uniform(TASKS, rate=1000.0, seed=29).trace(num_requests)

    throughput = {}
    rows = []
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            generator = LoadGenerator.uniform(TASKS, rate=1000.0)
            runtime = BACKENDS[backend](
                plan,
                policy="fifo-deadline",
                micro_batch=micro_batch,
                max_wait=0.02,
                workers=workers,
            )
            futures = generator.replay(
                runtime, pools, num_requests=num_requests, time_scale=0.0, trace=trace
            )
            runtime.start()
            report = runtime.stop(drain=True)
            for future in futures:
                assert future is not None and future.done()
                future.result(timeout=0)
            assert report.completed == num_requests, (
                f"{backend}/{workers}w lost requests: {report.completed}/{num_requests}"
            )
            throughput[(backend, workers)] = report.throughput
            rows.append(
                f"  {backend:>7} | {workers}w | {report.throughput:9.1f} img/s | "
                f"p50 {1e3 * report.latency.p50:7.1f} ms | "
                f"p95 {1e3 * report.latency.p95:7.1f} ms"
            )

    print()
    print(
        f"Thread vs process backend drain ({num_requests} mixed-task requests, "
        f"micro-batch {micro_batch}, input {input_size}x{input_size}, "
        f"{os.cpu_count()} cores):"
    )
    for row in rows:
        print(row)
    ratio = throughput[("process", 4)] / throughput[("thread", 4)]
    print(
        f"  process/thread at 4 workers: {ratio:.2f}x "
        f"(required {PROCESS_MIN_SPEEDUP}x on >=4 cores)"
    )
    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            "fewer than 4 cores: the process-vs-thread scaling comparison "
            "cannot materialise here"
        )
    if smoke:
        pytest.skip(
            "smoke mode: the seconds-scale config's micro-batches are too "
            "small for the per-batch IPC to amortise — the ratio is asserted "
            "on the full compute-heavy configuration"
        )
    assert ratio >= PROCESS_MIN_SPEEDUP, (
        f"the process backend delivers only {ratio:.2f}x the thread backend "
        f"at 4 workers (required {PROCESS_MIN_SPEEDUP}x)"
    )


def test_p95_latency_respects_max_wait(served_plan, image_pools, smoke):
    num_requests = 40 if smoke else 80
    max_wait = 0.05
    generator = LoadGenerator.uniform(TASKS, rate=400.0, seed=17)
    runtime = ServingRuntime(
        served_plan,
        policy="fifo-deadline",
        micro_batch=8,
        max_wait=max_wait,
        workers=2,
        max_pending=512,
    )
    with runtime:
        futures = generator.replay(
            runtime, image_pools, num_requests=num_requests, deadline_slack=max_wait + P95_BUDGET
        )
        for future in futures:
            future.result(timeout=30.0)
    report = runtime.report()

    print()
    print("Light-load latency (batches close on the max-wait deadline):")
    print(report.summary())
    assert report.completed == num_requests
    assert report.latency.p95 <= max_wait + P95_BUDGET, (
        f"p95 latency {1e3 * report.latency.p95:.1f} ms exceeds the "
        f"max-wait deadline ({1e3 * max_wait:.0f} ms) plus budget "
        f"({1e3 * P95_BUDGET:.0f} ms)"
    )
    assert report.deadline_total == num_requests
    assert report.deadline_misses == 0, (
        f"{report.deadline_misses}/{report.deadline_total} deadlines missed under light load"
    )
