"""Figure 7: layerwise throughput in Pipelined task mode, normalised to Case-1.

Paper claim: ~2.8-3.0x layerwise throughput improvement, attributed to the
reduced MAC count under MIME's dynamic neuronal sparsity.
"""

from __future__ import annotations

from repro.experiments.figures import figure7_pipelined_throughput
from repro.experiments.report import render_ratio_table
from benchmarks.conftest import run_once


def test_fig7_pipelined_throughput(benchmark):
    result = run_once(benchmark, figure7_pipelined_throughput)

    print()
    print(
        render_ratio_table(
            result["mime_vs_case1"],
            title="Figure 7 — MIME relative throughput vs Case-1 (paper: 2.8-3.0x)",
            value_name="throughput x",
        )
    )
    print(
        render_ratio_table(
            result["case2_vs_case1"],
            title="Case-2 relative throughput vs Case-1 (for reference)",
            value_name="throughput x",
        )
    )
    print(f"mean MIME throughput improvement: {result['mean_mime_vs_case1']:.2f}x "
          f"(paper {result['paper_range'][0]}-{result['paper_range'][1]}x)")

    values = [v for k, v in result["mime_vs_case1"].items() if k != "conv1"]
    assert min(values) > 2.0
    assert max(values) < 3.2
    # MIME is at least as fast as Case-2 on every layer (more sparsity to skip).
    for layer, value in result["mime_vs_case1"].items():
        assert value >= result["case2_vs_case1"][layer] - 1e-9
