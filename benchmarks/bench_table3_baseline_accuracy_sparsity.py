"""Table III: conventional per-task baselines — accuracy and ReLU sparsity.

Also checks the joint Table II vs Table III structure: the baselines reach at
least MIME-level accuracy (they fine-tune every weight) while MIME achieves
higher activation sparsity (its thresholds prune beyond what ReLU prunes).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import paper_data
from repro.experiments.report import render_sparsity_table
from repro.experiments.tables import (
    compare_sparsity_ordering,
    paper_table3_reference,
    table2_mime_accuracy_and_sparsity,
    table3_baseline_accuracy_and_sparsity,
)
from benchmarks.conftest import run_once


def test_table3_baseline_accuracy_and_sparsity(benchmark, trained_workload):
    table3 = run_once(benchmark, table3_baseline_accuracy_and_sparsity, trained_workload)
    table2 = table2_mime_accuracy_and_sparsity(trained_workload)

    print()
    print(
        render_sparsity_table(
            table3,
            title="Table III (reproduced on surrogate workload) — baseline accuracy (fraction) and ReLU sparsity",
        )
    )
    print(
        render_sparsity_table(
            paper_table3_reference(),
            layer_names=paper_data.PAPER_REPORTED_LAYERS,
            title="Table III (paper-reported) — accuracy (%) and ReLU sparsity",
        )
    )

    for task, row in table3.items():
        chance = 1.0 / next(t.num_classes for t in trained_workload.child_tasks if t.name == task)
        assert row["test_accuracy"] > chance
        assert 0.0 <= row["mean_sparsity"] < 1.0

    # MIME's dynamic sparsity exceeds the ReLU sparsity of the baselines on
    # most tasks (Tables II vs III).
    holds_for = compare_sparsity_ordering(table2, table3)
    print(f"tasks where MIME mean sparsity > baseline ReLU sparsity: {holds_for}")
    assert len(holds_for) >= 2

    # Baselines (full fine-tuning) reach at least comparable accuracy to MIME
    # on average, mirroring Table III >= Table II in the paper.
    mean_baseline = np.mean([row["test_accuracy"] for row in table3.values()])
    mean_mime = np.mean([row["test_accuracy"] for row in table2.values()])
    assert mean_baseline > mean_mime - 0.15
