"""Extension ablation: what if the accelerator *could* exploit weight sparsity?

The paper's Fig. 8 comparison hinges on the systolic array having neither
compressed weight storage nor weight-zero gating.  This benchmark quantifies
how the MIME-vs-pruned comparison changes on an idealised sparse-weight
accelerator, documenting the sensitivity of the paper's conclusion to that
architectural assumption (called out in DESIGN.md as a design-choice ablation).
"""

from __future__ import annotations

from repro.experiments.figures import paper_sparsity_profiles, paper_vgg16_shapes
from repro.experiments.report import render_table
from repro.hardware import (
    SystolicArraySimulator,
    mime_config,
    pipelined_task_schedule,
    pruned_config,
)
from benchmarks.conftest import run_once

TASKS = ["cifar10", "cifar100", "fmnist"]


def _run_ablation():
    mime_profile, baseline_profile = paper_sparsity_profiles()
    shapes = paper_vgg16_shapes()
    schedule = pipelined_task_schedule(TASKS)
    simulator = SystolicArraySimulator()

    variants = {
        "mime": (mime_config(), mime_profile),
        "pruned (paper hardware)": (pruned_config(), baseline_profile),
        "pruned + compressed storage": (
            pruned_config(compressed_weight_storage=True),
            baseline_profile,
        ),
        "pruned + compressed + weight skipping": (
            pruned_config(compressed_weight_storage=True, weight_zero_skipping=True),
            baseline_profile,
        ),
    }
    totals = {}
    for name, (config, profile) in variants.items():
        result = simulator.run(shapes, schedule, profile, config, conv_only=True)
        totals[name] = result.total_energy().total
    return totals


def test_sparse_weight_hardware_ablation(benchmark):
    totals = run_once(benchmark, _run_ablation)

    rows = [[name, value, totals["mime"] / value] for name, value in totals.items()]
    print()
    print(
        render_table(
            ["scenario", "total conv energy", "MIME / scenario"],
            rows,
            title="Ablation — pipelined-mode energy under idealised sparse-weight hardware",
        )
    )

    # On the paper's hardware MIME beats the pruned models overall ...
    assert totals["mime"] < totals["pruned (paper hardware)"]
    # ... but an idealised sparse-weight accelerator flips the comparison,
    # which bounds how far the paper's Fig. 8 conclusion generalises.
    assert totals["pruned + compressed + weight skipping"] < totals["mime"]
    # Compressed storage alone is not enough to flip it.
    assert totals["pruned + compressed storage"] > 0.5 * totals["mime"]
