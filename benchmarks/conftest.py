"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the reproduced rows/series next to the paper's reported values, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.

The algorithmic benchmarks (Tables II/III) train the surrogate workload once
per session at ``fast_config`` scale; the hardware benchmarks are analytical
and use the paper's own sparsity tables as the default profile.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import fast_config
from repro.experiments.workloads import build_workload


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="seconds-scale benchmark settings with relaxed perf assertions "
        "(used by CI to catch regressions without flaking on shared runners)",
    )
    parser.addoption(
        "--json",
        default=None,
        metavar="OUT",
        help="append each benchmark's machine-readable result entry to this "
        "BENCH_*.json trajectory file (benchmarks that support it)",
    )


@pytest.fixture(scope="session")
def smoke(request: pytest.FixtureRequest) -> bool:
    """True when the benchmarks run in CI smoke mode (``--smoke``)."""
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def bench_json(request: pytest.FixtureRequest):
    """The ``--json OUT`` trajectory path, or ``None`` when not recording."""
    return request.config.getoption("--json")


@pytest.fixture(scope="session")
def trained_workload():
    """The surrogate multi-task workload (parent + MIME + baselines), trained once."""
    return build_workload(fast_config(), include_mime=True, include_baselines=True)


@pytest.fixture(scope="session")
def pruned_workload():
    """Workload variant that also trains the 90 %-pruned per-task models (Fig. 8)."""
    return build_workload(
        fast_config(), include_mime=False, include_baselines=False, include_pruned=True
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
