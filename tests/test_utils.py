"""Tests for RNG, logging and serialization utilities."""

from __future__ import annotations

import numpy as np

from repro.utils import (
    get_logger,
    global_rng,
    load_state_dict,
    new_rng,
    save_state_dict,
    set_global_seed,
)


class TestRNG:
    def test_seeded_generators_are_reproducible(self):
        a = new_rng(5).normal(size=4)
        b = new_rng(5).normal(size=4)
        assert np.allclose(a, b)

    def test_global_seed_controls_derived_streams(self):
        set_global_seed(3)
        first = new_rng().normal(size=3)
        set_global_seed(3)
        second = new_rng().normal(size=3)
        assert np.allclose(first, second)

    def test_unseeded_generators_differ(self):
        set_global_seed(0)
        assert not np.allclose(new_rng().normal(size=4), new_rng().normal(size=4))

    def test_global_rng_is_generator(self):
        assert isinstance(global_rng(), np.random.Generator)


class TestLogging:
    def test_namespaced_logger(self):
        assert get_logger("mime").name == "repro.mime"
        assert get_logger().name == "repro"


class TestSerialization:
    def test_round_trip(self, tmp_path):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = tmp_path / "ckpt.npz"
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        assert np.allclose(loaded["w"], state["w"])

    def test_model_state_round_trip(self, tmp_path, tiny_backbone):
        path = tmp_path / "model.npz"
        save_state_dict(tiny_backbone.state_dict(), path)
        loaded = load_state_dict(path)
        clone_state = tiny_backbone.state_dict()
        for key in clone_state:
            assert np.allclose(loaded[key], clone_state[key])
