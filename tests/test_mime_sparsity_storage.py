"""Tests for sparsity measurement and DRAM storage accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import DataLoader
from repro.mime import (
    StorageModel,
    conventional_storage,
    measure_mime_sparsity,
    measure_relu_sparsity,
    average_sparsity_over_loader,
    mime_storage,
    storage_saving_ratio,
    storage_vs_num_tasks,
)
from repro.mime.storage import count_threshold_parameters, count_weight_parameters, head_parameters
from repro.models import vgg16_layer_shapes
from repro.models.shapes import vgg_layer_shapes

RNG = np.random.default_rng(21)


class TestSparsityMeasurement:
    def test_mime_sparsity_keys(self, tiny_mime):
        sparsity = measure_mime_sparsity(tiny_mime, RNG.normal(size=(3, 3, 16, 16)))
        assert set(sparsity) == {"conv1", "conv2", "conv3", "fc4"}

    def test_relu_sparsity_keys(self, tiny_backbone):
        sparsity = measure_relu_sparsity(tiny_backbone, RNG.normal(size=(3, 3, 16, 16)))
        assert set(sparsity) == {"conv1", "conv2", "conv3"}
        assert all(0.0 <= value <= 1.0 for value in sparsity.values())

    def test_average_over_loader_mime(self, tiny_mime, tiny_task):
        loader = DataLoader(tiny_task.test, batch_size=8)
        report = average_sparsity_over_loader(tiny_mime, loader, task=tiny_task.name)
        assert report.num_samples == len(tiny_task.test)
        assert 0.0 <= report.mean <= 1.0
        assert report.as_vector().shape == (4,)

    def test_average_over_loader_baseline(self, tiny_backbone, tiny_task):
        loader = DataLoader(tiny_task.test, batch_size=8)
        report = average_sparsity_over_loader(tiny_backbone, loader)
        assert set(report.layer_names()) == {"conv1", "conv2", "conv3"}

    def test_max_batches_limits_samples(self, tiny_backbone, tiny_task):
        loader = DataLoader(tiny_task.test, batch_size=4)
        report = average_sparsity_over_loader(tiny_backbone, loader, max_batches=1)
        assert report.num_samples == 4

    def test_mime_sparsity_exceeds_relu_sparsity_on_shared_backbone(self, tiny_backbone, tiny_task):
        """Structural claim behind Tables II/III: thresholds prune more than ReLU."""
        from repro.mime import MimeNetwork

        images = tiny_task.test.images[:16]
        relu_sparsity = measure_relu_sparsity(tiny_backbone, images)
        network = MimeNetwork(tiny_backbone, init_threshold=0.1)
        network.add_task(tiny_task.name, tiny_task.num_classes, rng=RNG)
        mime_sparsity = measure_mime_sparsity(network, images)
        for layer in relu_sparsity:
            assert mime_sparsity[layer] >= relu_sparsity[layer] - 1e-9


class TestStorageCounting:
    def test_weight_count_matches_vgg16_imagenet(self):
        shapes = vgg_layer_shapes("vgg16", input_size=224, num_classes=1000, classifier_hidden=(4096, 4096))
        total = count_weight_parameters(shapes)
        assert 135e6 < total < 140e6

    def test_threshold_count_excludes_final_layer(self):
        shapes = vgg16_layer_shapes(input_size=32)
        thresholds = count_threshold_parameters(shapes)
        final = shapes[-1]
        assert thresholds == sum(s.output_neurons for s in shapes[:-1])
        assert final.output_neurons not in (0, thresholds)

    def test_conv_only_threshold_count_is_smaller(self):
        shapes = vgg16_layer_shapes(input_size=32)
        assert count_threshold_parameters(shapes, "conv") < count_threshold_parameters(shapes, "all")

    def test_head_parameters(self):
        shapes = vgg16_layer_shapes(input_size=32, num_classes=10, classifier_hidden=(512,))
        assert head_parameters(shapes) == 512 * 10 + 10

    def test_invalid_threshold_layer_mode(self):
        with pytest.raises(ValueError):
            count_threshold_parameters(vgg16_layer_shapes(), "bananas")


class TestStorageScenarios:
    def _shapes(self):
        parent = vgg_layer_shapes("vgg16", input_size=224, num_classes=1000, classifier_hidden=(4096, 4096))
        child = vgg_layer_shapes("vgg16", input_size=224, num_classes=10, classifier_hidden=(4096, 4096))
        return parent, child

    def test_mime_storage_far_below_conventional(self):
        parent, child = self._shapes()
        children = {"a": child, "b": child, "c": child}
        conventional = conventional_storage(parent, children)
        mime = mime_storage(parent, children)
        ratio = storage_saving_ratio(conventional, mime)
        # Paper reports ~3.48x for 3 child tasks; the reproduced model lands ~3x.
        assert ratio > 2.5
        assert ratio > 3.0 - 0.2

    def test_saving_grows_with_task_count(self):
        parent, child = self._shapes()
        curve = storage_vs_num_tasks(parent, child, max_tasks=5)
        ratios = curve["saving_ratio"]
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))
        assert curve["conventional_mb"][-1] > curve["mime_mb"][-1]

    def test_saving_exceeds_num_tasks_rule(self):
        """The paper states the saving is > n x for n child tasks (Fig. 4)."""
        parent, child = self._shapes()
        curve = storage_vs_num_tasks(parent, child, max_tasks=4)
        for n, ratio in zip(curve["num_tasks"], curve["saving_ratio"]):
            if n >= 2:
                assert ratio > 0.8 * n

    def test_precision_bits_scale_bytes(self):
        parent, child = self._shapes()
        children = {"a": child}
        wide = conventional_storage(parent, children, StorageModel(precision_bits=32))
        narrow = conventional_storage(parent, children, StorageModel(precision_bits=16))
        assert wide.total_bytes == pytest.approx(2 * narrow.total_bytes)
        assert wide.total_params == narrow.total_params

    def test_excluding_parent_from_conventional(self):
        parent, child = self._shapes()
        children = {"a": child}
        without = conventional_storage(
            parent, children, StorageModel(store_parent_conventional=False)
        )
        assert without.parent_params == 0

    def test_invalid_storage_model(self):
        with pytest.raises(ValueError):
            StorageModel(precision_bits=0)
        with pytest.raises(ValueError):
            StorageModel(threshold_layers="some")

    def test_zero_mime_storage_rejected(self):
        from repro.mime.storage import StorageBreakdown

        with pytest.raises(ValueError):
            storage_saving_ratio(StorageBreakdown("c"), StorageBreakdown("m"))

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_conventional_storage_linear_in_tasks(self, n):
        parent, child = self._shapes()
        children = {f"t{i}": child for i in range(n)}
        breakdown = conventional_storage(parent, children)
        single = count_weight_parameters(child)
        assert breakdown.total_params == count_weight_parameters(parent) + n * single
