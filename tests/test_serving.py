"""The online serving runtime: batching, workers, backpressure, metrics.

The acceptance property is exercised directly: a multi-worker
:class:`ServingRuntime` must produce **bit-identical** logits to the offline
:class:`MultiTaskEngine` for the same request set, because both execute the
same micro-batch compositions through the same immutable plan — only the
workspace pools differ.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import MultiTaskEngine, SparsityRecorder, compile_network
from repro.mime import MimeNetwork
from repro.models import extract_layer_shapes, vgg_tiny
from repro.serving import (
    LoadGenerator,
    ManualClock,
    QueueFullError,
    RequestCancelledError,
    RuntimeClosedError,
    ServingRuntime,
)

TASK_NAMES = ("alpha", "beta", "gamma")


@pytest.fixture(scope="module")
def served():
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3,
                        rng=np.random.default_rng(0))
    network = MimeNetwork(backbone)
    network.eval()
    jitter = np.random.default_rng(99)
    for name in TASK_NAMES:
        task = network.add_task(name, 5, rng=jitter)
        for param in task.thresholds:
            param.data += jitter.uniform(0.0, 0.15, size=param.data.shape)
    plan = compile_network(network, dtype=np.float32)
    return network, backbone, plan


def mixed_stream(seed: int, count: int):
    rng = np.random.default_rng(seed)
    order = np.random.default_rng(seed + 1)
    return [
        (TASK_NAMES[int(order.integers(0, len(TASK_NAMES)))], rng.normal(size=(3, 16, 16)))
        for _ in range(count)
    ]


# ------------------------------------------------------------- equivalence ----
@pytest.mark.parametrize("workers", [2, 4])
def test_runtime_is_bit_identical_to_offline_engine(served, workers):
    _, _, plan = served
    stream = mixed_stream(3, 30)

    engine = MultiTaskEngine(plan, micro_batch=4)
    runtime = ServingRuntime(plan, policy="fifo-deadline", micro_batch=4,
                             max_wait=5.0, workers=workers)
    futures = []
    for task, image in stream:
        engine.submit(task, image)
        futures.append(runtime.submit(task, image))
    offline, _ = engine.run_pending(mode="fifo-deadline")
    runtime.start()
    report = runtime.stop(drain=True)

    assert report.completed == len(stream)
    for future, reference in zip(futures, offline):
        np.testing.assert_array_equal(future.result(timeout=5.0), reference)


def test_futures_resolve_with_correct_shapes_and_timestamps(served):
    _, _, plan = served
    with ServingRuntime(plan, micro_batch=4, max_wait=0.005, workers=2) as runtime:
        future = runtime.submit("beta", np.zeros((3, 16, 16)))
        logits = future.result(timeout=10.0)
    assert logits.shape == (5,)
    assert future.done()
    assert future.latency is not None and future.latency >= 0.0
    assert future.queue_wait is not None and 0.0 <= future.queue_wait <= future.latency
    assert future.start_time <= future.finish_time


def test_partial_batch_closes_on_max_wait(served):
    _, _, plan = served
    clock = ManualClock()
    # One request, micro_batch far larger: only the max-wait timer can close
    # it.  On the fake clock the batch *cannot* close until time is advanced
    # past max_wait, and once it executes every timestamp is deterministic.
    with ServingRuntime(
        plan, micro_batch=64, max_wait=0.05, workers=1, clock=clock
    ) as runtime:
        future = runtime.submit("alpha", np.zeros((3, 16, 16)))
        assert not future.done(), "batch closed although fake time never advanced"
        clock.advance(0.06)
        future.result(timeout=10.0)
    assert future.queue_wait == pytest.approx(0.06), (
        "batch must close exactly when the advanced clock passed max_wait"
    )
    assert future.latency == pytest.approx(0.06)
    assert future.queue_wait >= 0.05, "batch closed before the max-wait deadline"


# ------------------------------------------------------------ admission -------
def test_bounded_queue_rejects_when_full(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, micro_batch=4, max_wait=10.0, workers=1, max_pending=3)
    # Workers not started: nothing drains the queue.
    for _ in range(3):
        runtime.submit("alpha", np.zeros((3, 16, 16)))
    with pytest.raises(QueueFullError):
        runtime.submit("alpha", np.zeros((3, 16, 16)), block=False)
    with pytest.raises(QueueFullError):
        runtime.submit("alpha", np.zeros((3, 16, 16)), block=True, timeout=0.05)
    assert runtime.report().rejected == 2
    runtime.start()
    report = runtime.stop(drain=True)
    assert report.completed == 3


def test_blocking_submit_waits_for_capacity(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, micro_batch=2, max_wait=0.005, workers=1, max_pending=2)
    runtime.start()
    futures = [runtime.submit("alpha", np.zeros((3, 16, 16)), block=True, timeout=10.0)
               for _ in range(8)]
    report = runtime.stop(drain=True)
    assert report.completed == 8
    assert all(future.done() for future in futures)


def test_submit_validates_task_and_shape(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, workers=1)
    with pytest.raises(KeyError):
        runtime.submit("nope", np.zeros((3, 16, 16)))
    with pytest.raises(ValueError):
        runtime.submit("alpha", np.zeros((3, 8, 8)))
    runtime.start()
    runtime.stop()


# ------------------------------------------------------------- lifecycle ------
def test_stop_without_drain_cancels_pending(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, micro_batch=8, max_wait=10.0, workers=1)
    futures = [runtime.submit("alpha", np.zeros((3, 16, 16))) for _ in range(3)]
    # Never started: stop(drain=False) must cancel everything queued.
    report = runtime.stop(drain=False)
    assert report.cancelled == 3
    for future in futures:
        with pytest.raises(RequestCancelledError):
            future.result(timeout=1.0)


def test_stop_on_never_started_runtime_cancels_even_with_drain(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, micro_batch=8, max_wait=10.0, workers=1)
    future = runtime.submit("alpha", np.zeros((3, 16, 16)))
    # No worker ever existed, so drain=True cannot complete the request;
    # it must be cancelled rather than stranding the future forever.
    report = runtime.stop(drain=True)
    assert report.cancelled == 1
    with pytest.raises(RequestCancelledError):
        future.result(timeout=1.0)


def test_submit_after_stop_is_refused(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, workers=1)
    runtime.start()
    runtime.stop(drain=True)
    with pytest.raises(RuntimeClosedError):
        runtime.submit("alpha", np.zeros((3, 16, 16)))
    with pytest.raises(RuntimeClosedError):
        runtime.start()
    # Shutdown refusals are not capacity signals: the rejected counter only
    # tracks bounded-queue overload.
    assert runtime.report().rejected == 0


def test_reset_stats_starts_a_fresh_window(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, micro_batch=4, max_wait=0.005, workers=2)
    runtime.start()
    first = [runtime.submit("alpha", np.zeros((3, 16, 16))) for _ in range(6)]
    for future in first:
        future.result(timeout=30.0)
    assert runtime.report().completed == 6
    assert runtime.recorder.num_images() == 6

    runtime.reset_stats()
    assert runtime.report().completed == 0
    assert runtime.recorder.num_images() == 0

    second = [runtime.submit("beta", np.zeros((3, 16, 16))) for _ in range(4)]
    for future in second:
        future.result(timeout=30.0)
    runtime.stop(drain=True)
    report = runtime.report()
    assert report.completed == 4
    assert report.per_task == {"beta": 4}
    assert runtime.recorder.num_images() == 4


def test_constructor_validation(served):
    _, _, plan = served
    with pytest.raises(ValueError):
        ServingRuntime(plan, workers=0)
    with pytest.raises(ValueError):
        ServingRuntime(plan, micro_batch=0)
    with pytest.raises(ValueError):
        ServingRuntime(plan, policy="bogus")


# ------------------------------------------------------------ concurrency -----
def test_concurrent_submitters_all_complete(served):
    _, _, plan = served
    runtime = ServingRuntime(plan, policy="weighted-fair", micro_batch=4,
                             max_wait=0.005, workers=3, max_pending=64)
    runtime.start()
    results = {}

    def client(name, task, count):
        rng = np.random.default_rng(hash(name) % 2**32)
        futures = [runtime.submit(task, rng.normal(size=(3, 16, 16)), timeout=30.0)
                   for _ in range(count)]
        results[name] = [future.result(timeout=30.0) for future in futures]

    threads = [threading.Thread(target=client, args=(f"client{i}", TASK_NAMES[i % 3], 12))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report = runtime.stop(drain=True)
    assert report.completed == 4 * 12
    assert sum(len(v) for v in results.values()) == 4 * 12
    assert all(logits.shape == (5,) for batch in results.values() for logits in batch)


# ---------------------------------------------------------------- metrics -----
def test_metrics_and_hardware_report_round_trip(served):
    _, backbone, plan = served
    recorder = SparsityRecorder()
    runtime = ServingRuntime(plan, policy="pipelined", micro_batch=4,
                             max_wait=0.005, workers=2, recorder=recorder)
    stream = mixed_stream(5, 24)
    with runtime:
        futures = [runtime.submit(task, image) for task, image in stream]
        for future in futures:
            future.result(timeout=30.0)
    report = runtime.report()
    assert report.completed == 24
    assert report.policy == "pipelined"
    assert report.workers == 2
    assert report.throughput > 0
    assert report.latency.count == 24
    assert report.latency.p50 <= report.latency.p95 <= report.latency.p99 <= report.latency.max
    assert sum(report.per_task.values()) == 24
    summary = report.summary()
    assert "images/sec" in summary and "p50" in summary and "task switches" in summary

    assert recorder.num_images() == 24
    profile = runtime.sparsity_profile()
    assert sorted(profile.tasks()) == sorted(set(task for task, _ in stream))
    hw = runtime.hardware_report(extract_layer_shapes(backbone), conv_only=True)
    assert hw.total_energy().total > 0
    assert hw.total_cycles() > 0


def test_deadline_accounting(served):
    _, _, plan = served
    clock = ManualClock(start=100.0)
    # Deadlines and finish times live on the same fake clock, so met/missed
    # is decided by arithmetic, not by how fast this machine executes.
    with ServingRuntime(
        plan, micro_batch=4, max_wait=0.001, workers=2, clock=clock
    ) as runtime:
        generous = runtime.submit("alpha", np.zeros((3, 16, 16)),
                                  deadline=clock() + 60.0)
        hopeless = runtime.submit("beta", np.zeros((3, 16, 16)),
                                  deadline=clock() - 1.0)
        clock.advance(0.01)  # past max_wait: both partial batches close
        generous.result(timeout=10.0)
        hopeless.result(timeout=10.0)
    assert generous.deadline_met is True
    assert hopeless.deadline_met is False
    report = runtime.report()
    assert report.deadline_total == 2
    assert report.deadline_misses == 1


# ----------------------------------------------------------- load generator ---
def test_load_generator_trace_is_deterministic_and_monotone():
    generator = LoadGenerator.uniform(TASK_NAMES, rate=100.0, seed=4)
    first = generator.trace(50)
    second = generator.trace(50)
    assert first == second
    times = [arrival.time for arrival in first]
    assert all(later > earlier for earlier, later in zip(times, times[1:]))
    # Mean inter-arrival ~ 1/rate (loose: 50 samples).
    gaps = np.diff([0.0] + times)
    assert 0.3 / 100.0 < gaps.mean() < 3.0 / 100.0


def test_load_generator_mix_and_scenarios():
    skewed = LoadGenerator.skewed(TASK_NAMES, rate=50.0, hot_fraction=0.8, seed=6)
    counts = {task: 0 for task in TASK_NAMES}
    for arrival in skewed.trace(300):
        counts[arrival.task] += 1
    assert counts["alpha"] > counts["beta"] + counts["gamma"]

    bursty = LoadGenerator.bursty(TASK_NAMES, rate=50.0, burst_factor=4.0,
                                  burst_period=0.5, seed=6)
    assert len(bursty.trace(40)) == 40

    with pytest.raises(ValueError):
        LoadGenerator(TASK_NAMES, rate=0.0)
    with pytest.raises(ValueError):
        LoadGenerator(TASK_NAMES, rate=10.0, mix=[1.0])
    with pytest.raises(ValueError):
        LoadGenerator(TASK_NAMES, rate=10.0, burst_factor=2.0)  # no period
    with pytest.raises(ValueError):
        LoadGenerator.skewed(TASK_NAMES, rate=10.0, hot_fraction=1.5)


def test_replay_paces_and_stamps_deadlines_on_the_runtime_clock(served):
    _, _, plan = served
    clock = ManualClock()
    runtime = ServingRuntime(plan, micro_batch=4, max_wait=0.001, workers=1, clock=clock)
    generator = LoadGenerator.uniform(TASK_NAMES, rate=100.0, seed=3)
    sleeps = []

    def fake_sleep(seconds: float) -> None:
        sleeps.append(seconds)
        clock.advance(seconds)

    runtime.start()
    futures = generator.replay(
        runtime,
        lambda task, number: np.zeros((3, 16, 16)),
        num_requests=8,
        deadline_slack=30.0,
        sleep=fake_sleep,
    )
    submitted_by = clock()
    runtime.stop(drain=True)
    assert sleeps, "pacing must flow through the injectable sleep"
    assert all(future.done() for future in futures)
    # Deadlines were stamped on the fake clock: arrival + slack, far beyond
    # any finish time this run can produce.
    for future in futures:
        assert future.deadline is not None
        assert 30.0 <= future.deadline <= submitted_by + 30.0
    assert runtime.report().deadline_misses == 0


def test_load_generator_replay_end_to_end(served):
    _, _, plan = served
    rng = np.random.default_rng(12)
    images = {task: rng.normal(size=(4, 3, 16, 16)) for task in TASK_NAMES}
    generator = LoadGenerator.uniform(TASK_NAMES, rate=2000.0, seed=8)
    with ServingRuntime(plan, micro_batch=4, max_wait=0.01, workers=2) as runtime:
        futures = generator.replay(runtime, images, num_requests=20, deadline_slack=30.0)
        outputs = [future.result(timeout=30.0) for future in futures]
    assert len(outputs) == 20
    assert runtime.report().deadline_misses == 0
