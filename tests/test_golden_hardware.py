"""Golden regression fixtures for the systolic-array simulator.

Two canned scenarios — singular task mode under the MIME config and
pipelined task mode under the Case-1 baseline config, both on the paper's
VGG16 shapes and Table II/III sparsity — are snapshotted as JSON under
``tests/golden/``.  A simulator refactor that drifts any per-layer energy
term, access count or cycle estimate fails loudly against the snapshot
instead of silently re-baselining the paper-figure reproductions.

Regenerate intentionally with::

    PYTHONPATH=src python -m pytest tests/test_golden_hardware.py --update-golden

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.figures import paper_sparsity_profiles
from repro.hardware.scenario import (
    case1_config,
    mime_config,
    pipelined_task_schedule,
    singular_task_schedule,
)
from repro.hardware.simulator import BatchResult, SystolicArraySimulator
from repro.models import vgg16_layer_shapes

GOLDEN_DIR = Path(__file__).parent / "golden"
TASKS = ("cifar10", "cifar100", "fmnist")


def _singular_mime() -> BatchResult:
    mime_profile, _ = paper_sparsity_profiles()
    schedule = singular_task_schedule(["cifar10", "cifar100"], images_per_task=3)
    return SystolicArraySimulator().run(
        vgg16_layer_shapes(), schedule, mime_profile, mime_config()
    )


def _pipelined_case1() -> BatchResult:
    _, baseline_profile = paper_sparsity_profiles()
    schedule = pipelined_task_schedule(TASKS, rounds=2)
    return SystolicArraySimulator().run(
        vgg16_layer_shapes(), schedule, baseline_profile, case1_config()
    )


SCENARIOS = {
    "singular_mime": _singular_mime,
    "pipelined_case1": _pipelined_case1,
}


def batch_result_to_dict(result: BatchResult) -> dict:
    """A stable plain-data projection of everything the figures consume."""
    return {
        "scenario": result.scenario,
        "total_cycles": result.total_cycles(),
        "total_energy": result.total_energy().as_dict(),
        "layers": [
            {
                "name": layer.name,
                "energy": layer.energy.as_dict(),
                "macs": layer.macs,
                "dram_words": layer.dram_words,
                "param_dram_words": layer.param_dram_words,
                "act_dram_words": layer.act_dram_words,
                "cache_accesses": layer.cache_accesses,
                "reg_accesses": layer.reg_accesses,
                "cycles": layer.cycles,
                "weight_load_events": layer.weight_load_events,
                "threshold_load_events": layer.threshold_load_events,
            }
            for layer in result.layers
        ],
    }


def assert_matches_golden(payload, golden, path: str = "") -> None:
    """Recursive comparison with a tight relative tolerance on floats."""
    if isinstance(golden, dict):
        assert isinstance(payload, dict), f"{path}: expected mapping"
        assert sorted(payload) == sorted(golden), f"{path}: key set changed"
        for key in golden:
            assert_matches_golden(payload[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(payload, list), f"{path}: expected list"
        assert len(payload) == len(golden), f"{path}: length changed"
        for index, (lhs, rhs) in enumerate(zip(payload, golden)):
            assert_matches_golden(lhs, rhs, f"{path}[{index}]")
    elif isinstance(golden, float):
        assert payload == pytest.approx(golden, rel=1e-9, abs=1e-12), (
            f"{path}: {payload!r} drifted from golden {golden!r}"
        )
    else:
        assert payload == golden, f"{path}: {payload!r} != golden {golden!r}"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_hardware_report_matches_golden(name, update_golden):
    payload = batch_result_to_dict(SCENARIOS[name]())
    path = GOLDEN_DIR / f"{name}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists(), (
        f"golden file {path} missing; generate it with --update-golden and "
        "commit it"
    )
    golden = json.loads(path.read_text())
    assert_matches_golden(payload, golden, name)


def test_golden_files_are_committed():
    """Both snapshots must exist in the repo (not rely on --update-golden)."""
    for name in SCENARIOS:
        assert (GOLDEN_DIR / f"{name}.json").exists()
