"""Unit tests for the kernel-variant subsystem (``repro.engine.kernels``).

The differential harness (``tests/test_differential.py``) proves whole-plan
equivalence of every variant; this file pins down the component-level
contracts — panel construction, block partitioning, Winograd edge shapes and
its declared tolerance, packed-panel lane alignment, the int8 speed
datapath's bit-identity and eligibility gate, quantization round-trip,
chooser timing-cache dedupe, choice-map replay, variant traffic accounting,
and the two pooling regressions (overlapping windows and the ``out_shape``
geometry fix).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import SparsityRecorder, calibrate_plan, compile_network
from repro.engine import kernels as K
from repro.engine.kernels import (
    KernelTimingCache,
    apply_kernel_choices,
    autotune_kernel_variants,
    copy_window_strips,
    kernel_timing_key,
    packed_weight_panels,
    quantize_gemm,
    quantize_plan_kernels,
    variant_candidates,
    winograd_tolerance,
    winograd_weights,
)
from repro.engine.plan import (
    ConvGemmMaskKernel,
    LinearMaskKernel,
    MaxPoolKernel,
    WorkspacePool,
)
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny


def make_linear_kernel(rng, d_in, d_out, mask=False, dtype=np.float32):
    """A standalone FC kernel plus a duck-typed task for direct ``run`` calls."""
    weight_t = rng.normal(size=(d_in, d_out)).astype(dtype)
    bias = rng.normal(size=d_out).astype(dtype)
    spec = SimpleNamespace(slot=0, layer_name="fc") if mask else None
    kernel = LinearMaskKernel(
        index=0, name="gemm0", weight_t=weight_t, bias=bias, mask=spec,
    )
    thresholds = [np.abs(rng.normal(size=d_out)).astype(dtype) * 0.1]
    task = SimpleNamespace(name="t", thresholds=thresholds)
    return kernel, task


def make_conv_kernel(rng, c_in, c_out, hw, k=3, s=1, p=1, mask=False, dtype=np.float32):
    """A standalone conv kernel plus a duck-typed task for direct ``run`` calls."""
    h_out = (hw + 2 * p - k) // s + 1
    weight_t = rng.normal(size=(k * k * c_in, c_out)).astype(dtype)
    bias = rng.normal(size=c_out).astype(dtype)
    spec = SimpleNamespace(slot=0, layer_name="conv") if mask else None
    kernel = ConvGemmMaskKernel(
        index=0, name="gemm0", weight_t=weight_t, bias=bias,
        kernel_size=k, stride=s, padding=p,
        in_shape=(c_in, hw, hw), out_shape=(c_out, h_out, h_out), mask=spec,
    )
    thresholds = [np.abs(rng.normal(size=(h_out * h_out, c_out))).astype(dtype) * 0.1]
    task = SimpleNamespace(name="t", thresholds=thresholds)
    return kernel, task


def naive_im2col(src, n, h_out, w_out, k, s, c_in):
    cols = np.empty((n * h_out * w_out, k * k * c_in), src.dtype)
    view = cols.reshape(n, h_out, w_out, k, k, c_in)
    for ky in range(k):
        for kx in range(k):
            view[:, :, :, ky, kx, :] = src[:, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :]
    return cols


# ------------------------------------------------------------ panel builder ----
@pytest.mark.parametrize("k,s,hw,c_in", [(3, 1, 8, 4), (3, 2, 9, 3), (2, 2, 8, 5), (5, 1, 11, 2)])
def test_copy_window_strips_equals_naive_im2col(k, s, hw, c_in):
    rng = np.random.default_rng(7)
    n = 3
    h_out = (hw - k) // s + 1
    src = np.ascontiguousarray(rng.normal(size=(n, hw, hw, c_in)).astype(np.float32))
    cols = np.empty((n * h_out * h_out, k * k * c_in), np.float32)
    copy_window_strips(cols, src, n, h_out, h_out, k, s, c_in)
    np.testing.assert_array_equal(cols, naive_im2col(src, n, h_out, h_out, k, s, c_in))


# ------------------------------------------------------------ conv variants ----
def test_direct_1x1_conv_is_bit_identical_to_im2col():
    """1x1/stride-1 direct conv degenerates to im2col's exact single GEMM."""
    rng = np.random.default_rng(11)
    kernel, task = make_conv_kernel(rng, c_in=6, c_out=5, hw=7, k=1, s=1, p=0, mask=True)
    x = rng.normal(size=(4, 7, 7, 6)).astype(np.float32)
    ref = kernel.run(x.copy(), task, WorkspacePool(), None)
    kernel.variant = "direct"
    out = kernel.run(x.copy(), task, WorkspacePool(), None)
    np.testing.assert_array_equal(out, ref)


def test_blocked_conv_bit_identical_across_partial_blocks(monkeypatch):
    """Odd batch sizes leave a partial final image block; bits must not move."""
    rng = np.random.default_rng(13)
    kernel, task = make_conv_kernel(rng, c_in=4, c_out=6, hw=10, mask=True)
    # Shrink the panel budget so a 5-image batch splits into 2+2+1 blocks.
    panel_bytes = 100 * kernel.weight_t.shape[0] * 4
    monkeypatch.setattr(K, "_COLS_BLOCK_BYTES", 2 * panel_bytes)
    for n in (1, 2, 5):
        x = rng.normal(size=(n, 10, 10, 4)).astype(np.float32)
        ref = kernel.run(x.copy(), task, WorkspacePool(), None)
        kernel.variant = "blocked"
        out = kernel.run(x.copy(), task, WorkspacePool(), None)
        kernel.variant = "im2col"
        np.testing.assert_array_equal(out, ref, err_msg=f"batch {n}")


# ----------------------------------------------------------------- winograd ----
@pytest.mark.parametrize(
    "hw,p,mask",
    [
        (8, 1, True),   # even output, the common padded case
        (7, 1, True),   # odd output: tile remainder in both axes
        (9, 0, True),   # valid conv, odd output
        (6, 2, False),  # over-padding, no mask epilogue
        (5, 1, False),  # smallest interesting plane
    ],
)
def test_winograd_matches_im2col_within_declared_tolerance(hw, p, mask):
    rng = np.random.default_rng(61)
    kernel, task = make_conv_kernel(rng, c_in=5, c_out=7, hw=hw, p=p, mask=mask)
    x = rng.normal(size=(3, hw, hw, 5)).astype(np.float32)
    ref = kernel.run(x.copy(), task, WorkspacePool(), None).copy()
    kernel.variant = "winograd"
    out = kernel.run(x.copy(), task, WorkspacePool(), None)
    np.testing.assert_allclose(out, ref, **winograd_tolerance(np.float32))


def test_winograd_tolerance_property_at_paper_level_sparsity():
    """Seeded sweep with a mask killing a realistic activation fraction.

    The mask epilogue can flip a slot only when a value sits inside the
    declared tolerance band of its threshold; assert near-total survive/kill
    agreement and the declared tolerance on every slot both paths kept.
    """
    tol = winograd_tolerance(np.float32)
    for seed in (101, 202, 303):
        rng = np.random.default_rng(seed)
        kernel, task = make_conv_kernel(rng, c_in=8, c_out=8, hw=10, mask=True)
        # Scale thresholds up to paper-level kill rates (~40-60% zeros).
        task.thresholds[0] *= 40.0
        x = rng.normal(size=(4, 10, 10, 8)).astype(np.float32)
        ref = kernel.run(x.copy(), task, WorkspacePool(), None).copy()
        kernel.variant = "winograd"
        out = kernel.run(x.copy(), task, WorkspacePool(), None)
        kernel.variant = "im2col"
        sparsity = float((ref == 0.0).mean())
        assert 0.2 < sparsity < 0.9, f"seed {seed}: unrealistic sparsity {sparsity}"
        agree = (out == 0.0) == (ref == 0.0)
        assert agree.mean() >= 0.999, f"seed {seed}"
        np.testing.assert_allclose(out[agree], ref[agree], **tol)


def test_winograd_ineligible_shapes_are_gated():
    rng = np.random.default_rng(67)
    strided, _ = make_conv_kernel(rng, c_in=3, c_out=4, hw=9, k=3, s=2, p=1)
    five_tap, _ = make_conv_kernel(rng, c_in=3, c_out=4, hw=11, k=5, s=1, p=2)
    for kernel in (strided, five_tap):
        assert "winograd" not in variant_candidates(kernel)
        with pytest.raises(ValueError, match="not eligible"):
            K.set_kernel_variant(kernel, "winograd")


def test_winograd_weights_transformed_once_and_cached():
    rng = np.random.default_rng(71)
    kernel, _ = make_conv_kernel(rng, c_in=4, c_out=6, hw=8)
    u = winograd_weights(kernel)
    assert u.shape == (16, 4, 6)
    assert u.dtype == kernel.weight_t.dtype
    assert winograd_weights(kernel) is u, "second call must reuse the cache"
    assert kernel.wino is u


# ------------------------------------------------------------- packed panels ----
def test_packed_panels_cover_lanes_and_stay_contiguous(monkeypatch):
    rng = np.random.default_rng(73)
    kernel, _ = make_conv_kernel(rng, c_in=4, c_out=50, hw=8)
    # Shrink the budget so 50 output columns split into several panels, and
    # pin the host proof to "exact" so the geometry contract is tested
    # deterministically on any BLAS.
    monkeypatch.setattr(K, "_PACKED_PANEL_BYTES", kernel.weight_t.shape[0] * 4 * 20)
    monkeypatch.setattr(K, "_packed_split_exact", lambda weight_t, panels: True)
    panels = packed_weight_panels(kernel)
    assert len(panels) > 1
    cursor = 0
    for j0, j1, panel in panels:
        assert j0 == cursor and j1 > j0
        assert j0 % K._PACKED_PANEL_LANES == 0, "cuts must fall on lane multiples"
        assert panel.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(panel, kernel.weight_t[:, j0:j1])
        cursor = j1
    assert cursor == kernel.weight_t.shape[1], "panels must tile every column"
    assert packed_weight_panels(kernel) is panels, "second call must reuse the cache"


def test_packed_single_panel_reuses_weight_memory():
    rng = np.random.default_rng(79)
    kernel, _ = make_conv_kernel(rng, c_in=2, c_out=8, hw=8)
    panels = packed_weight_panels(kernel)
    assert len(panels) == 1
    assert np.shares_memory(panels[0][2], kernel.weight_t)


def test_packed_conv_and_linear_bit_identical_across_panel_splits(monkeypatch):
    """Bit-identity is unconditional: whether the host proof kept the split
    or collapsed it, ``packed`` must reproduce ``blocked`` exactly."""
    rng = np.random.default_rng(83)
    conv, conv_task = make_conv_kernel(rng, c_in=4, c_out=40, hw=8, mask=True)
    fc, fc_task = make_linear_kernel(rng, d_in=48, d_out=40, mask=True)
    monkeypatch.setattr(K, "_PACKED_PANEL_BYTES", 48 * 4 * 18)
    x_conv = rng.normal(size=(3, 8, 8, 4)).astype(np.float32)
    x_fc = rng.normal(size=(5, 48)).astype(np.float32)
    for kernel, task, x in ((conv, conv_task, x_conv), (fc, fc_task, x_fc)):
        kernel.variant = "blocked"
        ref = kernel.run(x.copy(), task, WorkspacePool(), None).copy()
        kernel.variant = "packed"
        out = kernel.run(x.copy(), task, WorkspacePool(), None)
        np.testing.assert_array_equal(out, ref)


def test_packed_split_collapses_when_host_proof_fails(monkeypatch):
    rng = np.random.default_rng(87)
    kernel, _ = make_conv_kernel(rng, c_in=4, c_out=50, hw=8)
    monkeypatch.setattr(K, "_PACKED_PANEL_BYTES", kernel.weight_t.shape[0] * 4 * 20)
    monkeypatch.setattr(K, "_packed_split_exact", lambda weight_t, panels: False)
    panels = packed_weight_panels(kernel)
    assert len(panels) == 1
    assert panels[0][:2] == (0, 50)
    assert panels[0][2].flags["C_CONTIGUOUS"]


# ------------------------------------------------------------ int8 speed path ----
def attach_quant(kernel, in_absmax=4.0):
    kernel.quant = quantize_gemm(kernel.weight_t, in_absmax=in_absmax)
    return kernel.quant


def test_int8spd_bit_identical_to_int8_conv_and_linear():
    rng = np.random.default_rng(89)
    conv, conv_task = make_conv_kernel(rng, c_in=4, c_out=6, hw=8, mask=True)
    fc, fc_task = make_linear_kernel(rng, d_in=36, d_out=10, mask=True)
    x_conv = rng.normal(size=(3, 8, 8, 4)).astype(np.float32)
    x_fc = rng.normal(size=(5, 36)).astype(np.float32)
    for kernel, task, x in ((conv, conv_task, x_conv), (fc, fc_task, x_fc)):
        attach_quant(kernel)
        kernel.variant = "int8"
        ref = kernel.run(x.copy(), task, WorkspacePool(), None).copy()
        kernel.variant = "int8spd"
        out = kernel.run(x.copy(), task, WorkspacePool(), None)
        np.testing.assert_array_equal(out, ref)


def test_int8spd_panel_loop_exact_on_deep_reductions(monkeypatch):
    """Depth beyond the int32-safety panel bound must still accumulate exactly."""
    rng = np.random.default_rng(97)
    monkeypatch.setattr(K, "_INT8SPD_PANEL_ROWS", 16)  # force the K-panel loop
    qx = rng.integers(-127, 128, size=(6, 50), dtype=np.int16)
    wqi = np.ascontiguousarray(rng.integers(-127, 128, size=(50, 7), dtype=np.int16))
    acc = np.empty((6, 7), np.int32)
    K._int8_accumulate(qx, wqi, acc)
    expect = qx.astype(np.int64) @ wqi.astype(np.int64)
    np.testing.assert_array_equal(acc.astype(np.int64), expect)


def test_int8spd_derives_weight_qi_from_pre_v3_payload():
    rng = np.random.default_rng(101)
    kernel, task = make_conv_kernel(rng, c_in=4, c_out=6, hw=8, mask=True)
    q = attach_quant(kernel)
    x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
    kernel.variant = "int8spd"
    ref = kernel.run(x.copy(), task, WorkspacePool(), None).copy()
    q.weight_qi = None  # what a plan rebuilt from a v2 PlanSpec looks like
    out = kernel.run(x.copy(), task, WorkspacePool(), None)
    assert q.weight_qi is not None, "lazy derivation must repopulate the payload"
    assert q.weight_qi.dtype == np.int16 and q.weight_qi.flags["C_CONTIGUOUS"]
    np.testing.assert_array_equal(out, ref)


def test_int8spd_eligibility_follows_host_probe(monkeypatch):
    rng = np.random.default_rng(103)
    kernel, _ = make_conv_kernel(rng, c_in=4, c_out=6, hw=8)
    attach_quant(kernel)
    monkeypatch.setattr(K, "_INT8SPD_WINS", False)
    candidates = variant_candidates(kernel)
    assert "int8" in candidates and "int8spd" not in candidates
    monkeypatch.setattr(K, "_INT8SPD_WINS", True)
    assert "int8spd" in variant_candidates(kernel)
    # Shipped choices still execute on losing hosts: the gate is on choosing.
    monkeypatch.setattr(K, "_INT8SPD_WINS", False)
    kernel.variant = "int8spd"


# ------------------------------------------------------- pooling regressions ----
def naive_pool(x, k, s, h_out, w_out):
    n, _, _, c = x.shape
    out = np.empty((n, h_out, w_out, c), x.dtype)
    for i in range(h_out):
        for j in range(w_out):
            out[:, i, j] = x[:, i * s : i * s + k, j * s : j * s + k].max(axis=(1, 2))
    return out


def test_overlapping_pool_matches_naive_reference():
    """stride < kernel: windows share elements; both variants must agree."""
    rng = np.random.default_rng(17)
    k, s, h = 3, 2, 9
    h_out = (h - k) // s + 1
    pool = MaxPoolKernel(index=0, kernel_size=k, stride=s, out_shape=(4, h_out, h_out))
    task = SimpleNamespace(name="t", thresholds=[])
    x = rng.normal(size=(3, h, h, 4)).astype(np.float32)
    ref = naive_pool(x, k, s, h_out, h_out)
    for variant in ("reshape", "views"):
        pool.variant = variant
        out = pool.run(x, task, WorkspacePool(), None)
        assert out.shape == (3, h_out, h_out, 4)
        np.testing.assert_array_equal(out, ref, err_msg=variant)


def test_pool_out_shape_governs_unaligned_input():
    """Regression: geometry comes from ``out_shape``, not from reshape math.

    A 5-wide input with k=s=2 floors to 2 output positions and leaves a
    dangling row/column; the reshape fast path must bow out (5 != 2*2) and
    the cascade must ignore the remainder exactly like the naive reference.
    """
    rng = np.random.default_rng(19)
    k = s = 2
    h, h_out = 5, 2
    pool = MaxPoolKernel(index=0, kernel_size=k, stride=s, out_shape=(3, h_out, h_out))
    task = SimpleNamespace(name="t", thresholds=[])
    x = rng.normal(size=(2, h, h, 3)).astype(np.float32)
    ref = naive_pool(x, k, s, h_out, h_out)
    for variant in ("reshape", "views"):
        pool.variant = variant
        out = pool.run(x, task, WorkspacePool(), None)
        assert out.shape == (2, h_out, h_out, 3)
        np.testing.assert_array_equal(out, ref, err_msg=variant)


def test_aligned_pool_views_match_reshape_bitwise():
    rng = np.random.default_rng(23)
    pool = MaxPoolKernel(index=0, kernel_size=2, stride=2, out_shape=(6, 4, 4))
    task = SimpleNamespace(name="t", thresholds=[])
    x = rng.normal(size=(3, 8, 8, 6)).astype(np.float32)
    pool.variant = "reshape"
    ref = pool.run(x, task, WorkspacePool(), None).copy()
    pool.variant = "views"
    np.testing.assert_array_equal(pool.run(x, task, WorkspacePool(), None), ref)


# ------------------------------------------------------------- quantization ----
def test_quantize_gemm_round_trip_properties():
    rng = np.random.default_rng(29)
    weight_t = rng.normal(size=(36, 9)).astype(np.float32)
    q = quantize_gemm(weight_t, in_absmax=3.0)
    assert np.array_equal(q.weight_q, np.rint(q.weight_q)), "weights must be integer-valued"
    assert np.abs(q.weight_q).max() <= 127.0
    # Per-output-channel scales: dequantized weights land within half a step.
    dequant = q.weight_q * q.w_scale
    assert np.all(np.abs(dequant - weight_t) <= q.w_scale / 2 + 1e-7)
    np.testing.assert_allclose(q.scale, q.w_scale * q.in_scale, rtol=1e-6)
    assert q.in_scale == pytest.approx(3.0 * 1.05 / 127.0)


def small_plan(seed=31, tasks=2, dtype=np.float32):
    rng = np.random.default_rng(seed)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for i in range(tasks):
        add_structured_sparsity_task(
            network, f"task{i}", num_classes=6, rng=rng,
            dead_fraction=0.25, threshold_jitter=0.2,
        )
    return compile_network(network, dtype=dtype)


def test_quantize_plan_requires_calibrated_ranges():
    plan = small_plan()
    with pytest.raises(KeyError, match="activation range"):
        quantize_plan_kernels(plan, SimpleNamespace(ranges={}))


def test_int8_guard_band_keeps_first_layer_decisions_exact():
    """Near-threshold slots are recomputed in float: the first masked layer's
    survive/kill pattern must equal the float32 kernel's exactly."""
    plan = small_plan(seed=37)
    profile = calibrate_plan(plan, batch_size=8, seed=37)
    quantized = small_plan(seed=37)
    quantize_plan_kernels(quantized, profile, set_variant=True)
    rng = np.random.default_rng(41)
    x = np.abs(rng.normal(size=(8, 16, 16, 3))).astype(np.float32)
    f_kernel = next(k for k in plan.kernels if getattr(k, "kind", None) == "conv")
    q_kernel = next(k for k in quantized.kernels if getattr(k, "kind", None) == "conv")
    task_f = plan.tasks[plan.task_names()[0]]
    task_q = quantized.tasks[quantized.task_names()[0]]
    ref = f_kernel.run(x.copy(), task_f, WorkspacePool(), None)
    out = q_kernel.run(x.copy(), task_q, WorkspacePool(), None)
    assert q_kernel.variant == "int8"
    np.testing.assert_array_equal(out == 0.0, ref == 0.0)


def test_calibrate_plan_records_activation_ranges():
    plan = small_plan(seed=43)
    profile = calibrate_plan(plan, batch_size=4, seed=43)
    gemm_names = {k.name for k in plan.kernels if getattr(k, "kind", None) in ("conv", "linear")}
    for task, ranges in profile.ranges.items():
        assert gemm_names <= set(ranges), f"task {task} missing ranges"
        assert all(value > 0.0 for value in ranges.values())


# ------------------------------------------------------------------ chooser ----
def test_autotuner_caches_choices_and_sets_variants():
    plan = small_plan(seed=47)
    choices = autotune_kernel_variants(plan, batch=2, repeats=1, seed=0)
    eligible = {k.name for k in plan.kernels if variant_candidates(k)}
    assert set(choices) == eligible
    assert plan.kernel_choices == choices
    for kernel in plan.kernels:
        if getattr(kernel, "name", None) in choices:
            assert kernel.variant == choices[kernel.name]
            assert choices[kernel.name] in variant_candidates(kernel)


def test_apply_kernel_choices_strict_and_lenient():
    plan = small_plan(seed=53)
    conv = next(k.name for k in plan.kernels if getattr(k, "kind", None) == "conv")
    applied = apply_kernel_choices(plan, {conv: "blocked"})
    assert applied == {conv: "blocked"}
    assert plan.kernel_choices == {conv: "blocked"}
    # Unknown kernel name: strict raises, lenient skips.
    with pytest.raises(KeyError, match="does not have"):
        apply_kernel_choices(plan, {"nope": "blocked"})
    assert apply_kernel_choices(plan, {"nope": "blocked"}, strict=False) == {}
    # Ineligible variant (int8 without quantization): strict raises, lenient skips.
    with pytest.raises(ValueError, match="not eligible"):
        apply_kernel_choices(plan, {conv: "int8"})
    assert apply_kernel_choices(plan, {conv: "int8"}, strict=False) == {}


# ------------------------------------------------------------- timing cache ----
def test_timing_cache_dedupes_identical_geometry_across_plans():
    cache = KernelTimingCache()
    first = small_plan(seed=107)
    choices_first = autotune_kernel_variants(first, batch=2, repeats=1, seed=0, cache=cache)
    assert cache.misses == len(cache) > 0
    assert cache.hits == 0
    misses_before = cache.misses
    second = small_plan(seed=107)  # identical layer shapes, fresh kernel objects
    choices_second = autotune_kernel_variants(second, batch=2, repeats=1, seed=0, cache=cache)
    assert cache.misses == misses_before, "identical geometry must never re-time"
    assert cache.hits == misses_before, "every lookup must replay a cached timing"
    assert choices_second == choices_first


def test_kernel_timing_key_tracks_geometry_not_identity():
    rng = np.random.default_rng(109)
    a, _ = make_conv_kernel(rng, c_in=4, c_out=6, hw=8)
    twin, _ = make_conv_kernel(rng, c_in=4, c_out=6, hw=8)
    compacted, _ = make_conv_kernel(rng, c_in=4, c_out=5, hw=8)
    key = kernel_timing_key(a, "blocked", 8, np.float32)
    assert kernel_timing_key(twin, "blocked", 8, np.float32) == key
    assert kernel_timing_key(compacted, "blocked", 8, np.float32) != key
    assert kernel_timing_key(a, "packed", 8, np.float32) != key
    assert kernel_timing_key(a, "blocked", 4, np.float32) != key
    assert kernel_timing_key(a, "blocked", 8, np.float64) != key


def test_specialize_with_choose_kernels_reuses_timings_on_redeploy():
    from repro.engine import specialize_tasks

    plan = small_plan(seed=113)
    profile = calibrate_plan(plan, batch_size=4, seed=113)
    cache = KernelTimingCache()
    kwargs = dict(profile=profile, compact_reduction=True,
                  choose_kernels=True, choose_batch=2, timing_cache=cache)
    specialized = specialize_tasks(plan, **kwargs)
    assert set(specialized) == set(plan.task_names())
    for name, spec in specialized.items():
        assert spec.kernel_choices, f"{name}: chooser must leave choices on the spec"
        for kernel in spec.kernels:
            if getattr(kernel, "name", None) in spec.kernel_choices:
                assert kernel.variant == spec.kernel_choices[kernel.name]
    # A re-deploy from the same profile compacts to the same geometries: the
    # second pass must resolve every chooser purely from cached timings.
    misses_before = cache.misses
    redeployed = specialize_tasks(plan, **kwargs)
    assert cache.misses == misses_before, "unchanged geometry must never re-time"
    assert cache.hits >= misses_before
    for name, spec in redeployed.items():
        assert spec.kernel_choices == specialized[name].kernel_choices


# ---------------------------------------------------------- workspace pooling ----
def test_padded_input_pools_scratch_for_noncontiguous_input():
    rng = np.random.default_rng(127)
    kernel, _ = make_conv_kernel(rng, c_in=3, c_out=4, hw=6, p=0)
    ws = WorkspacePool()
    nchw = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
    x = nchw.transpose(0, 2, 3, 1)  # NHWC view, not C-contiguous
    assert not x.flags["C_CONTIGUOUS"]
    first = K._padded_input(kernel, x, ws)
    assert first.flags["C_CONTIGUOUS"]
    np.testing.assert_array_equal(first, x)
    second = K._padded_input(kernel, x, ws)
    assert second is first, "steady state must reuse the pooled buffer"
    contig = np.ascontiguousarray(x)
    assert K._padded_input(kernel, contig, ws) is contig, "contiguous input passes through"


# ------------------------------------------------------- traffic accounting ----
def test_variant_traffic_accounting():
    rng = np.random.default_rng(59)
    recorder = SparsityRecorder()
    kernel, task = make_conv_kernel(rng, c_in=4, c_out=6, hw=8, mask=True)
    pool = MaxPoolKernel(index=1, kernel_size=2, stride=2, out_shape=(6, 4, 4))
    x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
    ws = WorkspacePool()
    for variant in ("im2col", "blocked", "packed", "direct", "winograd"):
        kernel.variant = variant
        y = kernel.run(x, task, ws, recorder)
    for variant in ("reshape", "views"):
        pool.variant = variant
        pool.run(y, task, ws, recorder)
    totals = recorder.variant_totals()
    assert set(totals) == {
        "im2col", "blocked", "packed", "direct", "winograd",
        "pool-reshape", "pool-views",
    }
    for name, entry in totals.items():
        assert entry["calls"] == 1
        assert entry["bytes"] > 0
        assert (entry["macs"] > 0) == (not name.startswith("pool")), name
    # Winograd's 16 multiplies per 2x2 output tile vs im2col's 36: the
    # physical MAC ledger must show the genuine reduction.
    assert totals["winograd"]["macs"] < totals["im2col"]["macs"]
