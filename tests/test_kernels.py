"""Unit tests for the kernel-variant subsystem (``repro.engine.kernels``).

The differential harness (``tests/test_differential.py``) proves whole-plan
equivalence of every variant; this file pins down the component-level
contracts — panel construction, block partitioning, quantization round-trip,
chooser caching, choice-map replay, variant traffic accounting, and the two
pooling regressions (overlapping windows and the ``out_shape`` geometry fix).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import SparsityRecorder, calibrate_plan, compile_network
from repro.engine import kernels as K
from repro.engine.kernels import (
    apply_kernel_choices,
    autotune_kernel_variants,
    copy_window_strips,
    quantize_gemm,
    quantize_plan_kernels,
    variant_candidates,
)
from repro.engine.plan import ConvGemmMaskKernel, MaxPoolKernel, WorkspacePool
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny


def make_conv_kernel(rng, c_in, c_out, hw, k=3, s=1, p=1, mask=False, dtype=np.float32):
    """A standalone conv kernel plus a duck-typed task for direct ``run`` calls."""
    h_out = (hw + 2 * p - k) // s + 1
    weight_t = rng.normal(size=(k * k * c_in, c_out)).astype(dtype)
    bias = rng.normal(size=c_out).astype(dtype)
    spec = SimpleNamespace(slot=0, layer_name="conv") if mask else None
    kernel = ConvGemmMaskKernel(
        index=0, name="gemm0", weight_t=weight_t, bias=bias,
        kernel_size=k, stride=s, padding=p,
        in_shape=(c_in, hw, hw), out_shape=(c_out, h_out, h_out), mask=spec,
    )
    thresholds = [np.abs(rng.normal(size=(h_out * h_out, c_out))).astype(dtype) * 0.1]
    task = SimpleNamespace(name="t", thresholds=thresholds)
    return kernel, task


def naive_im2col(src, n, h_out, w_out, k, s, c_in):
    cols = np.empty((n * h_out * w_out, k * k * c_in), src.dtype)
    view = cols.reshape(n, h_out, w_out, k, k, c_in)
    for ky in range(k):
        for kx in range(k):
            view[:, :, :, ky, kx, :] = src[:, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :]
    return cols


# ------------------------------------------------------------ panel builder ----
@pytest.mark.parametrize("k,s,hw,c_in", [(3, 1, 8, 4), (3, 2, 9, 3), (2, 2, 8, 5), (5, 1, 11, 2)])
def test_copy_window_strips_equals_naive_im2col(k, s, hw, c_in):
    rng = np.random.default_rng(7)
    n = 3
    h_out = (hw - k) // s + 1
    src = np.ascontiguousarray(rng.normal(size=(n, hw, hw, c_in)).astype(np.float32))
    cols = np.empty((n * h_out * h_out, k * k * c_in), np.float32)
    copy_window_strips(cols, src, n, h_out, h_out, k, s, c_in)
    np.testing.assert_array_equal(cols, naive_im2col(src, n, h_out, h_out, k, s, c_in))


# ------------------------------------------------------------ conv variants ----
def test_direct_1x1_conv_is_bit_identical_to_im2col():
    """1x1/stride-1 direct conv degenerates to im2col's exact single GEMM."""
    rng = np.random.default_rng(11)
    kernel, task = make_conv_kernel(rng, c_in=6, c_out=5, hw=7, k=1, s=1, p=0, mask=True)
    x = rng.normal(size=(4, 7, 7, 6)).astype(np.float32)
    ref = kernel.run(x.copy(), task, WorkspacePool(), None)
    kernel.variant = "direct"
    out = kernel.run(x.copy(), task, WorkspacePool(), None)
    np.testing.assert_array_equal(out, ref)


def test_blocked_conv_bit_identical_across_partial_blocks(monkeypatch):
    """Odd batch sizes leave a partial final image block; bits must not move."""
    rng = np.random.default_rng(13)
    kernel, task = make_conv_kernel(rng, c_in=4, c_out=6, hw=10, mask=True)
    # Shrink the panel budget so a 5-image batch splits into 2+2+1 blocks.
    panel_bytes = 100 * kernel.weight_t.shape[0] * 4
    monkeypatch.setattr(K, "_COLS_BLOCK_BYTES", 2 * panel_bytes)
    for n in (1, 2, 5):
        x = rng.normal(size=(n, 10, 10, 4)).astype(np.float32)
        ref = kernel.run(x.copy(), task, WorkspacePool(), None)
        kernel.variant = "blocked"
        out = kernel.run(x.copy(), task, WorkspacePool(), None)
        kernel.variant = "im2col"
        np.testing.assert_array_equal(out, ref, err_msg=f"batch {n}")


# ------------------------------------------------------- pooling regressions ----
def naive_pool(x, k, s, h_out, w_out):
    n, _, _, c = x.shape
    out = np.empty((n, h_out, w_out, c), x.dtype)
    for i in range(h_out):
        for j in range(w_out):
            out[:, i, j] = x[:, i * s : i * s + k, j * s : j * s + k].max(axis=(1, 2))
    return out


def test_overlapping_pool_matches_naive_reference():
    """stride < kernel: windows share elements; both variants must agree."""
    rng = np.random.default_rng(17)
    k, s, h = 3, 2, 9
    h_out = (h - k) // s + 1
    pool = MaxPoolKernel(index=0, kernel_size=k, stride=s, out_shape=(4, h_out, h_out))
    task = SimpleNamespace(name="t", thresholds=[])
    x = rng.normal(size=(3, h, h, 4)).astype(np.float32)
    ref = naive_pool(x, k, s, h_out, h_out)
    for variant in ("reshape", "views"):
        pool.variant = variant
        out = pool.run(x, task, WorkspacePool(), None)
        assert out.shape == (3, h_out, h_out, 4)
        np.testing.assert_array_equal(out, ref, err_msg=variant)


def test_pool_out_shape_governs_unaligned_input():
    """Regression: geometry comes from ``out_shape``, not from reshape math.

    A 5-wide input with k=s=2 floors to 2 output positions and leaves a
    dangling row/column; the reshape fast path must bow out (5 != 2*2) and
    the cascade must ignore the remainder exactly like the naive reference.
    """
    rng = np.random.default_rng(19)
    k = s = 2
    h, h_out = 5, 2
    pool = MaxPoolKernel(index=0, kernel_size=k, stride=s, out_shape=(3, h_out, h_out))
    task = SimpleNamespace(name="t", thresholds=[])
    x = rng.normal(size=(2, h, h, 3)).astype(np.float32)
    ref = naive_pool(x, k, s, h_out, h_out)
    for variant in ("reshape", "views"):
        pool.variant = variant
        out = pool.run(x, task, WorkspacePool(), None)
        assert out.shape == (2, h_out, h_out, 3)
        np.testing.assert_array_equal(out, ref, err_msg=variant)


def test_aligned_pool_views_match_reshape_bitwise():
    rng = np.random.default_rng(23)
    pool = MaxPoolKernel(index=0, kernel_size=2, stride=2, out_shape=(6, 4, 4))
    task = SimpleNamespace(name="t", thresholds=[])
    x = rng.normal(size=(3, 8, 8, 6)).astype(np.float32)
    pool.variant = "reshape"
    ref = pool.run(x, task, WorkspacePool(), None).copy()
    pool.variant = "views"
    np.testing.assert_array_equal(pool.run(x, task, WorkspacePool(), None), ref)


# ------------------------------------------------------------- quantization ----
def test_quantize_gemm_round_trip_properties():
    rng = np.random.default_rng(29)
    weight_t = rng.normal(size=(36, 9)).astype(np.float32)
    q = quantize_gemm(weight_t, in_absmax=3.0)
    assert np.array_equal(q.weight_q, np.rint(q.weight_q)), "weights must be integer-valued"
    assert np.abs(q.weight_q).max() <= 127.0
    # Per-output-channel scales: dequantized weights land within half a step.
    dequant = q.weight_q * q.w_scale
    assert np.all(np.abs(dequant - weight_t) <= q.w_scale / 2 + 1e-7)
    np.testing.assert_allclose(q.scale, q.w_scale * q.in_scale, rtol=1e-6)
    assert q.in_scale == pytest.approx(3.0 * 1.05 / 127.0)


def small_plan(seed=31, tasks=2, dtype=np.float32):
    rng = np.random.default_rng(seed)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for i in range(tasks):
        add_structured_sparsity_task(
            network, f"task{i}", num_classes=6, rng=rng,
            dead_fraction=0.25, threshold_jitter=0.2,
        )
    return compile_network(network, dtype=dtype)


def test_quantize_plan_requires_calibrated_ranges():
    plan = small_plan()
    with pytest.raises(KeyError, match="activation range"):
        quantize_plan_kernels(plan, SimpleNamespace(ranges={}))


def test_int8_guard_band_keeps_first_layer_decisions_exact():
    """Near-threshold slots are recomputed in float: the first masked layer's
    survive/kill pattern must equal the float32 kernel's exactly."""
    plan = small_plan(seed=37)
    profile = calibrate_plan(plan, batch_size=8, seed=37)
    quantized = small_plan(seed=37)
    quantize_plan_kernels(quantized, profile, set_variant=True)
    rng = np.random.default_rng(41)
    x = np.abs(rng.normal(size=(8, 16, 16, 3))).astype(np.float32)
    f_kernel = next(k for k in plan.kernels if getattr(k, "kind", None) == "conv")
    q_kernel = next(k for k in quantized.kernels if getattr(k, "kind", None) == "conv")
    task_f = plan.tasks[plan.task_names()[0]]
    task_q = quantized.tasks[quantized.task_names()[0]]
    ref = f_kernel.run(x.copy(), task_f, WorkspacePool(), None)
    out = q_kernel.run(x.copy(), task_q, WorkspacePool(), None)
    assert q_kernel.variant == "int8"
    np.testing.assert_array_equal(out == 0.0, ref == 0.0)


def test_calibrate_plan_records_activation_ranges():
    plan = small_plan(seed=43)
    profile = calibrate_plan(plan, batch_size=4, seed=43)
    gemm_names = {k.name for k in plan.kernels if getattr(k, "kind", None) in ("conv", "linear")}
    for task, ranges in profile.ranges.items():
        assert gemm_names <= set(ranges), f"task {task} missing ranges"
        assert all(value > 0.0 for value in ranges.values())


# ------------------------------------------------------------------ chooser ----
def test_autotuner_caches_choices_and_sets_variants():
    plan = small_plan(seed=47)
    choices = autotune_kernel_variants(plan, batch=2, repeats=1, seed=0)
    eligible = {k.name for k in plan.kernels if variant_candidates(k)}
    assert set(choices) == eligible
    assert plan.kernel_choices == choices
    for kernel in plan.kernels:
        if getattr(kernel, "name", None) in choices:
            assert kernel.variant == choices[kernel.name]
            assert choices[kernel.name] in variant_candidates(kernel)


def test_apply_kernel_choices_strict_and_lenient():
    plan = small_plan(seed=53)
    conv = next(k.name for k in plan.kernels if getattr(k, "kind", None) == "conv")
    applied = apply_kernel_choices(plan, {conv: "blocked"})
    assert applied == {conv: "blocked"}
    assert plan.kernel_choices == {conv: "blocked"}
    # Unknown kernel name: strict raises, lenient skips.
    with pytest.raises(KeyError, match="does not have"):
        apply_kernel_choices(plan, {"nope": "blocked"})
    assert apply_kernel_choices(plan, {"nope": "blocked"}, strict=False) == {}
    # Ineligible variant (int8 without quantization): strict raises, lenient skips.
    with pytest.raises(ValueError, match="not eligible"):
        apply_kernel_choices(plan, {conv: "int8"})
    assert apply_kernel_choices(plan, {conv: "int8"}, strict=False) == {}


# ------------------------------------------------------- traffic accounting ----
def test_variant_traffic_accounting():
    rng = np.random.default_rng(59)
    recorder = SparsityRecorder()
    kernel, task = make_conv_kernel(rng, c_in=4, c_out=6, hw=8, mask=True)
    pool = MaxPoolKernel(index=1, kernel_size=2, stride=2, out_shape=(6, 4, 4))
    x = rng.normal(size=(2, 8, 8, 4)).astype(np.float32)
    ws = WorkspacePool()
    for variant in ("im2col", "blocked", "direct"):
        kernel.variant = variant
        y = kernel.run(x, task, ws, recorder)
    for variant in ("reshape", "views"):
        pool.variant = variant
        pool.run(y, task, ws, recorder)
    totals = recorder.variant_totals()
    assert set(totals) == {"im2col", "blocked", "direct", "pool-reshape", "pool-views"}
    for name, entry in totals.items():
        assert entry["calls"] == 1
        assert entry["bytes"] > 0
        assert (entry["macs"] > 0) == (not name.startswith("pool")), name
