"""Model artifact bundles: roundtrips, integrity, the store, spawned loads.

The deployment contract under test: an artifact saved from live plans and
loaded back — in this process or a freshly spawned one — compiles to plans
producing **bit-identical** logits (dense, compact-specialized, and
bit-exact-specialized alike), the manifest's content hashes catch any byte
drift, and the store's versioning/latest-pointer semantics are atomic enough
to build a zero-downtime deployment flow on.
"""

from __future__ import annotations

import json
import multiprocessing
from typing import Dict

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactError,
    ArtifactIntegrityError,
    MANIFEST_NAME,
    ModelArtifact,
    ModelStore,
)
from repro.engine import CalibrationProfile, compile_network, specialize_tasks
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny

TASKS = ("alpha", "beta", "gamma")
#: add_structured_sparsity_task kills channels with thresholds >= ~1e9.
STRUCTURAL_DEAD = 1e8


def structural_profile(plan, network: MimeNetwork) -> CalibrationProfile:
    """Survival derived from thresholds, so dead sets are exact, not sampled."""
    survival: Dict[str, Dict[str, np.ndarray]] = {}
    for task in network.registry:
        per_layer: Dict[str, np.ndarray] = {}
        for spec, param in zip(plan.mask_specs, task.thresholds):
            data = param.data
            if data.ndim == 3:
                dead = (data >= STRUCTURAL_DEAD).all(axis=(1, 2))
            else:
                dead = data >= STRUCTURAL_DEAD
            per_layer[spec.layer_name] = (~dead).astype(float)
        survival[task.name] = per_layer
    return CalibrationProfile(
        survival=survival, num_images={task.name: 1 for task in network.registry}
    )


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=5, rng=rng, dead_fraction=0.3, threshold_jitter=0.2
        )
    plan = compile_network(network, dtype=np.float32)
    profile = structural_profile(plan, network)
    compact = specialize_tasks(plan, profile=profile, compact_reduction=True)
    exact = specialize_tasks(plan, profile=profile, compact_reduction=False)
    return network, plan, profile, compact, exact


def make_batch(plan, seed: int, n: int = 6) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n,) + tuple(plan.input_shape))


# ------------------------------------------------------------ ModelArtifact --
class TestModelArtifactRoundTrip:
    def test_dense_roundtrip_bit_identical(self, workload, tmp_path):
        network, plan, profile, compact, _ = workload
        artifact = ModelArtifact.from_plans(
            "demo", plan, compact, calibration=profile, network=network
        )
        artifact.save(tmp_path / "bundle")
        loaded = ModelArtifact.load(tmp_path / "bundle")
        rebuilt, _ = loaded.build_plans()
        batch = make_batch(plan, seed=11)
        for task in TASKS:
            np.testing.assert_array_equal(plan.run(batch, task), rebuilt.run(batch, task))
            # And the compiled plan still tracks the live training network.
            np.testing.assert_allclose(
                rebuilt.run(batch, task), network.forward(batch, task=task), atol=1e-4
            )

    def test_compact_specialized_roundtrip_bit_identical(self, workload, tmp_path):
        network, plan, profile, compact, _ = workload
        artifact = ModelArtifact.from_plans("demo", plan, compact, calibration=profile)
        artifact.save(tmp_path / "bundle")
        _, rebuilt_specialized = ModelArtifact.load(tmp_path / "bundle").build_plans()
        batch = make_batch(plan, seed=12)
        assert sorted(rebuilt_specialized) == sorted(TASKS)
        for task in TASKS:
            np.testing.assert_array_equal(
                compact[task].run(batch, task), rebuilt_specialized[task].run(batch, task)
            )

    def test_exact_specialized_roundtrip_matches_dense_bit_for_bit(self, workload, tmp_path):
        network, plan, profile, _, exact = workload
        artifact = ModelArtifact.from_plans("demo", plan, exact, calibration=profile)
        artifact.save(tmp_path / "bundle")
        rebuilt_plan, rebuilt_specialized = ModelArtifact.load(tmp_path / "bundle").build_plans()
        batch = make_batch(plan, seed=13)
        for task in TASKS:
            # Scatter-mode guarantee survives the disk roundtrip: specialized
            # logits equal the dense plan's bit for bit (structural dead set).
            np.testing.assert_array_equal(
                rebuilt_specialized[task].run(batch, task), plan.run(batch, task)
            )
            np.testing.assert_array_equal(
                rebuilt_plan.run(batch, task), plan.run(batch, task)
            )

    def test_calibration_and_weights_survive_the_roundtrip(self, workload, tmp_path):
        network, plan, profile, compact, _ = workload
        artifact = ModelArtifact.from_plans(
            "demo", plan, compact, calibration=profile, network=network,
            metadata={"note": "pr5"},
        )
        artifact.save(tmp_path / "bundle")
        loaded = ModelArtifact.load(tmp_path / "bundle")
        assert loaded.metadata == {"note": "pr5"}
        assert sorted(loaded.calibration.tasks()) == sorted(TASKS)
        for task in TASKS:
            for layer in profile.layers(task):
                np.testing.assert_allclose(
                    loaded.calibration.rates(task, layer), profile.rates(task, layer)
                )
        # The flat weight map carries W_parent and every per-task record and
        # can restore a fresh network to the same predictions.
        fresh_backbone = vgg_tiny(
            num_classes=6, input_size=16, in_channels=3, rng=np.random.default_rng(5)
        )
        backbone_state = {
            key[len("backbone."):]: value
            for key, value in loaded.weights.items()
            if key.startswith("backbone.")
        }
        fresh_backbone.load_state_dict(backbone_state)
        restored = MimeNetwork(fresh_backbone)
        restored.eval()
        for name in TASKS:
            add_structured_sparsity_task(
                restored, name, num_classes=5, rng=np.random.default_rng(9)
            )
            task_state = {
                key[len(f"task.{name}."):]: value
                for key, value in loaded.weights.items()
                if key.startswith(f"task.{name}.")
            }
            restored.registry.get(name).load_state_dict(task_state)
        batch = make_batch(plan, seed=14)
        for name in TASKS:
            np.testing.assert_allclose(
                restored.forward(batch, task=name), network.forward(batch, task=name)
            )


class TestModelArtifactIntegrity:
    def test_verify_detects_tampered_payload(self, workload, tmp_path):
        _, plan, profile, compact, _ = workload
        ModelArtifact.from_plans("demo", plan, compact, calibration=profile).save(
            tmp_path / "bundle"
        )
        # Still-parseable bytes that differ from what the manifest hashed:
        # only the integrity check can tell the difference.
        target = tmp_path / "bundle" / "calibration.json"
        target.write_text(json.dumps(json.loads(target.read_text()), indent=None))
        with pytest.raises(ArtifactIntegrityError, match="hash mismatch"):
            ModelArtifact.load(tmp_path / "bundle")
        # verify=False skips the check (operator escape hatch).
        ModelArtifact.load(tmp_path / "bundle", verify=False)

    def test_verify_detects_missing_payload(self, workload, tmp_path):
        _, plan, profile, _, _ = workload
        ModelArtifact.from_plans("demo", plan, calibration=profile).save(tmp_path / "bundle")
        (tmp_path / "bundle" / "calibration.json").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            ModelArtifact.verify(tmp_path / "bundle")

    def test_unsupported_schema_version_rejected(self, workload, tmp_path):
        _, plan, _, _, _ = workload
        ModelArtifact.from_plans("demo", plan).save(tmp_path / "bundle")
        manifest_path = tmp_path / "bundle" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="schema version"):
            ModelArtifact.load(tmp_path / "bundle")

    def test_non_artifact_directory_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="not an artifact"):
            ModelArtifact.load(tmp_path)


# ----------------------------------------------------------- spawned loads --
def _load_and_run_in_child(directory: str, seed: int, task: str, out_path: str) -> None:
    """Spawned-process child: load the artifact, run a batch, save the logits."""
    from repro.artifacts import ModelArtifact

    artifact = ModelArtifact.load(directory)
    plan, specialized = artifact.build_plans()
    batch = np.random.default_rng(seed).normal(size=(4,) + tuple(plan.input_shape))
    np.savez(
        out_path,
        dense=plan.run(batch, task),
        specialized=specialized[task].run(batch, task),
    )


def test_artifact_loads_bit_identically_in_a_spawned_process(workload, tmp_path):
    """The sharded-worker path: a fresh interpreter loads the bundle from disk
    and produces the same bits as the parent's live plans."""
    _, plan, profile, compact, _ = workload
    ModelArtifact.from_plans("demo", plan, compact, calibration=profile).save(
        tmp_path / "bundle"
    )
    out_path = tmp_path / "child_logits.npz"
    ctx = multiprocessing.get_context("spawn")
    child = ctx.Process(
        target=_load_and_run_in_child,
        args=(str(tmp_path / "bundle"), 21, TASKS[1], str(out_path)),
    )
    child.start()
    child.join(120.0)
    assert child.exitcode == 0
    batch = np.random.default_rng(21).normal(size=(4,) + tuple(plan.input_shape))
    with np.load(out_path) as archive:
        np.testing.assert_array_equal(archive["dense"], plan.run(batch, TASKS[1]))
        np.testing.assert_array_equal(
            archive["specialized"], compact[TASKS[1]].run(batch, TASKS[1])
        )


# ------------------------------------------------------------- ModelStore --
class TestModelStore:
    def test_publish_autonumbers_and_moves_latest(self, workload, tmp_path):
        _, plan, profile, compact, _ = workload
        store = ModelStore(tmp_path / "store")
        artifact = ModelArtifact.from_plans("demo", plan, compact, calibration=profile)
        assert store.versions() == []
        assert store.latest() is None
        first = store.publish(artifact)
        second = store.publish(artifact)
        assert (first, second) == ("v001", "v002")
        assert store.versions() == ["v001", "v002"]
        assert store.latest() == "v002"
        loaded = store.load()  # latest
        rebuilt, _ = loaded.build_plans()
        batch = make_batch(plan, seed=31)
        np.testing.assert_array_equal(
            plan.run(batch, TASKS[0]), rebuilt.run(batch, TASKS[0])
        )

    def test_named_versions_and_set_latest(self, workload, tmp_path):
        _, plan, _, _, _ = workload
        store = ModelStore(tmp_path / "store")
        artifact = ModelArtifact.from_plans("demo", plan)
        store.publish(artifact, version="canary", set_latest=False)
        assert store.latest() is None
        store.publish(artifact)  # auto name, becomes latest
        store.set_latest("canary")
        assert store.latest() == "canary"
        assert store.load("canary").name == "demo"
        with pytest.raises(ArtifactError, match="already exists"):
            store.publish(artifact, version="canary")
        with pytest.raises(ArtifactError, match="does not exist"):
            store.set_latest("missing")

    def test_invalid_version_names_rejected(self, workload, tmp_path):
        _, plan, _, _, _ = workload
        store = ModelStore(tmp_path / "store")
        artifact = ModelArtifact.from_plans("demo", plan)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ArtifactError, match="invalid version"):
                store.publish(artifact, version=bad)

    def test_empty_store_load_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="no latest version"):
            ModelStore(tmp_path / "store").load()

    def test_store_verify_catches_post_publish_corruption(self, workload, tmp_path):
        _, plan, _, _, _ = workload
        store = ModelStore(tmp_path / "store")
        version = store.publish(ModelArtifact.from_plans("demo", plan))
        target = store.resolve(version) / "plan.pkl"
        corrupted = bytearray(target.read_bytes())
        corrupted[5] ^= 0xFF
        target.write_bytes(bytes(corrupted))
        with pytest.raises(ArtifactIntegrityError):
            store.verify(version)
