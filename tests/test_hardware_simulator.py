"""Tests for the batch simulator, task modes and throughput model.

These encode the paper's qualitative hardware claims: MIME's advantage appears
in Pipelined task mode (weight re-fetch elimination), zero-skipping tracks the
activation sparsity, throughput scales with dynamic sparsity, and the
PE-array/cache ablation penalises the middle layers.
"""

from __future__ import annotations

import pytest

from repro.hardware import (
    LayerSparsityProfile,
    SystolicArraySimulator,
    case1_config,
    case2_config,
    default_spec,
    mime_config,
    pipelined_task_schedule,
    pruned_config,
    reduced_pe_spec,
    relative_throughput,
    singular_task_schedule,
)
from repro.models import vgg16_layer_shapes

SHAPES = vgg16_layer_shapes(input_size=32)
TASKS = ["cifar10", "cifar100", "fmnist"]
MIME_PROFILE = LayerSparsityProfile.uniform(TASKS, 0.65)
BASE_PROFILE = LayerSparsityProfile.uniform(TASKS, 0.50)


def _run(config, schedule, profile, spec=None, conv_only=True):
    simulator = SystolicArraySimulator(spec or default_spec())
    return simulator.run(SHAPES, schedule, profile, config, conv_only=conv_only)


class TestBatchResult:
    def test_layer_names_are_convs_only(self):
        result = _run(case1_config(), singular_task_schedule(["cifar10"]), BASE_PROFILE)
        assert result.layer_names() == [f"conv{i}" for i in range(1, 14)]

    def test_full_network_includes_fc(self):
        result = _run(case1_config(), singular_task_schedule(["cifar10"]), BASE_PROFILE, conv_only=False)
        assert "fc14" in result.layer_names()

    def test_layer_lookup_and_total(self):
        result = _run(case1_config(), singular_task_schedule(["cifar10"]), BASE_PROFILE)
        layer = result.layer("conv2")
        assert layer.energy.total > 0
        assert result.total_energy().total == pytest.approx(
            sum(layer.energy.total for layer in result.layers)
        )
        with pytest.raises(KeyError):
            result.layer("conv99")

    def test_energy_report_round_trip(self):
        result = _run(case2_config(), singular_task_schedule(["cifar10"]), BASE_PROFILE)
        report = result.energy_report()
        assert report.scenario == result.scenario
        assert set(report.layer_names()) == set(result.layer_names())

    def test_empty_inputs_rejected(self):
        simulator = SystolicArraySimulator()
        with pytest.raises(ValueError):
            simulator.run([], singular_task_schedule(["a"]), BASE_PROFILE, case1_config())
        with pytest.raises(ValueError):
            simulator.run(SHAPES, [], BASE_PROFILE, case1_config())


class TestSingularMode:
    def test_zero_skipping_saves_energy(self):
        schedule = singular_task_schedule(["cifar10"], images_per_task=3)
        dense = _run(case1_config(), schedule, BASE_PROFILE)
        skipped = _run(case2_config(), schedule, BASE_PROFILE)
        assert skipped.total_energy().total < dense.total_energy().total

    def test_mime_beats_baselines_on_total(self):
        schedule = singular_task_schedule(["cifar10"], images_per_task=3)
        case1 = _run(case1_config(), schedule, BASE_PROFILE)
        case2 = _run(case2_config(), schedule, BASE_PROFILE)
        mime = _run(mime_config(), schedule, MIME_PROFILE)
        assert mime.total_energy().total < case2.total_energy().total < case1.total_energy().total

    def test_mime_dram_not_lower_than_case2_in_singular_mode(self):
        """Paper, Section V-B: in Singular mode MIME's E_DRAM is slightly higher
        than Case-2 because thresholds must also be fetched."""
        schedule = singular_task_schedule(["cifar10"], images_per_task=3)
        case2 = _run(case2_config(), schedule, BASE_PROFILE)
        mime = _run(mime_config(), schedule, MIME_PROFILE)
        for layer in ("conv2", "conv5", "conv8"):
            assert mime.layer(layer).energy.e_dram >= case2.layer(layer).energy.e_dram * 0.95


class TestPipelinedMode:
    def test_conventional_reloads_weights_per_task(self):
        schedule = pipelined_task_schedule(TASKS)
        case2 = _run(case2_config(), schedule, BASE_PROFILE)
        mime = _run(mime_config(), schedule, MIME_PROFILE)
        assert case2.layer("conv8").weight_load_events == 3
        assert mime.layer("conv8").weight_load_events == 1
        assert mime.layer("conv8").threshold_load_events == 3

    def test_pipelined_savings_exceed_singular_savings(self):
        """The whole point of the paper: MIME's advantage grows in Pipelined mode."""
        singular = singular_task_schedule(["cifar10"], images_per_task=3)
        pipelined = pipelined_task_schedule(TASKS)

        def saving(schedule):
            baseline = _run(case2_config(), schedule, BASE_PROFILE)
            mime = _run(mime_config(), schedule, MIME_PROFILE)
            return baseline.total_energy().total / mime.total_energy().total

        assert saving(pipelined) > saving(singular)

    def test_mime_dram_advantage_in_deep_layers(self):
        """In deep layers (weights >> thresholds) MIME's DRAM energy is far lower."""
        schedule = pipelined_task_schedule(TASKS)
        case2 = _run(case2_config(), schedule, BASE_PROFILE)
        mime = _run(mime_config(), schedule, MIME_PROFILE)
        assert mime.layer("conv13").energy.e_dram < 0.6 * case2.layer("conv13").energy.e_dram

    def test_energy_scales_with_rounds(self):
        one = _run(mime_config(), pipelined_task_schedule(TASKS, rounds=1), MIME_PROFILE)
        two = _run(mime_config(), pipelined_task_schedule(TASKS, rounds=2), MIME_PROFILE)
        assert two.total_energy().total > 1.5 * one.total_energy().total

    def test_per_task_sparsity_differences_matter(self):
        profile = LayerSparsityProfile(
            per_task={
                "cifar10": {name: 0.8 for name in (s.name for s in SHAPES)},
                "cifar100": {name: 0.2 for name in (s.name for s in SHAPES)},
            }
        )
        sched_sparse = pipelined_task_schedule(["cifar10"])
        sched_dense = pipelined_task_schedule(["cifar100"])
        sparse = _run(mime_config(), sched_sparse, profile)
        dense = _run(mime_config(), sched_dense, profile)
        assert sparse.total_energy().total < dense.total_energy().total


class TestPrunedComparison:
    def test_pruned_models_do_not_save_weight_dram_by_default(self):
        schedule = pipelined_task_schedule(TASKS)
        pruned = _run(pruned_config(), schedule, BASE_PROFILE)
        case2 = _run(case2_config(), schedule, BASE_PROFILE)
        assert pruned.layer("conv8").param_dram_words == pytest.approx(
            case2.layer("conv8").param_dram_words
        )

    def test_compressed_storage_reduces_weight_dram(self):
        schedule = pipelined_task_schedule(TASKS)
        dense = _run(pruned_config(), schedule, BASE_PROFILE)
        compressed = _run(pruned_config(compressed_weight_storage=True), schedule, BASE_PROFILE)
        assert compressed.layer("conv8").param_dram_words < 0.2 * dense.layer("conv8").param_dram_words

    def test_weight_zero_skipping_reduces_macs(self):
        schedule = pipelined_task_schedule(TASKS)
        gated = _run(pruned_config(weight_zero_skipping=True), schedule, BASE_PROFILE)
        dense = _run(pruned_config(), schedule, BASE_PROFILE)
        assert gated.layer("conv8").macs == pytest.approx(0.1 * dense.layer("conv8").macs)


class TestThroughput:
    def test_mime_throughput_tracks_sparsity(self):
        schedule = pipelined_task_schedule(TASKS)
        case1 = _run(case1_config(), schedule, BASE_PROFILE)
        mime = _run(mime_config(), schedule, MIME_PROFILE)
        report = relative_throughput(case1, mime)
        # With 65 % dynamic sparsity the MAC count drops ~2.9x; allow the pass
        # overhead to shave a little off.
        for layer in ("conv5", "conv8", "conv12"):
            assert 2.0 < report.per_layer[layer] < 3.2
        assert report.min >= 1.0
        assert report.mean > 2.0

    def test_reference_against_itself_is_unity(self):
        schedule = pipelined_task_schedule(TASKS)
        case1 = _run(case1_config(), schedule, BASE_PROFILE)
        report = relative_throughput(case1, case1)
        assert all(value == pytest.approx(1.0) for value in report.per_layer.values())

    def test_zero_cycles_rejected(self):
        schedule = pipelined_task_schedule(TASKS)
        case1 = _run(case1_config(), schedule, BASE_PROFILE)
        broken = _run(case1_config(), schedule, BASE_PROFILE)
        broken.layers[0].cycles = 0.0
        with pytest.raises(ValueError):
            relative_throughput(case1, broken)


class TestAblation:
    def test_smaller_pe_array_costs_more_in_middle_layers(self):
        """Fig. 9 Case-B: fewer PEs force extra parameter re-fetches for the
        layers whose weights exceed the cache and whose spatial maps exceed the
        PE count; early small layers are unaffected."""
        shapes = vgg16_layer_shapes(input_size=112)
        schedule = pipelined_task_schedule(TASKS)
        simulator_a = SystolicArraySimulator(default_spec())
        simulator_b = SystolicArraySimulator(reduced_pe_spec(256))
        result_a = simulator_a.run(shapes, schedule, MIME_PROFILE, mime_config(), conv_only=True)
        result_b = simulator_b.run(shapes, schedule, MIME_PROFILE, mime_config(), conv_only=True)
        ratio = {
            name: result_b.layer(name).energy.total / result_a.layer(name).energy.total
            for name in result_a.layer_names()
        }
        assert ratio["conv5"] > 1.01
        assert ratio["conv2"] == pytest.approx(1.0, abs=1e-6)
        assert max(ratio.values()) > 1.03

    def test_reduced_cache_has_smaller_effect_than_reduced_pe(self):
        """Fig. 9: shrinking the cache is much cheaper than shrinking the PE array."""
        from repro.hardware import reduced_cache_spec

        shapes = vgg16_layer_shapes(input_size=112)
        schedule = pipelined_task_schedule(TASKS)
        base = SystolicArraySimulator(default_spec()).run(
            shapes, schedule, MIME_PROFILE, mime_config(), conv_only=True
        )
        small_pe = SystolicArraySimulator(reduced_pe_spec(256)).run(
            shapes, schedule, MIME_PROFILE, mime_config(), conv_only=True
        )
        small_cache = SystolicArraySimulator(reduced_cache_spec()).run(
            shapes, schedule, MIME_PROFILE, mime_config(), conv_only=True
        )
        pe_penalty = small_pe.total_energy().total / base.total_energy().total
        cache_penalty = small_cache.total_energy().total / base.total_energy().total
        assert pe_penalty > cache_penalty
        assert cache_penalty < 1.05
