"""Tests for the layer implementations, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from tests.conftest import numeric_gradient

RNG = np.random.default_rng(42)


def _check_input_gradient(layer, x, tolerance=1e-5):
    """Compare analytical input gradients against central differences."""
    out = layer(x)
    upstream = RNG.normal(size=out.shape)
    grad_input = layer.backward(upstream)

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numeric_gradient(loss, x)
    # Re-run forward once more so the layer cache corresponds to x again.
    layer.forward(x)
    assert np.allclose(grad_input, numeric, atol=tolerance), (
        f"gradient mismatch for {type(layer).__name__}"
    )


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(6, 4, rng=RNG)
        out = layer(RNG.normal(size=(5, 6)))
        assert out.shape == (5, 4)

    def test_forward_matches_manual(self):
        layer = Linear(3, 2, rng=RNG)
        x = RNG.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x), expected)

    def test_input_gradient(self):
        layer = Linear(5, 3, rng=RNG)
        _check_input_gradient(layer, RNG.normal(size=(3, 5)))

    def test_weight_gradient(self):
        layer = Linear(4, 2, rng=RNG)
        x = RNG.normal(size=(6, 4))
        out = layer(x)
        upstream = RNG.normal(size=out.shape)
        layer.backward(upstream)

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        numeric = numeric_gradient(loss, layer.weight.data)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-5)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=RNG)
        assert layer.bias is None
        assert layer(RNG.normal(size=(2, 3))).shape == (2, 2)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_wrong_input_shape_raises(self):
        layer = Linear(3, 2, rng=RNG)
        with pytest.raises(ValueError):
            layer(RNG.normal(size=(2, 4)))


class TestConv2d:
    def test_output_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=RNG)
        out = layer(RNG.normal(size=(2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_stride_and_no_padding_shape(self):
        layer = Conv2d(2, 4, kernel_size=3, stride=2, rng=RNG)
        out = layer(RNG.normal(size=(1, 2, 9, 9)))
        assert out.shape == (1, 4, 4, 4)

    def test_matches_direct_convolution(self):
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=RNG)
        x = RNG.normal(size=(1, 2, 5, 5))
        out = layer(x)
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for oc in range(3):
            for i in range(5):
                for j in range(5):
                    patch = padded[0, :, i : i + 3, j : j + 3]
                    expected = np.sum(patch * layer.weight.data[oc]) + layer.bias.data[oc]
                    assert np.isclose(out[0, oc, i, j], expected)

    def test_input_gradient(self):
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=RNG)
        _check_input_gradient(layer, RNG.normal(size=(2, 2, 5, 5)))

    def test_weight_gradient(self):
        layer = Conv2d(1, 2, kernel_size=3, rng=RNG)
        x = RNG.normal(size=(2, 1, 5, 5))
        out = layer(x)
        upstream = RNG.normal(size=out.shape)
        layer.backward(upstream)

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        numeric = numeric_gradient(loss, layer.weight.data)
        assert np.allclose(layer.weight.grad, numeric, atol=1e-5)

    def test_frozen_weights_skip_grad(self):
        layer = Conv2d(1, 2, kernel_size=3, rng=RNG)
        layer.weight.requires_grad = False
        out = layer(RNG.normal(size=(1, 1, 5, 5)))
        layer.backward(np.ones_like(out))
        assert layer.weight.grad is None

    def test_output_shape_helper(self):
        layer = Conv2d(3, 16, kernel_size=3, padding=1, rng=RNG)
        assert layer.output_shape((3, 32, 32)) == (16, 32, 32)

    def test_wrong_channel_count_raises(self):
        layer = Conv2d(3, 4, kernel_size=3, rng=RNG)
        with pytest.raises(ValueError):
            layer(RNG.normal(size=(1, 2, 8, 8)))


class TestPooling:
    def test_maxpool_values(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer(x)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        assert np.allclose(grad, expected)

    def test_maxpool_input_gradient(self):
        layer = MaxPool2d(2)
        _check_input_gradient(layer, RNG.normal(size=(2, 3, 6, 6)))

    def test_avgpool_values(self):
        layer = AvgPool2d(2)
        x = np.ones((1, 2, 4, 4))
        assert np.allclose(layer(x), np.ones((1, 2, 2, 2)))

    def test_avgpool_input_gradient(self):
        layer = AvgPool2d(2)
        _check_input_gradient(layer, RNG.normal(size=(1, 2, 4, 4)))

    def test_global_avgpool(self):
        layer = GlobalAvgPool2d()
        x = RNG.normal(size=(3, 4, 5, 5))
        assert np.allclose(layer(x), x.mean(axis=(2, 3)))

    def test_global_avgpool_gradient(self):
        layer = GlobalAvgPool2d()
        _check_input_gradient(layer, RNG.normal(size=(2, 3, 4, 4)))


class TestActivations:
    def test_relu_forward(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0], [0.5, -3.0]])
        assert np.allclose(layer(x), [[0, 2], [0.5, 0]])

    def test_relu_sparsity(self):
        layer = ReLU()
        layer(np.array([[-1.0, 2.0, -0.5, 4.0]]))
        assert layer.last_sparsity() == pytest.approx(0.5)

    def test_relu_gradient(self):
        layer = ReLU()
        x = RNG.normal(size=(4, 7)) + 0.1  # avoid values exactly at the kink
        _check_input_gradient(layer, x)

    def test_sigmoid_gradient(self):
        _check_input_gradient(Sigmoid(), RNG.normal(size=(3, 5)))

    def test_tanh_gradient(self):
        _check_input_gradient(Tanh(), RNG.normal(size=(3, 5)))

    def test_identity_passthrough(self):
        layer = Identity()
        x = RNG.normal(size=(2, 2))
        assert np.allclose(layer(x), x)
        assert np.allclose(layer.backward(x), x)


class TestBatchNorm:
    def test_batchnorm2d_normalises(self):
        layer = BatchNorm2d(3)
        x = RNG.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4))
        out = layer(x)
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 0.05

    def test_batchnorm1d_normalises(self):
        layer = BatchNorm1d(6)
        x = RNG.normal(loc=-2.0, scale=3.0, size=(64, 6))
        out = layer(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_running_stats_used_in_eval(self):
        layer = BatchNorm1d(2, momentum=1.0)
        x = RNG.normal(loc=4.0, size=(32, 2))
        layer(x)
        layer.eval()
        out = layer(np.full((4, 2), 4.0))
        assert np.all(np.abs(out) < 1.0)

    def test_batchnorm2d_gradient(self):
        layer = BatchNorm2d(2)
        _check_input_gradient(layer, RNG.normal(size=(4, 2, 3, 3)), tolerance=1e-4)

    def test_state_dict_includes_running_stats(self):
        layer = BatchNorm2d(3)
        state = layer.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_invalid_features_raise(self):
        with pytest.raises(ValueError):
            BatchNorm2d(0)


class TestDropoutFlatten:
    def test_dropout_eval_is_identity(self):
        layer = Dropout(0.5, rng=RNG)
        layer.eval()
        x = RNG.normal(size=(10, 10))
        assert np.allclose(layer(x), x)

    def test_dropout_zeroes_roughly_p_fraction(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer(x)
        zero_fraction = np.mean(out == 0)
        assert 0.25 < zero_fraction < 0.35

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten_round_trip(self):
        layer = Flatten()
        x = RNG.normal(size=(2, 3, 4, 5))
        out = layer(x)
        assert out.shape == (2, 60)
        grad = layer.backward(out)
        assert grad.shape == x.shape


class TestSequential:
    def test_forward_backward_chain(self):
        model = Sequential(Linear(6, 5, rng=RNG), ReLU(), Linear(5, 2, rng=RNG))
        x = RNG.normal(size=(3, 6))
        out = model(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_indexing_and_len(self):
        model = Sequential(Linear(2, 2), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_output_shape_propagation(self):
        model = Sequential(Conv2d(3, 8, 3, padding=1, rng=RNG), ReLU(), MaxPool2d(2), Flatten())
        assert model.output_shape((3, 8, 8)) == (8 * 4 * 4,)

    def test_append_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential().append("not a module")
