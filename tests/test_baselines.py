"""Tests for conventional fine-tuning, from-scratch training and pruning at init."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    SupervisedTrainer,
    clone_vgg,
    finetune_child,
    magnitude_prune,
    measure_weight_sparsity,
    prune_at_init,
    snip_prune,
    train_from_scratch,
    train_parent,
)
from repro.baselines.prune_at_init import apply_masks
from repro.datasets import DataLoader
from repro.models import vgg_tiny

RNG = np.random.default_rng(17)


class TestSupervisedTrainer:
    def test_training_reduces_loss(self, tiny_backbone, tiny_task, tiny_loader):
        tiny_backbone.replace_classifier_head(tiny_task.num_classes)
        trainer = SupervisedTrainer(tiny_backbone, lr=2e-3)
        history = trainer.fit(tiny_loader, epochs=4)
        assert history.epochs == 4
        assert history.train_loss[-1] < history.train_loss[0]

    def test_evaluate(self, tiny_backbone, tiny_task):
        tiny_backbone.replace_classifier_head(tiny_task.num_classes)
        trainer = SupervisedTrainer(tiny_backbone)
        loss, acc = trainer.evaluate(DataLoader(tiny_task.test, batch_size=8))
        assert loss > 0 and 0.0 <= acc <= 1.0

    def test_weight_masks_enforced_after_steps(self, tiny_task, tiny_loader):
        model = vgg_tiny(num_classes=tiny_task.num_classes, input_size=16, rng=RNG)
        masks = magnitude_prune(model, sparsity=0.8)
        apply_masks(model, masks)
        trainer = SupervisedTrainer(model, lr=1e-3, weight_masks=masks)
        trainer.fit(tiny_loader, epochs=2)
        sparsity = measure_weight_sparsity(model)
        assert all(value >= 0.79 for value in sparsity.values())

    def test_unknown_mask_name_raises(self, tiny_backbone):
        with pytest.raises(KeyError):
            SupervisedTrainer(tiny_backbone, weight_masks={"nope": np.ones(1)})

    def test_invalid_optimizer_raises(self, tiny_backbone):
        with pytest.raises(ValueError):
            SupervisedTrainer(tiny_backbone, optimizer="adagrad")

    def test_invalid_epochs_raise(self, tiny_backbone, tiny_loader):
        with pytest.raises(ValueError):
            SupervisedTrainer(tiny_backbone).fit(tiny_loader, epochs=0)


class TestCloneAndFinetune:
    def test_clone_copies_weights(self, tiny_backbone):
        clone = clone_vgg(tiny_backbone)
        for (name_a, a), (name_b, b) in zip(
            tiny_backbone.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            assert np.allclose(a.data, b.data)

    def test_clone_is_independent(self, tiny_backbone):
        clone = clone_vgg(tiny_backbone)
        first = next(iter(clone.parameters()))
        first.data += 1.0
        original_first = next(iter(tiny_backbone.parameters()))
        assert not np.allclose(first.data, original_first.data)

    def test_clone_with_new_head(self, tiny_backbone):
        clone = clone_vgg(tiny_backbone, num_classes=9)
        out = clone(RNG.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 9)

    def test_clone_is_trainable(self, tiny_backbone):
        tiny_backbone.freeze()
        clone = clone_vgg(tiny_backbone)
        assert all(p.requires_grad for p in clone.parameters())

    def test_train_parent_returns_accuracy(self, tiny_backbone, tiny_task):
        tiny_backbone.replace_classifier_head(tiny_task.num_classes)
        _, accuracy = train_parent(tiny_backbone, tiny_task, epochs=2, batch_size=16)
        assert 0.0 <= accuracy <= 1.0

    def test_finetune_child_learns(self, tiny_task):
        parent = vgg_tiny(num_classes=6, input_size=16, rng=np.random.default_rng(0))
        child, history, accuracy = finetune_child(
            parent, tiny_task, epochs=6, batch_size=16, lr=2e-3
        )
        assert child.num_classes == tiny_task.num_classes
        assert history.train_accuracy[-1] > 1.0 / tiny_task.num_classes
        assert 0.0 <= accuracy <= 1.0
        # Fine-tuning must not modify the parent model itself.
        assert parent.num_classes == 6

    def test_train_from_scratch(self, tiny_task):
        model = vgg_tiny(num_classes=tiny_task.num_classes, input_size=16, rng=RNG)
        history, accuracy = train_from_scratch(model, tiny_task, epochs=2, batch_size=16)
        assert history.epochs == 2
        assert 0.0 <= accuracy <= 1.0


class TestPruning:
    def test_magnitude_prune_hits_target_layerwise(self):
        model = vgg_tiny(num_classes=4, input_size=16, rng=RNG)
        masks = magnitude_prune(model, sparsity=0.9)
        apply_masks(model, masks)
        for name, value in measure_weight_sparsity(model).items():
            assert value == pytest.approx(0.9, abs=0.02), name

    def test_snip_prune_hits_target(self, tiny_task, tiny_loader):
        model = vgg_tiny(num_classes=tiny_task.num_classes, input_size=16, rng=RNG)
        masks = snip_prune(model, iter(tiny_loader), sparsity=0.9)
        apply_masks(model, masks)
        for value in measure_weight_sparsity(model).values():
            assert value == pytest.approx(0.9, abs=0.02)

    def test_prune_only_touches_weight_tensors(self):
        model = vgg_tiny(num_classes=4, input_size=16, rng=RNG)
        masks = magnitude_prune(model, sparsity=0.5)
        assert all(name.endswith("weight") for name in masks)
        assert not any("bias" in name for name in masks)

    def test_prune_at_init_dispatches_methods(self, tiny_task, tiny_loader):
        model = vgg_tiny(num_classes=tiny_task.num_classes, input_size=16, rng=RNG)
        masks = prune_at_init(model, sparsity=0.8, method="magnitude")
        assert masks
        model2 = vgg_tiny(num_classes=tiny_task.num_classes, input_size=16, rng=RNG)
        masks2 = prune_at_init(model2, sparsity=0.8, method="snip", batches=iter(tiny_loader))
        assert masks2

    def test_snip_requires_batches(self):
        model = vgg_tiny(num_classes=4, input_size=16, rng=RNG)
        with pytest.raises(ValueError):
            prune_at_init(model, method="snip", batches=None)

    def test_invalid_sparsity_raises(self):
        model = vgg_tiny(num_classes=4, input_size=16, rng=RNG)
        with pytest.raises(ValueError):
            magnitude_prune(model, sparsity=1.0)

    def test_unknown_method_raises(self):
        model = vgg_tiny(num_classes=4, input_size=16, rng=RNG)
        with pytest.raises(ValueError):
            prune_at_init(model, method="random")

    def test_pruned_training_keeps_sparsity_and_learns(self, tiny_task):
        model = vgg_tiny(num_classes=tiny_task.num_classes, input_size=16, rng=np.random.default_rng(4))
        loader = DataLoader(tiny_task.train, batch_size=16, shuffle=True, rng=np.random.default_rng(5))
        masks = prune_at_init(model, sparsity=0.7, method="magnitude")
        trainer = SupervisedTrainer(model, lr=3e-3, weight_masks=masks)
        history = trainer.fit(loader, epochs=5)
        assert history.train_loss[-1] < history.train_loss[0]
        assert all(v >= 0.69 for v in measure_weight_sparsity(model).values())

    def test_never_prunes_every_weight(self):
        model = vgg_tiny(num_classes=2, input_size=16, rng=RNG)
        masks = magnitude_prune(model, sparsity=0.999)
        for mask in masks.values():
            assert mask.sum() >= 1
