"""Shared fixtures for the test suite.

Everything here is deliberately tiny (a handful of classes, 16x16 images, a
three-convolution backbone) so the full suite runs in well under a minute on
CPU while still exercising every code path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import ArrayDataset, DataLoader, cifar10_surrogate, fmnist_surrogate
from repro.models import vgg_tiny
from repro.mime import MimeNetwork


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden JSON snapshots under tests/golden/ "
        "instead of asserting against them (review the diff before committing)",
    )


@pytest.fixture(scope="session")
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden files (``--update-golden``)."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_task():
    """A small 3-class RGB child-task surrogate at 16x16."""
    return cifar10_surrogate(scale=0.3, backbone_size=16, samples_per_class=20, seed=11)


@pytest.fixture(scope="session")
def tiny_grey_task():
    """A small greyscale child-task surrogate adapted to the RGB backbone."""
    return fmnist_surrogate(scale=0.3, backbone_size=16, samples_per_class=20, seed=12)


@pytest.fixture()
def tiny_backbone():
    """A freshly initialised miniature VGG backbone for 16x16 RGB inputs."""
    return vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=np.random.default_rng(0))


@pytest.fixture()
def tiny_mime(tiny_backbone, tiny_task):
    """A MimeNetwork with one registered task, ready for training/inference."""
    network = MimeNetwork(tiny_backbone)
    network.add_task(tiny_task.name, tiny_task.num_classes, rng=np.random.default_rng(3))
    return network


@pytest.fixture()
def tiny_loader(tiny_task):
    return DataLoader(tiny_task.train, batch_size=16, shuffle=True, rng=np.random.default_rng(5))


@pytest.fixture()
def small_dataset(rng):
    """A raw ArrayDataset for loader/split tests."""
    images = rng.normal(size=(40, 3, 8, 8))
    labels = rng.integers(0, 4, size=40)
    return ArrayDataset(images, labels, name="unit", num_classes=4)


def numeric_gradient(fn, array: np.ndarray, epsilon: float = 1e-5) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = fn()
        flat[index] = original - epsilon
        minus = fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad
