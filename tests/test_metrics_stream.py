"""The observability layer: clock-domain fixes, windows, events, Prometheus.

Covers the windowed-metrics stream end to end — window deltas must
*partition* a run (their completed counts sum to the final report's total),
events must land in the stream with runtime-clock timestamps, and the
Prometheus endpoint must expose it all over HTTP — plus the clock bugfixes
that make windowing deterministic: submit/swap timeout budgets and mid-run
report durations all run on the runtime's injectable clock, verified here
with a :class:`ManualClock` and zero real sleeps on the deadline paths.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.engine import SparsityRecorder, calibrate_plan, compile_network
from repro.engine.scheduling import get_policy
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny
from repro.serving import (
    DynamicBatcher,
    LoadGenerator,
    ManualClock,
    MetricsServer,
    MetricsStream,
    QueueFullError,
    RecalibrationLoop,
    ServingMetrics,
    ServingRequest,
    ServingResult,
    ServingRuntime,
    ShardedRuntime,
)
from repro.serving.base import PlanSet

TASKS = ("alpha", "beta", "gamma")


@pytest.fixture(scope="module")
def served():
    rng = np.random.default_rng(21)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=5, rng=rng, dead_fraction=0.2, threshold_jitter=0.2
        )
    plan = compile_network(network, dtype=np.float32)
    return network, plan


def wait_until(predicate, timeout=30.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def observe(metrics, task, count, shard=None, latency=0.01, wait=0.001, misses=0):
    """Record one batch of ``count`` requests with ``misses`` deadline misses."""
    results = [False] * misses + [True] * (count - misses)
    metrics.observe_batch(
        task,
        [latency] * count,
        [wait] * count,
        switched=False,
        deadline_results=results,
        shard=shard,
    )


# ---------------------------------------------------------- clock bugfixes ----
class TestClockDomainFixes:
    """Satellites 1 & 2: every budget and window on the injectable clock."""

    def test_midrun_report_reads_construction_clock(self):
        """A live runtime's report without an explicit `now` must measure
        start→clock(), never the old `started_at - started_at` zero."""
        clock = ManualClock(start=100.0)
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        observe(metrics, "alpha", 4)
        clock.advance(2.5)
        report = metrics.report("fifo-deadline", 2)
        assert report.duration == pytest.approx(2.5)
        assert report.throughput == pytest.approx(4 / 2.5)

    def test_report_prefers_explicit_now_and_stop(self):
        clock = ManualClock(start=10.0)
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(10.0)
        clock.advance(100.0)
        assert metrics.report("p", 1, now=13.0).duration == pytest.approx(3.0)
        metrics.mark_stop(14.0)
        # A stopped window is final: later clock readings cannot stretch it.
        assert metrics.report("p", 1).duration == pytest.approx(4.0)
        assert metrics.report("p", 1, now=999.0).duration == pytest.approx(4.0)

    def test_submit_wait_budget_runs_on_runtime_clock(self, served):
        """A submit blocked at the swap intake gate must time out when the
        *runtime* clock passes its budget — regression for the raw
        time.monotonic() budgets that ManualClock tests could not drive."""
        _, plan = served
        clock = ManualClock(start=10.0)
        runtime = ServingRuntime(plan, workers=1, clock=clock)
        runtime._pause_intake()
        errors = []

        def submitter():
            image = np.zeros(plan.input_shape, dtype=np.float32)
            try:
                runtime.submit("alpha", image, timeout=5.0)
            except Exception as error:  # noqa: BLE001 - collected for assertion
                errors.append(error)

        thread = threading.Thread(target=submitter)
        thread.start()
        # Let the submitter compute its give-up time and block on the gate
        # before moving the clock past it.
        wait_until(
            lambda: len(runtime._intake_gate._waiters) > 0 or not thread.is_alive(),
            message="submitter parked at the intake gate",
        )
        clock.advance(6.0)
        with runtime._intake_gate:
            runtime._intake_gate.notify_all()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], QueueFullError)
        assert "still paused" in str(errors[0])
        assert runtime.report().rejected == 1
        runtime._resume_intake()

    def test_swap_timeout_expires_on_manual_clock(self, served):
        """swap(timeout=60) against a drain that never quiesces must raise
        within real milliseconds once the manual clock jumps past the budget
        (give-up deadline and drain waits share the injectable clock)."""
        _, plan = served
        clock = ManualClock(start=50.0)
        runtime = ServingRuntime(
            plan, workers=1, micro_batch=1, max_wait=0.01, clock=clock
        )
        runtime.start()
        try:
            # Hold the drain barrier open: the batch executes but is never
            # marked done, so quiescent() can only end by timing out.
            runtime._batcher.task_done = lambda: None
            image = np.zeros(plan.input_shape, dtype=np.float32)
            future = runtime.submit("alpha", image)
            assert future.result(timeout=30.0).shape == (5,)
            ticker = threading.Timer(0.3, lambda: clock.advance(61.0))
            ticker.start()
            began = time.monotonic()
            with pytest.raises(TimeoutError, match="quiesce"):
                runtime.swap(PlanSet(plan), timeout=60.0)
            assert time.monotonic() - began < 20.0
            ticker.join()
        finally:
            runtime.stop(drain=False)

    def test_batcher_quiescent_deadline_on_injected_clock(self):
        clock = ManualClock()
        batcher = DynamicBatcher(
            micro_batch=4, max_wait=0.01, policy=get_policy("fifo-deadline"), clock=clock
        )
        result = ServingResult(0, "alpha", clock(), None)
        batcher.submit(ServingRequest(0, "alpha", np.zeros(3), clock(), None, result))
        batcher.flush()
        assert batcher.next_batch() is not None  # in flight; task_done never called
        outcome = []
        waiter = threading.Thread(
            target=lambda: outcome.append(batcher.quiescent(timeout=60.0))
        )
        waiter.start()
        time.sleep(0.1)
        clock.advance(61.0)
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()
        assert outcome == [False]


# ------------------------------------------------------------ NaN rendering ----
class TestEmptyRunRendering:
    """Satellite 3: empty runs render `-`, and to_dict is NaN-free."""

    def test_empty_run_summary_has_no_nan(self):
        report = ServingMetrics().report("fifo-deadline", 2)
        text = report.summary()
        assert "nan" not in text
        assert "p50/p95/p99: - / - / - ms (max - ms)" in text
        assert "queue wait p50/p95: - / - ms" in text

    def test_to_dict_maps_every_nan_to_none(self):
        payload = ServingMetrics().report("fifo-deadline", 2).to_dict()
        for digest in ("latency", "queue_wait"):
            for key, value in payload[digest].items():
                if key != "count":
                    assert value is None, f"{digest}.{key} leaked NaN"

        def no_nan(node):
            if isinstance(node, float):
                assert not math.isnan(node)
            elif isinstance(node, dict):
                for item in node.values():
                    no_nan(item)
            elif isinstance(node, list):
                for item in node:
                    no_nan(item)

        no_nan(payload)
        json.loads(json.dumps(payload))  # valid JSON end to end

    def test_window_snapshot_to_dict_nan_safe(self):
        clock = ManualClock()
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        clock.advance(1.0)
        snapshot = metrics.window_report()
        payload = snapshot.to_dict()
        assert payload["latency"]["p50"] is None
        json.loads(json.dumps(payload))


# ------------------------------------------------------------------ windows ----
class TestWindowedSnapshots:
    def test_windows_partition_the_run(self):
        """Consecutive window deltas sum to the cumulative report — windows
        never reset the accumulator underneath the final report."""
        clock = ManualClock(start=0.0)
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        sizes = (3, 0, 5, 2)
        snapshots = []
        for index, size in enumerate(sizes):
            if size:
                observe(metrics, "alpha", size, shard=index % 2, misses=min(size, 1))
            metrics.observe_shed(index)  # 0+1+2+3 = 6 cumulative
            clock.advance(1.0)
            snapshots.append(metrics.window_report())
        assert [snap.index for snap in snapshots] == [0, 1, 2, 3]
        assert [snap.completed for snap in snapshots] == list(sizes)
        assert [snap.shed for snap in snapshots] == [0, 1, 2, 3]
        assert all(snap.duration == pytest.approx(1.0) for snap in snapshots)
        # The empty window has NaN latency sentinels, not stale samples.
        assert snapshots[1].latency.count == 0
        assert math.isnan(snapshots[1].latency.p50)
        assert snapshots[2].per_shard == {0: 5}
        assert snapshots[2].miss_rate == pytest.approx(1 / 5)
        report = metrics.report("p", 1)
        assert sum(snap.completed for snap in snapshots) == report.completed == 10
        assert sum(snap.deadline_misses for snap in snapshots) == report.deadline_misses
        assert report.shed == 6

    def test_window_gauges_and_drift_are_instantaneous(self):
        clock = ManualClock()
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        clock.advance(1.0)
        snapshot = metrics.window_report(
            queue_depth={"alpha": 7}, shard_depth={0: 2, 1: -1}, drift=0.25
        )
        assert snapshot.queue_depth == {"alpha": 7}
        assert snapshot.shard_depth == {0: 2, 1: -1}
        assert snapshot.drift == pytest.approx(0.25)
        clock.advance(1.0)
        # Gauges do not carry over: the next window reports what it is given.
        assert metrics.window_report().queue_depth == {}

    def test_stream_polls_close_on_the_interval(self):
        clock = ManualClock(start=100.0)
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        stream = MetricsStream(metrics, clock, interval=1.0)
        assert stream.poll() is None  # window still open
        observe(metrics, "alpha", 2)
        clock.advance(0.5)
        assert stream.poll() is None
        clock.advance(0.5)
        first = stream.poll()
        assert first is not None and first.completed == 2
        assert stream.poll() is None  # freshly re-armed
        # A stall spanning several intervals yields ONE wide window, not a
        # burst of empties — the deltas stay exact either way.
        observe(metrics, "alpha", 3)
        clock.advance(5.0)
        wide = stream.poll()
        assert wide.completed == 3 and wide.duration == pytest.approx(5.0)
        assert stream.poll() is None
        assert [snap.index for snap in stream.windows()] == [0, 1]

    def test_reset_restarts_the_window_sequence(self):
        clock = ManualClock()
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        observe(metrics, "alpha", 4)
        clock.advance(1.0)
        assert metrics.window_report().completed == 4
        metrics.reset(clock())
        clock.advance(1.0)
        fresh = metrics.window_report()
        assert fresh.index == 0
        assert fresh.completed == 0
        assert fresh.duration == pytest.approx(1.0)


# ------------------------------------------------------------------- events ----
class TestEventLog:
    def test_record_event_counts_and_updates_drift(self):
        clock = ManualClock(start=5.0)
        metrics = ServingMetrics(clock=clock)
        stream = MetricsStream(metrics, clock, interval=1.0)
        stream.record_event("restart", detail="shard 0")
        clock.advance(0.25)
        stream.record_event("recalibration", detail="drift check", value=0.17)
        events = stream.events()
        assert [event.kind for event in events] == ["restart", "recalibration"]
        assert events[0].at == pytest.approx(5.0)
        assert events[1].at == pytest.approx(5.25)
        assert stream.event_counts() == {"restart": 1, "recalibration": 1}
        clock.advance(1.0)
        metrics.mark_start(5.0)
        assert stream.poll().drift == pytest.approx(0.17)

    def test_swap_records_a_stream_event(self, served):
        _, plan = served
        runtime = ServingRuntime(plan, workers=1)
        runtime.start()
        try:
            runtime.swap(PlanSet(plan))
            kinds = [event.kind for event in runtime.stream.events()]
            assert "swap" in kinds
        finally:
            runtime.stop(drain=True)

    def test_recalibration_check_lands_in_the_stream(self, served):
        _, plan = served
        runtime = ServingRuntime(
            plan,
            workers=1,
            micro_batch=4,
            recorder=SparsityRecorder(channel_tracking=True),
        )
        baseline = calibrate_plan(plan, batch_size=8, seed=3)
        runtime.start()
        try:
            rng = np.random.default_rng(8)
            futures = [
                runtime.submit(task, rng.normal(size=plan.input_shape))
                for task in TASKS
                for _ in range(4)
            ]
            for future in futures:
                future.result(timeout=30.0)
            loop = RecalibrationLoop(
                runtime, baseline, min_images=4, clock=runtime.clock
            )
            event = loop.check_once()
            assert event.drift is not None
            recorded = [e for e in runtime.stream.events() if e.kind == "recalibration"]
            assert len(recorded) == 1
            assert recorded[0].value == pytest.approx(event.drift.max_rate_delta)
            assert recorded[0].at == pytest.approx(event.checked_at)
            assert "repro_serving_sparsity_drift" in runtime.stream.prometheus_text()
        finally:
            runtime.stop(drain=True)


# --------------------------------------------------------------- prometheus ----
class TestPrometheus:
    def make_stream(self):
        clock = ManualClock(start=0.0)
        metrics = ServingMetrics(clock=clock)
        metrics.mark_start(clock())
        observe(metrics, "alpha", 3, shard=0)
        observe(metrics, "beta", 1, shard=1)
        metrics.observe_restart()
        stream = MetricsStream(
            metrics,
            clock,
            interval=1.0,
            queue_depths=lambda: {"alpha": 2},
            shard_depths=lambda: {0: 1, 1: -1},
            report=lambda: metrics.report("fifo-deadline", 2, backend="process"),
        )
        return clock, metrics, stream

    def test_exposition_covers_counters_gauges_and_labels(self):
        clock, metrics, stream = self.make_stream()
        stream.record_event("restart", detail="shard 1")
        clock.advance(1.0)
        stream.poll()
        text = stream.prometheus_text()
        assert re.search(r"^repro_serving_completed_total 4$", text, re.M)
        assert re.search(r"^repro_serving_restarts_total 1$", text, re.M)
        assert re.search(r"^repro_serving_flatline_alerts_total 0$", text, re.M)
        assert 'repro_serving_completed_per_task_total{task="alpha"} 3' in text
        assert 'repro_serving_completed_per_shard_total{shard="1"} 1' in text
        assert 'repro_serving_queue_depth{task="alpha"} 2' in text
        assert 'repro_serving_shard_queue_depth{shard="0"} 1' in text
        assert 'repro_serving_shard_queue_depth{shard="1"} -1' in text
        assert 'repro_serving_events_total{kind="restart"} 1' in text
        assert re.search(r"^repro_serving_window_completed 4$", text, re.M)
        assert 'backend="process"' in text
        # Every sample line belongs to a HELP/TYPE'd family and none is NaN.
        assert "nan" not in text.lower().replace("nan", "nan")  # no NaN samples
        for line in text.splitlines():
            assert line.startswith(("#", "repro_serving_"))

    def test_empty_run_exposition_skips_nan_quantiles(self):
        clock = ManualClock()
        metrics = ServingMetrics(clock=clock)
        stream = MetricsStream(
            metrics, clock, interval=1.0, report=lambda: metrics.report("p", 1)
        )
        text = stream.prometheus_text()
        assert "repro_serving_latency_seconds" not in text  # all-NaN: omitted
        assert "nan" not in text

    def test_http_endpoint_serves_and_404s(self):
        _, _, stream = self.make_stream()
        with MetricsServer(stream) as server:
            assert server.port != 0  # ephemeral port resolved
            body = urllib.request.urlopen(server.url, timeout=10).read().decode()
            assert "repro_serving_completed_total 4" in body
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/other", timeout=10
                )
            assert failure.value.code == 404

    def test_live_thread_runtime_scrape(self, served):
        """End to end on a real runtime: submit, scrape over HTTP, and see
        per-task counters, per-worker completions and queue-depth gauges."""
        _, plan = served
        runtime = ServingRuntime(plan, workers=2, micro_batch=4, max_wait=0.005)
        runtime.start()
        try:
            rng = np.random.default_rng(4)
            futures = [
                runtime.submit(task, rng.normal(size=plan.input_shape))
                for task in TASKS
                for _ in range(4)
            ]
            for future in futures:
                future.result(timeout=30.0)
            wait_until(lambda: runtime.metrics.completed() == 12, message="metrics flushed")
            with MetricsServer(runtime.stream) as server:
                body = urllib.request.urlopen(server.url, timeout=10).read().decode()
            assert re.search(r"^repro_serving_completed_total 12$", body, re.M)
            assert 'repro_serving_completed_per_task_total{task="alpha"} 4' in body
            assert "repro_serving_completed_per_shard_total" in body
            assert re.search(r"^repro_serving_uptime_seconds 0\.\d+", body, re.M)
        finally:
            runtime.stop(drain=True)


# ------------------------------------------------- acceptance: windowed load ----
class TestWindowedServingAcceptance:
    """The issue's acceptance bar: ≥3 consecutive windows under generated
    load whose completed deltas sum to the final report, deterministic on a
    ManualClock, on both backends."""

    def drive_phases(self, runtime, plan, clock, phases=3, per_phase=12):
        generator = LoadGenerator.uniform(TASKS, rate=200.0, seed=9)
        trace = generator.trace(phases * per_phase)
        rng = np.random.default_rng(17)
        pools = {
            task: rng.normal(size=(4, *plan.input_shape)).astype(np.float32)
            for task in TASKS
        }
        snapshots = []
        done = 0
        for phase in range(phases):
            chunk = trace[phase * per_phase : (phase + 1) * per_phase]
            futures = generator.replay(
                runtime, pools, num_requests=per_phase, time_scale=0.0, trace=chunk
            )
            # The clock is frozen mid-phase, so max_wait never expires: close
            # the partial buckets explicitly instead of advancing time.
            runtime._batcher.flush()
            for future in futures:
                assert future is not None
                future.result(timeout=60.0)
            done += per_phase
            # Completions resolve futures before the metrics line lands;
            # wait for the accumulator, then close the window on the clock.
            wait_until(
                lambda done=done: runtime.metrics.completed() == done,
                message="phase metrics flushed",
            )
            clock.advance(runtime.stream.interval)
            snapshot = runtime.stream.poll()
            assert snapshot is not None
            snapshots.append(snapshot)
        return snapshots

    def test_sharded_runtime_windows_partition_under_load(self, served):
        _, plan = served
        clock = ManualClock(start=1000.0)
        runtime = ShardedRuntime(
            plan,
            workers=2,
            micro_batch=4,
            max_wait=0.01,
            clock=clock,
            window_interval=1.0,
            heartbeat_interval=None,
        )
        runtime.start()
        try:
            snapshots = self.drive_phases(runtime, plan, clock)
        finally:
            report = runtime.stop(drain=True)
        assert len(snapshots) >= 3
        assert [snap.index for snap in snapshots] == [0, 1, 2]
        assert all(snap.completed == 12 for snap in snapshots)
        assert sum(snap.completed for snap in snapshots) == report.completed == 36
        for snap in snapshots:
            assert snap.end - snap.start == pytest.approx(1.0)
            assert sum(snap.per_task.values()) == snap.completed
            # Drained between phases: gauges read empty/idle, and the
            # per-shard gauge carries every live shard's identity.
            assert snap.queue_depth == {}
            assert snap.shard_depth == {0: 0, 1: 0}
        assert sum(report.per_shard.values()) == report.completed
        assert report.backend == "process"

    def test_thread_runtime_windows_partition_under_load(self, served):
        _, plan = served
        clock = ManualClock(start=500.0)
        runtime = ServingRuntime(
            plan,
            workers=2,
            micro_batch=4,
            max_wait=0.01,
            clock=clock,
            window_interval=2.0,
        )
        runtime.start()
        try:
            snapshots = self.drive_phases(runtime, plan, clock)
        finally:
            report = runtime.stop(drain=True)
        assert [snap.index for snap in snapshots] == [0, 1, 2]
        assert sum(snap.completed for snap in snapshots) == report.completed == 36
        assert all(snap.duration == pytest.approx(2.0) for snap in snapshots)
        assert sum(report.per_shard.values()) == 36  # thread workers report too
