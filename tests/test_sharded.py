"""Process-sharded serving: PlanSpec transport, shm rings, merged accounting.

Process tests keep the fleet small (spawn pays an interpreter + NumPy import
per worker), but every guarantee is exercised for real: bit-identical logits
across the process boundary, per-task specialized plans rebuilt in the
children, merged recorder/metrics, cancellation, and the WorkspacePool
process-locality regression the shared-memory rings rely on.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.engine import (
    PlanSpec,
    SpecializedEnginePlan,
    WorkspacePool,
    calibrate_plan,
    compile_network,
    enable_dynamic_sparse,
    specialize_tasks,
)
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import extract_layer_shapes, vgg_tiny
from repro.serving import (
    BACKENDS,
    RequestCancelledError,
    ServingRuntime,
    ShardedRuntime,
)

TASKS = ("alpha", "beta", "gamma")


@pytest.fixture(scope="module")
def served():
    rng = np.random.default_rng(42)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=5, rng=rng, dead_fraction=0.3, threshold_jitter=0.2
        )
    plan = compile_network(network, dtype=np.float32)
    return backbone, plan


def deterministic_stream(plan, per_task: int, seed: int):
    """(task, image) pairs whose batcher grouping is fully deterministic.

    Per-task counts are exact multiples of the micro-batch used below, so
    every batch closes on its size trigger with a composition that depends
    only on submission order — the precondition for bit-identical
    comparisons against explicit ``plan.run`` groups.
    """
    rng = np.random.default_rng(seed)
    stream = []
    for index in range(per_task):
        for task in TASKS:
            stream.append((task, rng.normal(size=plan.input_shape)))
    return stream


def reference_groups(plan, stream, micro_batch):
    """The exact micro-batch compositions the FIFO size-trigger produces."""
    per_task = {}
    for task, image in stream:
        per_task.setdefault(task, []).append(image)
    groups = []
    for task, images in per_task.items():
        for start in range(0, len(images), micro_batch):
            groups.append((task, np.stack(images[start : start + micro_batch])))
    return groups


# --------------------------------------------------------------- PlanSpec ----
class TestPlanSpec:
    def test_dense_round_trip_is_bit_identical(self, served):
        _, plan = served
        spec = pickle.loads(pickle.dumps(PlanSpec.from_plan(plan)))
        rebuilt = spec.build()
        assert rebuilt.task_names() == plan.task_names()
        assert rebuilt.dtype == plan.dtype
        batch = np.random.default_rng(7).normal(size=(6,) + plan.input_shape)
        for task in TASKS:
            np.testing.assert_array_equal(plan.run(batch, task), rebuilt.run(batch, task))

    def test_rebuilt_plan_shares_no_arrays_with_source(self, served):
        _, plan = served
        rebuilt = PlanSpec.from_plan(plan).build()
        source = plan.kernels[0].weight_t
        clone = rebuilt.kernels[0].weight_t
        assert not np.shares_memory(source, clone)
        assert rebuilt.num_workspace_buffers() == 0

    @pytest.mark.parametrize("compact", [True, False])
    def test_specialized_round_trip_preserves_provenance(self, served, compact):
        _, plan = served
        profile = calibrate_plan(plan, batch_size=16, seed=3)
        specialized = specialize_tasks(plan, profile=profile, compact_reduction=compact)
        for name, spec_plan in specialized.items():
            rebuilt = pickle.loads(pickle.dumps(PlanSpec.from_plan(spec_plan))).build()
            assert isinstance(rebuilt, SpecializedEnginePlan)
            assert rebuilt.source_task == name
            assert rebuilt.compact_reduction == compact
            assert rebuilt.mac_reduction() == spec_plan.mac_reduction()
            assert rebuilt.dead_channel_counts() == spec_plan.dead_channel_counts()
            batch = np.random.default_rng(11).normal(size=(4,) + plan.input_shape)
            np.testing.assert_array_equal(
                spec_plan.run(batch, name), rebuilt.run(batch, name)
            )

    def test_dynamic_config_survives_the_round_trip(self, served):
        _, plan = served
        try:
            enable_dynamic_sparse(plan, gate=0.25, crossover=0.75)
            rebuilt = PlanSpec.from_plan(plan).build()
        finally:
            plan.dynamic = None
        assert rebuilt.dynamic is not None
        assert rebuilt.dynamic.gate == 0.25
        assert rebuilt.dynamic.default_crossover == 0.75


# ------------------------------------------------------------ ShardedRuntime --
class TestShardedRuntime:
    def test_matches_plan_run_bit_for_bit_and_merges_stats(self, served):
        backbone, plan = served
        micro_batch = 4
        stream = deterministic_stream(plan, per_task=8, seed=5)
        runtime = ShardedRuntime(
            plan, policy="fifo-deadline", micro_batch=micro_batch, max_wait=5.0, workers=2
        )
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()
        report = runtime.stop(drain=True)

        assert report.completed == len(stream)
        assert report.backend == "process"
        assert report.workers == 2
        # Bit-identical to the in-process plan on the same deterministic
        # batch compositions: the child rebuilt the plan from a PlanSpec.
        outputs = {}
        for future, (task, _) in zip(futures, stream):
            outputs.setdefault(task, []).append(future.result(timeout=0))
        for task, batch in reference_groups(plan, stream, micro_batch):
            reference = plan.run(batch, task)
            rows = outputs[task][: len(batch)]
            del outputs[task][: len(batch)]
            np.testing.assert_array_equal(np.stack(rows), reference)

        # Worker recorders were merged into the parent at stop().
        assert runtime.recorder.num_images() == len(stream)
        assert sorted(runtime.sparsity_profile().tasks()) == sorted(TASKS)
        assert report.dense_macs > 0
        assert report.effective_macs == report.dense_macs  # dense plan, no fast path
        hw = runtime.hardware_report(extract_layer_shapes(backbone), conv_only=True)
        assert hw.total_energy().total > 0
        assert hw.measured_dense_macs == report.dense_macs

    def test_specialized_plans_rebuild_in_workers(self, served):
        _, plan = served
        profile = calibrate_plan(plan, batch_size=16, seed=9)
        specialized = specialize_tasks(plan, profile=profile, compact_reduction=False)
        micro_batch = 4
        stream = deterministic_stream(plan, per_task=4, seed=13)
        runtime = ShardedRuntime(
            plan,
            micro_batch=micro_batch,
            max_wait=5.0,
            workers=1,
            specialized=specialized,
        )
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()
        report = runtime.stop(drain=True)
        assert report.completed == len(stream)
        # Exact (scatter-mode) specialization serves bit-identical logits.
        outputs = {}
        for future, (task, _) in zip(futures, stream):
            outputs.setdefault(task, []).append(future.result(timeout=0))
        for task, batch in reference_groups(plan, stream, micro_batch):
            reference = plan.run(batch, task)
            rows = outputs[task][: len(batch)]
            del outputs[task][: len(batch)]
            np.testing.assert_array_equal(np.stack(rows), reference)
        # The specialized plans really ran: fewer effective than dense MACs
        # would require compact mode, but exact mode pads lanes — MAC totals
        # still recorded and merged.
        assert report.dense_macs > 0

    def test_reset_stats_resets_worker_recorders_too(self, served):
        _, plan = served
        runtime = ShardedRuntime(plan, micro_batch=4, max_wait=0.005, workers=1)
        runtime.start()
        first = [runtime.submit("alpha", np.zeros(plan.input_shape)) for _ in range(8)]
        for future in first:
            future.result(timeout=60.0)
        runtime.reset_stats()
        second = [runtime.submit("beta", np.zeros(plan.input_shape)) for _ in range(4)]
        for future in second:
            future.result(timeout=60.0)
        report = runtime.stop(drain=True)
        # The worker's recorder dropped the pre-reset window before its
        # snapshot merged: metrics and MAC/sparsity totals agree on 4 images.
        assert report.completed == 4
        assert report.per_task == {"beta": 4}
        assert runtime.recorder.num_images() == 4
        assert runtime.sparsity_profile().tasks() == ["beta"]

    def test_stop_without_drain_cancels_pending(self, served):
        _, plan = served
        runtime = ShardedRuntime(plan, micro_batch=64, max_wait=60.0, workers=1)
        futures = [runtime.submit("alpha", np.zeros(plan.input_shape)) for _ in range(3)]
        report = runtime.stop(drain=False)  # never started: everything cancels
        assert report.cancelled == 3
        for future in futures:
            with pytest.raises(RequestCancelledError):
                future.result(timeout=1.0)

    def test_backend_registry_exposes_both_runtimes(self):
        assert BACKENDS["thread"] is ServingRuntime
        assert BACKENDS["process"] is ShardedRuntime

    def test_constructor_validation(self, served):
        _, plan = served
        with pytest.raises(ValueError):
            ShardedRuntime(plan, workers=0)
        with pytest.raises(ValueError):
            ShardedRuntime(plan, ring_slots=0)


# ---------------------------------------------------------- WorkspacePool -----
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable on this platform",
)
def test_workspace_pool_buffers_are_process_local_after_fork():
    """A forked child must never reuse the parent's cached workspace buffers.

    A parent buffer can be a view over shared memory (the sharded runtime's
    rings); writing to it from the child would corrupt the parent's live
    data.  The pool drops every inherited buffer on first use in a new
    process.
    """
    ctx = multiprocessing.get_context("fork")
    pool = WorkspacePool()
    parent_buffer = pool.get(1, "scratch", 4, (4, 4), np.float64)
    parent_buffer[:] = 7.0
    results = ctx.Queue()

    def child() -> None:
        inherited = pool.get(1, "scratch", 4, (4, 4), np.float64)
        # Fresh and zeroed, not the parent's filled buffer.
        results.put(float(inherited.sum()))
        results.put(len(pool))

    process = ctx.Process(target=child)
    process.start()
    process.join(30.0)
    assert process.exitcode == 0
    assert results.get(timeout=5.0) == 0.0
    assert results.get(timeout=5.0) == 1  # the child rebuilt exactly one buffer
    # The parent's cache is untouched by the child's reset.
    assert pool.get(1, "scratch", 4, (4, 4), np.float64) is parent_buffer
    np.testing.assert_array_equal(parent_buffer, np.full((4, 4), 7.0))
