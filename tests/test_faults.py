"""Chaos suite: the supervisor survives the failures it was built for.

Process-spawning tests keep fleets small (each worker pays an interpreter +
NumPy import), but the guarantees are exercised for real: a SIGKILLed shard
is reaped and respawned, its in-flight batches re-dispatch bit-identically,
silent workers flatline, a dead fleet degrades (shed, then explicit
rejection) instead of hanging, and a crash mid-swap aborts the swap
fleet-wide.  Everything timing-sensitive that *can* run without processes
does — the retry budget and backoff pacing run on a :class:`ManualClock`
with zero real sleeps.
"""

from __future__ import annotations

import pickle
import re
import time
import urllib.request

import numpy as np
import pytest

from repro.engine import PlanSetSpec, calibrate_plan, compile_network, specialize_tasks
from repro.engine.scheduling import MicroBatch
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny
from repro.serving import (
    FaultEvent,
    FaultInjector,
    ManualClock,
    MetricsServer,
    NoLiveShardsError,
    QueueFullError,
    RedispatchError,
    RetryBudgetExceededError,
    ServingRequest,
    ServingResult,
    ShardedRuntime,
    parse_chaos_spec,
)
from repro.serving.faults import ChaosDisabledError
from repro.serving.request import DeadlineExpiredError

TASKS = ("alpha", "beta", "gamma")


@pytest.fixture(scope="module")
def served():
    rng = np.random.default_rng(42)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in TASKS:
        add_structured_sparsity_task(
            network, name, num_classes=5, rng=rng, dead_fraction=0.3, threshold_jitter=0.2
        )
    plan = compile_network(network, dtype=np.float32)
    return network, plan


def deterministic_stream(plan, per_task: int, seed: int):
    """(task, image) pairs whose batcher grouping is fully deterministic."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(per_task):
        for task in TASKS:
            stream.append((task, rng.normal(size=plan.input_shape)))
    return stream


def expected_rows(plan, stream, micro_batch):
    """Per-request reference logits, keyed by (task, k-th submission of task).

    The FIFO size trigger groups each task's images in submission order, so
    the k-th submitted image of a task is the k-th row of that task's
    concatenated reference batches — valid even when a retry split re-executes
    a request in a smaller batch, because every op is row-independent.
    """
    per_task = {}
    for task, image in stream:
        per_task.setdefault(task, []).append(image)
    rows = {}
    for task, images in per_task.items():
        groups = [
            plan.run(np.stack(images[start : start + micro_batch]), task)
            for start in range(0, len(images), micro_batch)
        ]
        logits = np.concatenate(groups)
        for k in range(len(images)):
            rows[(task, k)] = logits[k]
    return rows


def wait_until(predicate, timeout=30.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


# ------------------------------------------------------------- chaos spec ----
class TestChaosSpec:
    def test_parses_and_sorts_by_offset(self):
        events = parse_chaos_spec("slow:1:0.05@3, crash:0@1.5, drop_heartbeats:2")
        assert [e.kind for e in events] == ["drop_heartbeats", "crash", "slow"]
        assert events[1] == FaultEvent(kind="crash", shard=0, arg=None, at=1.5)
        assert events[2].arg == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:0@1",  # unknown kind
            "hang:0@1",  # hang requires a duration argument
            "crash:zero@1",  # non-integer shard
            "crash:0:1:2@1",  # too many fields
            "crash:0@soon",  # non-numeric offset
            "slow:1:fast@1",  # non-numeric argument
            " , ,",  # no events at all
            "crash:-1@1",  # negative shard
        ],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_chaos_spec(spec)

    def test_injector_refuses_chaos_disabled_runtime(self, served):
        _, plan = served
        runtime = ShardedRuntime(plan, workers=1, heartbeat_interval=None)
        assert not runtime.chaos
        with pytest.raises(ChaosDisabledError):
            FaultInjector(runtime)

    def test_env_var_arms_chaos(self, served, monkeypatch):
        _, plan = served
        monkeypatch.setenv("REPRO_CHAOS", "1")
        runtime = ShardedRuntime(plan, workers=1, heartbeat_interval=None)
        assert runtime.chaos
        FaultInjector(runtime)  # accepted without chaos=True


# ----------------------------------------------------------- PlanSetSpec -----
class TestPlanSetSpec:
    def test_round_trip_rebuilds_dense_and_specialized(self, served):
        _, plan = served
        profile = calibrate_plan(plan, batch_size=8, seed=3)
        specialized = specialize_tasks(plan, profile=profile)
        spec = pickle.loads(pickle.dumps(PlanSetSpec.capture(plan, specialized)))
        dense, rebuilt = spec.build_all()
        assert dense.task_names() == plan.task_names()
        assert set(rebuilt) == set(specialized)
        batch = np.random.default_rng(7).normal(size=(4,) + plan.input_shape)
        for task in TASKS:
            np.testing.assert_array_equal(plan.run(batch, task), dense.run(batch, task))
            np.testing.assert_array_equal(
                specialized[task].run(batch, task), rebuilt[task].run(batch, task)
            )


# ------------------------------------------------- retry budget (no procs) ---
class TestRetryBudget:
    """Deterministic budget/backoff arithmetic — no processes, no real sleeps."""

    def _runtime(self, plan, clock, **kwargs):
        kwargs.setdefault("max_retries", 2)
        return ShardedRuntime(
            plan,
            workers=2,
            micro_batch=4,
            heartbeat_interval=None,
            retry_backoff=0.05,
            clock=clock,
            **kwargs,
        )

    def _batch(self, plan, clock, count=4, max_retries=2, deadline=None, task="alpha"):
        requests = []
        for index in range(count):
            image = np.zeros(plan.input_shape, dtype=np.float32)
            result = ServingResult(index, task, clock(), deadline)
            requests.append(
                ServingRequest(
                    index, task, image, clock(), deadline, result, max_retries=max_retries
                )
            )
        return MicroBatch(task, requests, 0)

    def test_backoff_doubles_and_is_paced_on_the_injectable_clock(self, served):
        _, plan = served
        clock = ManualClock()
        runtime = self._runtime(plan, clock)
        batch = self._batch(plan, clock)

        runtime._requeue_or_fail(batch, "shard worker 0 died")
        assert all(request.attempts == 1 for request in batch.requests)
        ((due, parked),) = runtime._retry_queue
        assert parked is batch  # original composition, re-queued whole
        assert due == pytest.approx(0.05)

        # Not due yet: pumping moves nothing into the batcher.
        clock.advance(0.049)
        runtime._pump_retries()
        assert runtime._batcher.pending() == 0 and runtime._retry_queue

        # Due exactly at now + backoff.
        clock.advance(0.001)
        runtime._pump_retries()
        assert runtime._batcher.pending() == 4 and not runtime._retry_queue

        # Second failure: delay doubles (backoff * 2**(attempts - 1)).
        runtime._batcher.next_batch()
        runtime._requeue_or_fail(batch, "shard worker 1 died")
        ((due, _),) = runtime._retry_queue
        assert due == pytest.approx(clock() + 0.1)
        assert runtime.report().redispatched == 8

    def test_budget_exhaustion_fails_explicitly(self, served):
        _, plan = served
        clock = ManualClock()
        runtime = self._runtime(plan, clock)
        batch = self._batch(plan, clock, max_retries=1)
        runtime._requeue_or_fail(batch, "shard worker 0 died")  # attempt 1: retried
        runtime._requeue_or_fail(batch, "shard worker 1 died")  # attempt 2: over budget
        assert len(runtime._retry_queue) == 1  # only the first requeue parked it
        for request in batch.requests:
            with pytest.raises(RetryBudgetExceededError, match="max_retries=1"):
                request.result.result(timeout=0)

    def test_unreachable_deadline_fails_without_burning_the_budget(self, served):
        _, plan = served
        clock = ManualClock()
        runtime = self._runtime(plan, clock)
        # The earliest retry lands at +0.05; a deadline before that is hopeless.
        batch = self._batch(plan, clock, deadline=clock() + 0.01)
        runtime._requeue_or_fail(batch, "shard worker 0 died")
        for request in batch.requests:
            with pytest.raises(DeadlineExpiredError):
                request.result.result(timeout=0)
        assert not runtime._retry_queue

    def test_undispatched_requeue_charges_no_attempt(self, served):
        _, plan = served
        clock = ManualClock()
        runtime = self._runtime(plan, clock)
        batch = self._batch(plan, clock, max_retries=0)
        # The fleet was dark: nothing was dispatched, so even a zero budget
        # survives — only the deadline can fail a request here.
        runtime._requeue_or_fail(batch, "no live shard worker", dispatched=False)
        assert all(request.attempts == 0 for request in batch.requests)
        assert len(runtime._retry_queue) == 1
        assert runtime.report().redispatched == 0


# ------------------------------------------------------- live supervision ----
class TestSupervision:
    def test_sigkill_mid_load_loses_nothing(self, served):
        """The ISSUE acceptance test: SIGKILL one shard of a 4-shard fleet
        mid-load → every accepted request completes bit-identically (or would
        fail explicitly), the shard respawns, and throughput recovers."""
        _, plan = served
        micro_batch = 4
        runtime = ShardedRuntime(
            plan,
            workers=4,
            micro_batch=micro_batch,
            max_wait=5.0,
            chaos=True,
            heartbeat_interval=0.05,
            flatline_after=200,  # heartbeats must not race the staged hang
            max_retries=3,
        )
        stream = deterministic_stream(plan, per_task=16, seed=11)
        rows = expected_rows(plan, stream, micro_batch)
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()
        try:
            injector = FaultInjector(runtime)
            victim = runtime._home_shard("alpha")
            # Freeze the victim so its dispatched batches cannot complete,
            # then SIGKILL it mid-hang — in-flight work is guaranteed lost.
            injector.hang(victim, 30.0)
            wait_until(
                lambda: runtime._shards[victim].inflight > 0,
                message="dispatched batches on the victim shard",
            )
            injector.crash(victim)

            counts = {task: 0 for task in TASKS}
            for future, (task, _) in zip(futures, stream):
                logits = future.result(timeout=120)
                np.testing.assert_array_equal(logits, rows[(task, counts[task])])
                counts[task] += 1

            # The victim respawns and the fleet serves a second wave.
            wait_until(
                lambda: runtime.live_shards() == 4, message="victim shard respawn"
            )
            wave2 = deterministic_stream(plan, per_task=4, seed=13)
            rows2 = expected_rows(plan, wave2, micro_batch)
            futures2 = [runtime.submit(task, image) for task, image in wave2]
            counts = {task: 0 for task in TASKS}
            for future, (task, _) in zip(futures2, wave2):
                logits = future.result(timeout=120)
                np.testing.assert_array_equal(logits, rows2[(task, counts[task])])
                counts[task] += 1
        finally:
            report = runtime.stop(drain=True)
        assert report.restarts >= 1
        assert report.redispatched >= 1
        assert report.completed == len(stream) + len(wave2)
        assert runtime._shards[victim].restarts >= 1

    def test_idle_fleet_crash_is_detected_by_the_monitor(self, served):
        """No dispatcher activity needed: the monitor thread's reaper notices
        a dead worker on its own timer and respawns it."""
        _, plan = served
        runtime = ShardedRuntime(plan, workers=2, heartbeat_interval=0.05)
        runtime.start()
        try:
            runtime._shards[1].process.kill()
            wait_until(
                lambda: runtime._shards[1].restarts >= 1 and runtime.live_shards() == 2,
                message="idle crash detection + respawn",
            )
            # The respawned worker serves.
            image = np.random.default_rng(3).normal(size=plan.input_shape)
            np.testing.assert_array_equal(
                runtime.submit("beta", image).result(timeout=60),
                plan.run(image[None], "beta")[0],
            )
        finally:
            report = runtime.stop(drain=True)
        assert report.restarts >= 1

    def test_silent_worker_flatlines_and_is_replaced(self, served):
        """drop_heartbeats: the worker stays alive but never pongs — the
        supervisor must flatline it on missed pings alone."""
        _, plan = served
        runtime = ShardedRuntime(
            plan, workers=2, chaos=True, heartbeat_interval=0.05, flatline_after=3
        )
        runtime.start()
        try:
            FaultInjector(runtime).drop_heartbeats(0)
            wait_until(
                lambda: runtime._shards[0].restarts >= 1 and runtime.live_shards() == 2,
                message="flatline kill + respawn",
            )
        finally:
            report = runtime.stop(drain=True)
        assert report.flatline_alerts >= 1
        assert report.restarts >= 1

    def test_hung_shard_straggler_is_routed_around_then_flatlined(self, served):
        """A hung home shard: its queued batch re-dispatches after the
        flatline kill while the live shard steals the rest — nothing is lost
        and every answer stays bit-identical."""
        _, plan = served
        micro_batch = 2
        runtime = ShardedRuntime(
            plan,
            workers=2,
            micro_batch=micro_batch,
            max_wait=5.0,
            chaos=True,
            heartbeat_interval=0.05,
            flatline_after=4,
            max_retries=3,
        )
        runtime.start()
        try:
            FaultInjector(runtime).hang(runtime._home_shard("alpha"), 30.0)
            stream = deterministic_stream(plan, per_task=4, seed=23)
            rows = expected_rows(plan, stream, micro_batch)
            futures = [runtime.submit(task, image) for task, image in stream]
            counts = {task: 0 for task in TASKS}
            for future, (task, _) in zip(futures, stream):
                logits = future.result(timeout=120)
                np.testing.assert_array_equal(logits, rows[(task, counts[task])])
                counts[task] += 1
        finally:
            report = runtime.stop(drain=True)
        assert report.flatline_alerts >= 1
        assert report.restarts >= 1

    def test_dead_fleet_fails_fast_with_restarts_disabled(self, served):
        """restart=False + the only worker killed mid-load: in-flight work
        fails explicitly (no hang, no silent loss) and further submits are
        rejected immediately with a clear error."""
        _, plan = served
        runtime = ShardedRuntime(
            plan,
            workers=1,
            micro_batch=4,
            max_wait=5.0,
            chaos=True,
            restart=False,
            heartbeat_interval=0.05,
            max_retries=3,
        )
        stream = deterministic_stream(plan, per_task=4, seed=29)
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()
        try:
            injector = FaultInjector(runtime)
            injector.hang(0, 30.0)
            wait_until(
                lambda: runtime._shards[0].inflight > 0,
                message="dispatched batches on the only shard",
            )
            injector.crash(0)
            for future in futures:
                with pytest.raises((NoLiveShardsError, RedispatchError)):
                    future.result(timeout=60)
            wait_until(lambda: runtime.live_shards() == 0, message="fleet reaped")
            image = np.zeros(plan.input_shape, dtype=np.float32)
            with pytest.raises(NoLiveShardsError, match="no live shard"):
                runtime.submit("alpha", image)
        finally:
            report = runtime.stop(drain=False)
        assert report.restarts == 0

    def test_degraded_fleet_sheds_load(self, served):
        """With half the fleet dead and restarts off, admission control
        shrinks the bounded queue pro rata and sheds the overflow."""
        _, plan = served
        runtime = ShardedRuntime(
            plan,
            workers=2,
            micro_batch=64,  # batches never close: pending load just sits
            max_wait=60.0,
            max_pending=8,
            restart=False,
            heartbeat_interval=0.05,
        )
        runtime.start()
        try:
            runtime._shards[0].process.kill()
            wait_until(lambda: runtime.live_shards() == 1, message="half-dead fleet")
            image = np.zeros(plan.input_shape, dtype=np.float32)
            for _ in range(4):  # degraded bound: max_pending * 1 // 2
                runtime.submit("alpha", image)
            with pytest.raises(QueueFullError, match="degraded"):
                runtime.submit("alpha", image)
        finally:
            report = runtime.stop(drain=False)
        # Exactly the one overflow submit is shed — never double-counted as
        # rejected, and never incremented twice along the admission path.
        assert report.shed == 1
        assert report.rejected == 0

    def test_crash_mid_swap_aborts_fleet_wide_and_rejoins_old_generation(self, served):
        """A shard dying during phase 1 of a hot-swap aborts the swap on
        every shard: the old plans keep serving, and the respawned shard
        rejoins on the old (committed) generation.  A later swap succeeds and
        catches everyone up."""
        network, plan = served
        plan_v2 = compile_network(network, dtype=np.float32)
        runtime = ShardedRuntime(plan, workers=2, heartbeat_interval=None)
        runtime.start()
        try:
            victim = runtime._shards[0]
            victim.process.kill()
            wait_until(
                lambda: not victim.process.is_alive(), message="victim process exit"
            )
            with pytest.raises(RuntimeError, match="mid-swap"):
                runtime.swap(plan_v2, timeout=60.0)

            # Old plans still serve, bit-identically.
            image = np.random.default_rng(5).normal(size=plan.input_shape)
            np.testing.assert_array_equal(
                runtime.submit("gamma", image).result(timeout=60),
                plan.run(image[None], "gamma")[0],
            )

            # Manual supervision (heartbeat_interval=None): reap + respawn,
            # then the collector reactivates the shard at generation 0.
            def recovered():
                runtime._supervise_once()
                return runtime.live_shards() == 2

            wait_until(recovered, message="respawn after aborted swap")
            assert runtime._current_generation == 0
            assert all(shard.generation == 0 for shard in runtime._shards)

            # The fleet is whole again: the swap now goes through everywhere.
            runtime.swap(plan_v2, timeout=60.0)
            assert runtime._current_generation > 0
            assert all(
                shard.generation == runtime._current_generation
                for shard in runtime._shards
            )
            np.testing.assert_array_equal(
                runtime.submit("gamma", image).result(timeout=60),
                plan_v2.run(image[None], "gamma")[0],
            )
        finally:
            report = runtime.stop(drain=True)
        assert report.restarts >= 1


class TestMetricsEndpointUnderFaults:
    def test_endpoint_reports_restart_counters_after_sigkill(self, served):
        """Scrape the Prometheus endpoint mid-load after an injected SIGKILL:
        the restart counter and restart event must move, the flatline-alert
        counter must be exposed, and the per-shard queue-depth gauge must
        name every shard in the fleet."""
        _, plan = served
        runtime = ShardedRuntime(
            plan,
            workers=2,
            micro_batch=4,
            max_wait=0.01,
            max_retries=3,
            heartbeat_interval=0.05,
        )
        runtime.start()
        server = MetricsServer(runtime.stream).start()
        try:
            stream = deterministic_stream(plan, 4, seed=11)
            futures = [runtime.submit(task, image) for task, image in stream]
            runtime._shards[0].process.kill()
            wait_until(
                lambda: runtime.report().restarts >= 1,
                message="supervisor respawned the killed shard",
            )
            for future in futures:
                future.result(timeout=60)
            body = urllib.request.urlopen(server.url, timeout=10).read().decode()
            assert re.search(r"^repro_serving_restarts_total [1-9]", body, re.M)
            assert re.search(r"^repro_serving_flatline_alerts_total \d", body, re.M)
            assert re.search(
                r'^repro_serving_events_total\{kind="restart"\} [1-9]', body, re.M
            )
            assert 'repro_serving_shard_queue_depth{shard="0"}' in body
            assert 'repro_serving_shard_queue_depth{shard="1"}' in body
            restart_events = [
                event for event in runtime.stream.events() if event.kind == "restart"
            ]
            assert restart_events and "respawned" in restart_events[0].detail
        finally:
            server.stop()
            report = runtime.stop(drain=True)
        assert report.restarts >= 1
        assert report.completed == len(stream)
