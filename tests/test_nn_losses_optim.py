"""Tests for losses, optimisers, initialisation and metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, CrossEntropyLoss, Linear, MSELoss, SGD, accuracy, confusion_matrix, topk_accuracy
from repro.nn import init as nn_init
from repro.nn import functional as F
from repro.nn.module import Parameter

RNG = np.random.default_rng(7)


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        assert loss(logits, labels) == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((3, 5), -50.0)
        labels = np.array([0, 2, 4])
        logits[np.arange(3), labels] = 50.0
        assert loss(logits, labels) < 1e-6

    def test_gradient_matches_numeric(self):
        loss = CrossEntropyLoss()
        logits = RNG.normal(size=(5, 4))
        labels = RNG.integers(0, 4, size=5)
        loss(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus, minus = logits.copy(), logits.copy()
                plus[i, j] += eps
                minus[i, j] -= eps
                numeric[i, j] = (loss(plus, labels) - loss(minus, labels)) / (2 * eps)
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_label_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_gradient(self):
        loss = MSELoss()
        pred = RNG.normal(size=(3, 2))
        target = RNG.normal(size=(3, 2))
        loss(pred, target)
        assert np.allclose(loss.backward(), 2 * (pred - target) / pred.size)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros((2, 2)), np.zeros((2, 3)))


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_reduces_quadratic(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            param.accumulate_grad(2 * param.data)
            optimizer.step()
        assert np.all(np.abs(param.data) < 1e-3)

    def test_sgd_momentum_converges(self):
        param = self._quadratic_param()
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            param.accumulate_grad(2 * param.data)
            optimizer.step()
        assert np.all(np.abs(param.data) < 1e-2)

    def test_adam_converges(self):
        param = self._quadratic_param()
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            param.accumulate_grad(2 * param.data)
            optimizer.step()
        assert np.all(np.abs(param.data) < 1e-2)

    def test_weight_decay_shrinks_parameter(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        param.accumulate_grad(np.array([0.0]))
        optimizer.step()
        assert param.data[0] < 1.0

    def test_frozen_parameters_not_updated(self):
        param = Parameter(np.array([1.0]), requires_grad=False)
        trainable = Parameter(np.array([1.0]))
        optimizer = SGD([param, trainable], lr=0.1)
        trainable.accumulate_grad(np.array([1.0]))
        optimizer.step()
        assert param.data[0] == 1.0
        assert trainable.data[0] < 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_optimizer_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0, -1.0]])
        x = rng.normal(size=(128, 2))
        y = x @ true_w.T
        layer = Linear(2, 1, rng=rng)
        loss = MSELoss()
        optimizer = Adam(list(layer.parameters()), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            value = loss(layer(x), y)
            layer.backward(loss.backward())
            optimizer.step()
        assert value < 1e-3
        assert np.allclose(layer.weight.data, true_w, atol=0.05)


class TestInit:
    def test_kaiming_uniform_bound(self):
        weights = nn_init.kaiming_uniform((1000,), fan_in=100, rng=RNG)
        bound = np.sqrt(6.0 / 100)
        assert np.all(np.abs(weights) <= bound)

    def test_kaiming_normal_std(self):
        weights = nn_init.kaiming_normal((20000,), fan_in=50, rng=RNG)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 50), rel=0.05)

    def test_xavier_uniform_bound(self):
        weights = nn_init.xavier_uniform((500,), fan_in=30, fan_out=20, rng=RNG)
        assert np.all(np.abs(weights) <= np.sqrt(6.0 / 50))

    def test_invalid_fan_raises(self):
        with pytest.raises(ValueError):
            nn_init.kaiming_uniform((3,), fan_in=0)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 1.0], [3.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_topk_accuracy(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0], [0.0, 1.0, 2.0, 3.0]])
        labels = np.array([1, 0])
        assert topk_accuracy(logits, labels, k=2) == pytest.approx(0.5)
        assert topk_accuracy(logits, labels, k=4) == pytest.approx(1.0)

    def test_confusion_matrix(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1, 1])
        matrix = confusion_matrix(logits, labels, num_classes=2)
        assert matrix[0, 0] == 1 and matrix[1, 0] == 1 and matrix[1, 1] == 1

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int))


class TestFunctional:
    def test_softmax_sums_to_one(self):
        probs = F.softmax(RNG.normal(size=(6, 9)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_log_softmax_consistent(self):
        logits = RNG.normal(size=(4, 5))
        assert np.allclose(np.exp(F.log_softmax(logits)), F.softmax(logits))

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_im2col_col2im_adjoint(self):
        # col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>
        x = RNG.normal(size=(2, 3, 6, 6))
        cols, _ = F.im2col(x, kernel=3, stride=1, padding=1)
        y = RNG.normal(size=cols.shape)
        back = F.col2im(y, x.shape, kernel=3, stride=1, padding=1)
        assert np.isclose(np.sum(cols * y), np.sum(x * back))

    def test_conv_output_size_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    @given(st.floats(-3, 3), st.floats(0.1, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_piecewise_linear_ste_properties(self, diff, width):
        value = F.piecewise_linear_ste(np.array([diff]), width)[0]
        assert value >= 0
        if abs(diff) > width:
            assert value == 0
        assert F.piecewise_linear_ste(np.array([0.0]), width)[0] == pytest.approx(1.0 / width)

    @given(st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_threshold_mask_is_binary(self, n):
        rng = np.random.default_rng(n)
        y = rng.normal(size=(2, n))
        t = rng.uniform(0.01, 1.0, size=(n,))
        mask = F.threshold_mask(y, t)
        assert set(np.unique(mask)).issubset({0.0, 1.0})
        assert np.all((y - t >= 0) == (mask == 1.0))
