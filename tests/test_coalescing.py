"""Cross-task batch coalescing: grouping, scheduling, exactness, memory.

The many-task serving regime batches rows of *different* tasks over their
shared backbone.  These tests pin the whole contract down:

* **grouping** — dense tasks with one head width share a coalescing group;
  specialized plans coalesce only on a matching compacted-geometry digest;
* **batching** — the :class:`DynamicBatcher` buckets by group and the
  resulting :class:`MicroBatch` records per-row tasks and a routing key;
* **exactness** — a coalesced mixed-task batch is bit-identical to per-task
  singular execution of the *same rows* (including tasks owning exactly one
  row — the M=1 gemv case ``matmul_rowsafe`` exists for), in the thread
  backend, through the spawned process backend, and on the int8 datapath;
* **accounting** — coalescing drives the task-switch rate to zero while
  per-task request attribution stays exact, and the report renders readably
  at 100+ tasks;
* **memory** — worker workspace pools and the shared plan bytes stay flat in
  the task count, and the v4 PlanSpec ships the backbone once.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.engine import compile_network, specialize_tasks
from repro.engine.planspec import PlanSetSpec
from repro.engine.scheduling import CoalescingPolicy, MicroBatch, get_policy
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny
from repro.serving import LoadGenerator, ServingRuntime, ShardedRuntime
from repro.serving.base import PlanSet
from repro.serving.batcher import DynamicBatcher
from repro.serving.metrics import LatencyDigest, ServingReport
from repro.serving.request import ServingRequest, ServingResult


def make_request(index: int, task: str, image, arrival: float = 0.0, deadline=None):
    return ServingRequest(
        index, task, image, arrival, deadline, ServingResult(index, task, arrival, deadline)
    )


def build_plan(num_tasks: int, num_classes: int = 5, seed: int = 7, jitter: float = 0.2):
    rng = np.random.default_rng(seed)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for index in range(num_tasks):
        add_structured_sparsity_task(
            network, f"task{index:03d}", num_classes=num_classes, rng=rng,
            dead_fraction=0.3, threshold_jitter=jitter,
        )
    return compile_network(network, dtype=np.float32)


@pytest.fixture(scope="module")
def plan6():
    return build_plan(6)


def interleaved_stream(plan, count: int, seed: int = 11):
    """(task, image) pairs cycling through every task — worst case for
    per-task batching, best case for coalescing."""
    rng = np.random.default_rng(seed)
    names = plan.task_names()
    return [
        (names[i % len(names)], rng.normal(size=plan.input_shape)) for i in range(count)
    ]


def assert_same_rows_exact(plan, stream, results, micro_batch, exec_plan=None):
    """Coalesced logits == singular per-task execution of the same rows.

    With every request submitted before ``start()``, one worker and one
    coalescing group, batches close on the size trigger as consecutive
    ``micro_batch``-sized slices of the submission order.
    """
    reference_plan = exec_plan if exec_plan is not None else plan
    for base in range(0, len(stream), micro_batch):
        chunk = stream[base : base + micro_batch]
        rows_of = {}
        for offset, (task, _) in enumerate(chunk):
            rows_of.setdefault(task, []).append(offset)
        for task, rows in rows_of.items():
            images = np.stack([chunk[row][1] for row in rows])
            reference = reference_plan.run(images, task)
            for row, logits in zip(rows, reference):
                np.testing.assert_array_equal(
                    results[base + row], logits,
                    err_msg=f"request {base + row} ({task}) differs from singular "
                    f"execution of the same rows (group of {len(rows)})",
                )


# ---------------------------------------------------------------- grouping ----
def test_dense_tasks_share_one_group_split_by_head_width():
    rng = np.random.default_rng(3)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name, classes in (("a", 5), ("b", 5), ("c", 5), ("d", 9)):
        add_structured_sparsity_task(network, name, num_classes=classes, rng=rng)
    plans = PlanSet(compile_network(network, dtype=np.float32))
    assert plans.coalescing_group("a") == plans.coalescing_group("b")
    assert plans.coalescing_group("a") == plans.coalescing_group("c")
    # A different head width is a different group: its logits buffer and
    # head GEMM geometry cannot share a mixed batch.
    assert plans.coalescing_group("d") != plans.coalescing_group("a")
    assert plans.group_leader(plans.coalescing_group("a")) == "a"
    assert plans.group_leader(plans.coalescing_group("d")) == "d"


def test_specialized_plans_group_by_geometry_digest(plan6):
    # Pass-through specialization keeps every task on identical compacted
    # geometry: one spec/ group, led by the first-registered member.
    specialized = specialize_tasks(plan6, compact_reduction=False)
    plans = PlanSet(plan6, specialized)
    names = plan6.task_names()
    groups = {plans.coalescing_group(name) for name in names}
    assert len(groups) == 1
    (group,) = groups
    assert group.startswith("spec/")
    assert plans.group_leader(group) == names[0]
    # Every *mixed* group batch executes on the leader's plan object with the
    # members' own thresholds/heads gathered in.
    mixed = MicroBatch(
        names[1],
        [
            make_request(0, names[1], np.zeros(plan6.input_shape)),
            make_request(1, names[2], np.zeros(plan6.input_shape)),
        ],
        0,
        group=group,
    )
    exec_plan, task_plans, row_tasks = plans.execution_for(mixed)
    assert exec_plan is specialized[names[0]]
    assert task_plans is not None and set(task_plans) == {names[1], names[2]}
    assert row_tasks == (names[1], names[2])
    # A coalesced batch that happens to be single-task skips the gather: it
    # runs its own plan exactly as the per-task singular path would.
    solo = MicroBatch(
        names[1], [make_request(0, names[1], np.zeros(plan6.input_shape))], 0, group=group
    )
    exec_plan, task_plans, row_tasks = plans.execution_for(solo)
    assert exec_plan is specialized[names[1]]
    assert task_plans is None and row_tasks is None


def test_compacted_geometry_mismatch_keeps_tasks_apart():
    plan = build_plan(4, seed=23, jitter=0.6)
    specialized = specialize_tasks(plan, compact_reduction=True)
    plans = PlanSet(plan, specialized)
    names = plan.task_names()
    groups = [plans.coalescing_group(name) for name in names]
    # Different dead sets compact to different geometry digests, so these
    # tasks must not share a mixed batch (distinct groups), while each task
    # still routes to itself.
    assert len(set(groups)) > 1
    for name in names:
        group = plans.coalescing_group(name)
        leader = plans.group_leader(group)
        assert plans.coalescing_group(leader) == group


# ---------------------------------------------------------------- batching ----
def test_batcher_buckets_by_group_and_records_row_tasks():
    policy = get_policy("coalescing")
    batcher = DynamicBatcher(
        micro_batch=3, max_wait=10.0, policy=policy, coalesce=lambda task: "g0"
    )
    for index, task in enumerate(("alpha", "beta", "alpha")):
        batcher.submit(make_request(index, task, np.zeros(2), arrival=float(index)))
    batch = batcher.next_batch()
    assert batch is not None
    assert batch.group == "g0" and batch.routing_key == "g0"
    assert batch.tasks == ("alpha", "beta", "alpha")
    assert batch.mixed
    assert batch.task == "alpha"  # representative: first member's task
    # Without a coalesce map the same stream closes per-task batches.
    classic = DynamicBatcher(micro_batch=3, max_wait=0.0, policy=policy)
    for index, task in enumerate(("alpha", "beta", "alpha")):
        classic.submit(make_request(index, task, np.zeros(2), arrival=float(index)))
    first = classic.next_batch()
    assert first is not None and not first.mixed and first.group is None


def test_coalescing_policy_is_deadline_first_then_group_sticky():
    policy = CoalescingPolicy()

    def batch(index, task, group, arrival, deadline=None):
        request = make_request(index, task, np.zeros(2), arrival=arrival, deadline=deadline)
        return MicroBatch(task, [request], 0, group=group)

    sticky = batch(0, "a", "g0", arrival=1.0)
    older = batch(1, "b", "g1", arrival=0.0)
    urgent = batch(2, "c", "g2", arrival=2.0, deadline=0.5)
    # An urgent deadline always wins...
    assert policy.pick([sticky, older, urgent], last_task="g0") is urgent
    # ...otherwise stick with the worker's current routing key...
    assert policy.pick([sticky, older], last_task="g0") is sticky
    # ...and fall back to the longest-waiting group.
    assert policy.pick([sticky, older], last_task="g9") is older


# --------------------------------------------------------------- exactness ----
def test_thread_coalesced_batches_match_singular_same_rows(plan6):
    stream = interleaved_stream(plan6, 24)
    runtime = ServingRuntime(
        plan6, policy="coalescing", micro_batch=8, max_wait=5.0, workers=1, coalesce=True
    )
    futures = [runtime.submit(task, image) for task, image in stream]
    runtime.start()
    report = runtime.stop(drain=True)
    results = [future.result(timeout=10.0) for future in futures]
    assert_same_rows_exact(plan6, stream, results, micro_batch=8)
    # 6 tasks over one group, one worker: every batch is mixed, no switches.
    assert report.task_switches == 0
    assert report.completed == len(stream)


def test_coalesced_singleton_rows_match_singular_execution(plan6):
    """The M=1 case: a task owning exactly one row of a mixed batch must be
    bit-identical to running that row alone (``matmul_rowsafe`` regression)."""
    names = plan6.task_names()
    rng = np.random.default_rng(41)
    stream = [(name, rng.normal(size=plan6.input_shape)) for name in names]
    runtime = ServingRuntime(
        plan6, micro_batch=len(names), max_wait=5.0, workers=1, coalesce=True
    )
    futures = [runtime.submit(task, image) for task, image in stream]
    runtime.start()
    runtime.stop(drain=True)
    for (task, image), future in zip(stream, futures):
        single = plan6.run(image[None], task)[0]
        np.testing.assert_array_equal(future.result(timeout=10.0), single)


def test_sharded_coalesced_batches_match_singular_same_rows(plan6):
    stream = interleaved_stream(plan6, 12, seed=29)
    runtime = ShardedRuntime(
        plan6, micro_batch=6, max_wait=5.0, workers=1, coalesce=True
    )
    futures = [runtime.submit(task, image) for task, image in stream]
    runtime.start()
    report = runtime.stop(drain=True)
    results = [future.result(timeout=30.0) for future in futures]
    assert_same_rows_exact(plan6, stream, results, micro_batch=6)
    assert report.backend == "process"
    assert report.task_switches == 0
    assert sum(report.per_task.values()) == len(stream)


def test_int8_coalesced_batches_match_singular_same_rows(plan6):
    from repro.engine import calibrate_plan
    from repro.engine.kernels import quantize_plan_kernels

    quantized = build_plan(6)  # fresh kernels; same weights as plan6 (same seed)
    profile = calibrate_plan(quantized, batch_size=8, seed=3)
    named = quantize_plan_kernels(quantized, profile, set_variant=True)
    assert named, "no kernel accepted int8 quantization"
    stream = interleaved_stream(quantized, 16, seed=31)
    runtime = ServingRuntime(
        quantized, micro_batch=8, max_wait=5.0, workers=1, coalesce=True
    )
    futures = [runtime.submit(task, image) for task, image in stream]
    runtime.start()
    runtime.stop(drain=True)
    results = [future.result(timeout=10.0) for future in futures]
    # The integer datapath accumulates exactly at any batch size, so the
    # same-rows contract holds bit for bit on int8 too.
    assert_same_rows_exact(quantized, stream, results, micro_batch=8)


# -------------------------------------------------------------- accounting ----
def test_coalescing_eliminates_task_switches_and_keeps_per_task_exact(plan6):
    stream = interleaved_stream(plan6, 30, seed=13)
    reports = {}
    for coalesce in (False, True):
        runtime = ServingRuntime(
            plan6, micro_batch=6, max_wait=5.0, workers=1, coalesce=coalesce
        )
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()
        reports[coalesce] = runtime.stop(drain=True)
        for future in futures:
            future.result(timeout=10.0)
    expected = {}
    for task, _ in stream:
        expected[task] = expected.get(task, 0) + 1
    # Interleaved arrivals over 6 tasks force per-task batching to alternate;
    # one coalescing group never switches.
    assert reports[False].task_switches > 0
    assert reports[True].task_switches == 0
    assert reports[True].per_task == expected
    assert reports[False].per_task == expected
    assert reports[True].mean_batch_size > reports[False].mean_batch_size


def test_summary_truncates_per_task_at_scale_but_to_dict_is_complete():
    per_task = {f"task{i:03d}": 1000 - i for i in range(120)}
    report = ServingReport(
        policy="coalescing", workers=2, duration=1.0, completed=sum(per_task.values()),
        rejected=0, errors=0, cancelled=0, num_batches=10, task_switches=0,
        latency=LatencyDigest.of([0.01]),
        queue_wait=LatencyDigest.of([0.001]),
        per_task=per_task,
    )
    text = report.summary()
    assert "task000: 1000" in text
    assert "… and 110 more tasks" in text
    shown = [name for name in per_task if name in text]
    assert len(shown) == 10, "summary must show exactly the top-K tasks"
    assert report.to_dict()["per_task"] == per_task
    assert set(report.to_dict()["per_task"]) == set(per_task)


def test_zipf_scenario_is_deterministic_and_long_tailed():
    tasks = [f"task{i:03d}" for i in range(50)]
    generator = LoadGenerator.zipf(tasks, rate=100.0, alpha=1.1, seed=5)
    trace_a = generator.trace(400)
    trace_b = LoadGenerator.zipf(tasks, rate=100.0, alpha=1.1, seed=5).trace(400)
    assert [(a.time, a.task) for a in trace_a] == [(b.time, b.task) for b in trace_b]
    counts = {}
    for arrival in trace_a:
        counts[arrival.task] = counts.get(arrival.task, 0) + 1
    # Power-law mix: the head task dominates, the tail is wide.
    assert counts.get(tasks[0], 0) > counts.get(tasks[-1], 0)
    assert counts.get(tasks[0], 0) >= 0.05 * len(trace_a)
    assert len(counts) > 20, "a 50-task zipf trace must actually reach the tail"
    with pytest.raises(ValueError):
        LoadGenerator.zipf(tasks, rate=100.0, alpha=0.0)


# ------------------------------------------------------------------ memory ----
def test_worker_pools_and_reachable_kernels_stay_flat_in_task_count():
    buffers = {}
    reachable = {}
    for num_tasks in (10, 100):
        plan = build_plan(num_tasks, seed=2)
        # Three full micro-batches: identical batch-size keys in both runs,
        # so any pool-size difference is genuinely task-count-driven.
        stream = interleaved_stream(plan, 24, seed=3)
        runtime = ServingRuntime(
            plan, micro_batch=8, max_wait=5.0, workers=1, coalesce=True
        )
        futures = [runtime.submit(task, image) for task, image in stream]
        runtime.start()
        pool = runtime._pools[0]
        runtime.stop(drain=True)
        for future in futures:
            future.result(timeout=10.0)
        buffers[num_tasks] = len(pool)
        reachable[num_tasks] = len(PlanSet(plan).kernel_uids(reachable_only=True))
    # Every task of the dense group executes on one leader plan, so the
    # worker's workspace pool must not grow with the task count.
    assert buffers[100] == buffers[10]
    assert reachable[100] == reachable[10]


def test_reachable_pruning_drops_non_leader_specialized_buffers(plan6):
    specialized = specialize_tasks(plan6, compact_reduction=False)
    plans = PlanSet(plan6, specialized)
    full = plans.kernel_uids(reachable_only=False)
    live = plans.kernel_uids(reachable_only=True)
    assert live < full, "non-leader specialized plans must be prunable"
    # Simulate the hot-swap prune: buffers owned by unreachable kernels go.
    from repro.engine.plan import WorkspacePool

    pool = WorkspacePool()
    for uid in full:
        pool.get(uid, "x", 1, (1, 4), np.float32)
    pool.retain(live)
    assert len(pool) == len(live)


def test_shared_plan_bytes_stay_flat_at_100_tasks():
    single = build_plan(1, seed=2)
    many = build_plan(100, seed=2)
    single_shared = PlanSet(single).plan_bytes(shared_only=True)
    many_shared = PlanSet(many).plan_bytes(shared_only=True)
    assert many_shared <= 3 * single_shared
    # Total bytes still scale with N — the per-task thresholds/head are the
    # paper's irreducible payload; only the backbone is deduplicable.
    assert PlanSet(many).plan_bytes() > PlanSet(single).plan_bytes()


def test_specialized_shared_bytes_stay_bounded(plan6):
    specialized = specialize_tasks(plan6, compact_reduction=False)
    single = PlanSet(plan6).plan_bytes(shared_only=True)
    with_spec = PlanSet(plan6, specialized).plan_bytes(shared_only=True)
    # Pass-through specialization aliases the dense arrays, so resident
    # shared bytes barely move even with a specialized plan per task.
    assert with_spec <= 3 * single


# ------------------------------------------------------------- PlanSpec v4 ----
def test_planspec_v4_dedups_spawn_payload_and_shares_backbone(plan6):
    specialized = specialize_tasks(plan6, compact_reduction=False)
    dedup = PlanSetSpec.capture(plan6, specialized, dedup=True)
    plain = PlanSetSpec.capture(plan6, specialized, dedup=False)
    dedup_bytes = len(pickle.dumps(dedup, protocol=pickle.HIGHEST_PROTOCOL))
    plain_bytes = len(pickle.dumps(plain, protocol=pickle.HIGHEST_PROTOCOL))
    assert dedup_bytes * 2 < plain_bytes, (
        f"v4 dedup must ship the backbone once: {dedup_bytes} vs {plain_bytes}"
    )
    restored = pickle.loads(pickle.dumps(dedup, protocol=pickle.HIGHEST_PROTOCOL))
    rebuilt_plan, rebuilt_spec = restored.build_all()
    # Rebuilt specialized plans share backbone memory with the rebuilt dense
    # plan — the worker-resident analogue of the pickle dedup.
    assert any(
        np.shares_memory(kernel.weight_t, spec_kernel.weight_t)
        for kernel, spec_kernel in zip(
            rebuilt_plan.kernels, rebuilt_spec[plan6.task_names()[0]].kernels
        )
        if hasattr(kernel, "weight_t") and hasattr(spec_kernel, "weight_t")
    )
    rng = np.random.default_rng(8)
    images = rng.normal(size=(4,) + plan6.input_shape)
    for task in plan6.task_names()[:2]:
        np.testing.assert_array_equal(rebuilt_plan.run(images, task), plan6.run(images, task))
        np.testing.assert_array_equal(
            rebuilt_spec[task].run(images, task), specialized[task].run(images, task)
        )


def test_pre_v4_specs_without_tensor_table_still_build(plan6):
    spec = PlanSetSpec.capture(plan6, {}, dedup=False)
    assert spec.tensors is None
    # A pre-v4 pickle has no ``tensors`` attribute at all; build_all must
    # tolerate its absence, not just a None value.
    if "tensors" in getattr(spec, "__dict__", {}):
        del spec.__dict__["tensors"]
    rebuilt, _ = spec.build_all()
    rng = np.random.default_rng(9)
    images = rng.normal(size=(2,) + plan6.input_shape)
    task = plan6.task_names()[0]
    np.testing.assert_array_equal(rebuilt.run(images, task), plan6.run(images, task))
