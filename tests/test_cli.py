"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("storage", "energy", "pruned", "ablation", "train",
                        "serve-bench", "serve", "all"):
            args = parser.parse_args([command] if command != "train" else [command, "--fast"])
            assert args.command == command
        assert parser.parse_args(["export", "--store", "s"]).command == "export"

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_storage_max_tasks_argument(self):
        args = build_parser().parse_args(["storage", "--max-tasks", "4"])
        assert args.max_tasks == 4

    def test_serve_arguments(self):
        args = build_parser().parse_args([
            "serve", "--policy", "weighted-fair", "--workers", "4",
            "--rate", "250", "--max-wait", "0.02", "--scenario", "skewed",
        ])
        assert args.policy == "weighted-fair"
        assert args.workers == 4
        assert args.rate == 250.0
        assert args.max_wait == 0.02
        assert args.scenario == "skewed"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "bogus"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "0"])


class TestCommands:
    def test_storage_command_prints_table(self, capsys):
        assert main(["storage", "--max-tasks", "3"]) == 0
        output = capsys.readouterr().out
        assert "DRAM storage" in output
        assert "saving" in output

    def test_pruned_command_prints_crossover(self, capsys):
        assert main(["pruned"]) == 0
        output = capsys.readouterr().out
        assert "conv13" in output
        assert "MIME wins" in output

    def test_ablation_command_prints_ratios(self, capsys):
        assert main(["ablation"]) == 0
        output = capsys.readouterr().out
        assert "PE 256" in output
        assert "middle-layer mean" in output

    def test_energy_command_prints_all_three_figures(self, capsys):
        assert main(["energy"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 5" in output and "Fig. 6" in output and "Fig. 7" in output

    def test_serve_command_prints_report_and_hardware_estimate(self, capsys):
        assert main([
            "serve", "--requests", "12", "--rate", "2000", "--workers", "2",
            "--micro-batch", "4", "--tasks", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "policy=fifo-deadline backend=thread workers=2" in output
        assert "images/sec" in output
        assert "p50/p95/p99" in output
        assert "systolic-array estimate" in output


class TestBackendFlags:
    def test_parser_accepts_backend_arguments(self):
        args = build_parser().parse_args(["serve", "--backend", "process", "--workers", "4"])
        assert args.backend == "process" and args.workers == 4
        args = build_parser().parse_args(["serve-bench", "--backend", "thread"])
        assert args.backend == "thread" and args.workers == 2
        assert build_parser().parse_args(["serve"]).backend == "thread"
        assert build_parser().parse_args(["serve-bench"]).backend == "engine"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "engine"])  # serve is online-only
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--backend", "bogus"])

    def test_serve_bench_thread_backend_prints_serving_report(self, capsys):
        assert main([
            "serve-bench", "--backend", "thread", "--workers", "2",
            "--requests", "16", "--micro-batch", "4", "--tasks", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "backend=thread workers=2" in output
        assert "images/sec" in output


class TestSpecializationFlags:
    def test_parser_accepts_specialization_arguments(self):
        args = build_parser().parse_args([
            "serve-bench", "--dead-fraction", "0.5", "--specialize",
            "--dead-threshold", "0.1", "--dynamic", "--exact-specialize",
        ])
        assert args.dead_fraction == 0.5
        assert args.specialize and args.dynamic and args.exact_specialize
        assert args.dead_threshold == 0.1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--dead-fraction", "1.5"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--dead-threshold", "-0.1"])

    def test_serve_bench_with_specialization(self, capsys):
        assert main([
            "serve-bench", "--requests", "12", "--micro-batch", "4",
            "--tasks", "2", "--dead-fraction", "0.5", "--specialize",
        ]) == 0
        output = capsys.readouterr().out
        assert "specialized plan for task0" in output
        assert "engine (pipelined+specialized)" in output
        assert "effective MACs" in output
        assert "% avoided in software" in output

    def test_serve_with_specialization_and_dynamic(self, capsys):
        assert main([
            "serve", "--requests", "12", "--rate", "2000", "--workers", "2",
            "--micro-batch", "4", "--tasks", "2", "--dead-fraction", "0.5",
            "--specialize", "--dynamic",
        ]) == 0
        output = capsys.readouterr().out
        assert "dynamic sparse fast path: autotuned crossovers" in output
        assert "specialized plan for task0" in output
        assert "% avoided in software" in output


class TestLifecycleCommands:
    def test_export_publishes_a_verifiable_version(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert main([
            "export", "--store", str(store_dir), "--tasks", "2",
            "--dead-fraction", "0.5", "--specialize", "--name", "demo",
        ]) == 0
        output = capsys.readouterr().out
        assert "published 'demo' as version v001" in output
        from repro.artifacts import ModelStore

        store = ModelStore(store_dir)
        assert store.versions() == ["v001"]
        manifest = store.verify("v001")
        assert manifest["specialized_tasks"] == ["task0", "task1"]

    def test_serve_from_artifact_with_recalibration(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert main(["export", "--store", str(store_dir), "--tasks", "2",
                     "--dead-fraction", "0.5", "--specialize"]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--artifact", str(store_dir), "--requests", "12",
            "--rate", "2000", "--workers", "2", "--micro-batch", "4",
            "--recalibrate", "--recalibrate-min-images", "512",
        ]) == 0
        output = capsys.readouterr().out
        assert "artifact 'mime'" in output
        assert "recalibration events" in output
        assert "insufficient traffic" in output  # min-images far above the run

    def test_serve_bench_json_appends_trajectory_entry(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_serving.json"
        assert main([
            "serve-bench", "--backend", "thread", "--workers", "2",
            "--requests", "16", "--micro-batch", "4", "--tasks", "2",
            "--json", str(out),
        ]) == 0
        assert main([
            "serve-bench", "--requests", "12", "--micro-batch", "4",
            "--tasks", "2", "--json", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert len(payload["entries"]) == 2
        runtime_entry, engine_entry = payload["entries"]
        assert runtime_entry["backend"] == "thread"
        assert runtime_entry["report"]["completed"] == 16
        assert runtime_entry["report"]["throughput"] > 0
        assert engine_entry["backend"] == "engine"
        assert any(row["path"] == "training forward" for row in engine_entry["paths"])
