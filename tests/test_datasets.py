"""Tests for the dataset substrate: containers, synthesis, transforms, streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    ArrayDataset,
    DataLoader,
    GrayscaleToRGB,
    Normalize,
    PipelinedTaskStream,
    Resize,
    SingularTaskStream,
    SyntheticTaskConfig,
    ToFloat,
    build_child_tasks,
    cifar10_surrogate,
    cifar100_surrogate,
    fmnist_surrogate,
    imagenet_surrogate,
    make_synthetic_task,
    train_test_split,
)
from repro.datasets.transforms import Compose


class TestArrayDataset:
    def test_length_and_shapes(self, small_dataset):
        assert len(small_dataset) == 40
        assert small_dataset.sample_shape == (3, 8, 8)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=int))

    def test_label_exceeding_num_classes_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 1, 2, 2)), np.array([0, 5]), num_classes=3)

    def test_subset(self, small_dataset):
        subset = small_dataset.subset(np.arange(5))
        assert len(subset) == 5
        assert subset.num_classes == small_dataset.num_classes

    def test_map_images(self, small_dataset):
        doubled = small_dataset.map_images(lambda x: x * 2)
        assert np.allclose(doubled.images, small_dataset.images * 2)

    def test_train_test_split_partitions(self, small_dataset):
        train, test = train_test_split(small_dataset, test_fraction=0.25, rng=np.random.default_rng(0))
        assert len(train) + len(test) == len(small_dataset)
        assert len(test) == 10

    def test_split_invalid_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            train_test_split(small_dataset, test_fraction=1.5)


class TestDataLoader:
    def test_batches_cover_dataset(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=7)
        seen = sum(images.shape[0] for images, _ in loader)
        assert seen == len(small_dataset)
        assert len(loader) == 6

    def test_drop_last(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=7, drop_last=True)
        sizes = [images.shape[0] for images, _ in loader]
        assert all(size == 7 for size in sizes)
        assert len(loader) == 5

    def test_shuffle_changes_order(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=40, shuffle=True, rng=np.random.default_rng(1))
        first_epoch, _ = next(iter(loader))
        second_epoch, _ = next(iter(loader))
        assert not np.allclose(first_epoch, second_epoch)

    def test_invalid_batch_size(self, small_dataset):
        with pytest.raises(ValueError):
            DataLoader(small_dataset, batch_size=0)


class TestSyntheticGeneration:
    def test_shapes_and_label_range(self):
        config = SyntheticTaskConfig(num_classes=5, image_size=12, channels=3, samples_per_class=8)
        dataset = make_synthetic_task(config)
        assert dataset.images.shape == (40, 3, 12, 12)
        assert set(np.unique(dataset.labels)) == set(range(5))

    def test_determinism(self):
        config = SyntheticTaskConfig(seed=3, samples_per_class=4, num_classes=3, image_size=8)
        a = make_synthetic_task(config)
        b = make_synthetic_task(config)
        assert np.allclose(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        base = dict(samples_per_class=4, num_classes=3, image_size=8)
        a = make_synthetic_task(SyntheticTaskConfig(seed=1, **base))
        b = make_synthetic_task(SyntheticTaskConfig(seed=2, **base))
        assert not np.allclose(a.images, b.images)

    def test_classes_are_separable(self):
        """Within-class distance should be smaller than between-class distance."""
        config = SyntheticTaskConfig(num_classes=4, image_size=10, samples_per_class=10, noise_std=0.2)
        dataset = make_synthetic_task(config)
        means = np.stack(
            [dataset.images[dataset.labels == c].mean(axis=0) for c in range(4)]
        )
        within = np.mean(
            [
                np.linalg.norm(img - means[label])
                for img, label in zip(dataset.images, dataset.labels)
            ]
        )
        between = np.mean(
            [np.linalg.norm(means[i] - means[j]) for i in range(4) for j in range(i + 1, 4)]
        )
        assert between > within * 0.5

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            make_synthetic_task(SyntheticTaskConfig(num_classes=1))
        with pytest.raises(ValueError):
            make_synthetic_task(SyntheticTaskConfig(noise_std=-0.1))

    @given(st.integers(2, 6), st.integers(2, 10))
    @settings(max_examples=10, deadline=None)
    def test_sample_count_property(self, num_classes, samples_per_class):
        config = SyntheticTaskConfig(
            num_classes=num_classes, samples_per_class=samples_per_class, image_size=6
        )
        dataset = make_synthetic_task(config)
        assert len(dataset) == num_classes * samples_per_class
        counts = np.bincount(dataset.labels, minlength=num_classes)
        assert np.all(counts == samples_per_class)


class TestTransforms:
    def test_grayscale_to_rgb(self):
        images = np.random.default_rng(0).normal(size=(4, 1, 8, 8))
        rgb = GrayscaleToRGB(3)(images)
        assert rgb.shape == (4, 3, 8, 8)
        assert np.allclose(rgb[:, 0], rgb[:, 2])

    def test_grayscale_rejects_rgb_input(self):
        with pytest.raises(ValueError):
            GrayscaleToRGB()(np.zeros((2, 3, 4, 4)))

    def test_resize_up_and_down(self):
        images = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        up = Resize(16)(images)
        down = Resize(4)(images)
        assert up.shape == (2, 3, 16, 16)
        assert down.shape == (2, 3, 4, 4)

    def test_resize_identity(self):
        images = np.zeros((1, 3, 8, 8))
        assert Resize(8)(images) is images

    def test_normalize(self):
        images = np.ones((2, 3, 4, 4))
        out = Normalize([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])(images)
        assert np.allclose(out, 0.0)

    def test_normalize_invalid_std(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_to_float_rescales(self):
        images = np.full((1, 1, 2, 2), 255, dtype=np.uint8)
        assert np.allclose(ToFloat(rescale=True)(images), 1.0)

    def test_compose_order(self):
        images = np.random.default_rng(0).normal(size=(2, 1, 8, 8))
        pipeline = Compose([GrayscaleToRGB(3), Resize(4)])
        assert pipeline(images).shape == (2, 3, 4, 4)


class TestTaskFactories:
    def test_child_tasks_shapes(self):
        tasks = build_child_tasks(scale=0.3, backbone_size=16, samples_per_class=8)
        assert [t.name for t in tasks] == ["cifar10", "cifar100", "fmnist"]
        for task in tasks:
            assert task.train.sample_shape == (3, 16, 16)
            assert task.test.sample_shape == (3, 16, 16)

    def test_fmnist_native_shape_is_grayscale(self):
        task = fmnist_surrogate(scale=0.3, backbone_size=16, samples_per_class=6)
        assert task.native_shape == (1, 28, 28)
        assert task.backbone_shape == (3, 16, 16)

    def test_cifar100_has_more_classes_than_cifar10(self):
        c10 = cifar10_surrogate(scale=1.0, samples_per_class=2)
        c100 = cifar100_surrogate(scale=1.0, samples_per_class=2)
        assert c100.num_classes > c10.num_classes

    def test_imagenet_surrogate_is_widest(self):
        parent = imagenet_surrogate(scale=1.0, samples_per_class=2)
        child = cifar10_surrogate(scale=1.0, samples_per_class=2)
        assert parent.num_classes > child.num_classes

    def test_unknown_child_task_raises(self):
        with pytest.raises(KeyError):
            build_child_tasks(names=("unknown",), samples_per_class=2)


class TestTaskStreams:
    def test_singular_stream_groups_by_task(self, tiny_task, tiny_grey_task):
        stream = SingularTaskStream([tiny_task, tiny_grey_task], batch_size=3, rng=np.random.default_rng(0))
        batches = list(stream)
        assert [batch.task_name for batch in batches] == [tiny_task.name, tiny_grey_task.name]
        assert all(len(batch) == 3 for batch in batches)
        assert stream.task_sequence() == [tiny_task.name] * 3 + [tiny_grey_task.name] * 3

    def test_pipelined_stream_interleaves(self, tiny_task, tiny_grey_task):
        stream = PipelinedTaskStream([tiny_task, tiny_grey_task], rounds=2, rng=np.random.default_rng(0))
        sequence = stream.task_sequence()
        assert sequence == [tiny_task.name, tiny_grey_task.name] * 2
        assert stream.num_task_switches() == 3

    def test_pipelined_batches_have_one_image(self, tiny_task, tiny_grey_task):
        stream = PipelinedTaskStream([tiny_task, tiny_grey_task], rng=np.random.default_rng(0))
        for batch in stream:
            assert len(batch) == 1

    def test_invalid_arguments_raise(self, tiny_task):
        with pytest.raises(ValueError):
            SingularTaskStream([tiny_task], batch_size=0)
        with pytest.raises(ValueError):
            PipelinedTaskStream([], rounds=1)
        with pytest.raises(ValueError):
            PipelinedTaskStream([tiny_task], split="validation")
