"""Sparsity-exploiting plan specialization and the dynamic sparse fast path.

Covers the PR's acceptance properties: calibration measuring per-channel
survival (engine- and mime-side, JSON round-trip), dead-channel elimination
producing bit-identical live-channel logits in the exact mode (every
registered architecture, every scheduling policy, 4-worker serving runtime),
ULP-level equivalence of the default throughput mode, the bit-exact dynamic
row-gather fast path with its autotuner, and effective-MAC accounting from
``EngineRunStats`` through the recorder into the hardware scenario report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CalibrationProfile,
    CompileError,
    MultiTaskEngine,
    RunContext,
    SCHEDULING_MODES,
    SparsityRecorder,
    SpecializedEnginePlan,
    autotune_dynamic_crossover,
    calibrate_plan,
    compile_network,
    enable_dynamic_sparse,
    profile_from_network,
    specialize_plan,
    specialize_tasks,
)
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import available_models, build_model, extract_layer_shapes, vgg_tiny
from repro.models.vgg import VGG
from repro.serving import ServingRuntime

TASKS = ("alpha", "beta", "gamma")
#: Thresholds this high exceed any attainable pre-activation: the channel is
#: structurally dead for the task — it never fires on *any* input.
DEAD = 1e9


def _add_structured_tasks(network: MimeNetwork, rng: np.random.Generator, dead_fraction=0.5):
    for offset, name in enumerate(TASKS):
        add_structured_sparsity_task(
            network, name, 4 + offset, rng=rng,
            dead_fraction=dead_fraction, dead_threshold=DEAD,
        )
    return network


@pytest.fixture()
def network():
    rng = np.random.default_rng(7)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    net = MimeNetwork(backbone)
    net.eval()
    return _add_structured_tasks(net, rng)


@pytest.fixture()
def plan(network):
    return compile_network(network, dtype=np.float64)


@pytest.fixture()
def batch():
    return np.random.default_rng(21).normal(size=(9, 3, 16, 16))


def _profile_on(plan, batch):
    """Calibrate on the evaluation batch itself.

    The exactness contract is 'bit-identical for inputs whose dead channels
    match the profile'; calibrating on the evaluation inputs makes that hold
    by construction, on top of the structurally dead channels which can never
    fire anywhere.
    """
    return calibrate_plan(plan, images={name: batch for name in plan.task_names()})


# ------------------------------------------------------------------ calibration --
def test_calibration_detects_structurally_dead_channels(network, plan):
    profile = calibrate_plan(plan, batch_size=16, seed=3)
    assert sorted(profile.tasks()) == sorted(TASKS)
    for name in TASKS:
        task = network.registry.get(name)
        for mask_layer, param in zip(network.masks(), task.thresholds):
            rates = profile.rates(name, mask_layer.layer_name)
            structurally_dead = (param.data == DEAD).all(axis=tuple(range(1, param.data.ndim)))
            assert rates.shape[0] == param.data.shape[0]
            assert (rates[structurally_dead] == 0.0).all()
            assert (0.0 <= rates).all() and (rates <= 1.0).all()
        assert profile.num_images[name] == 16


def test_calibration_profile_json_roundtrip(plan, tmp_path):
    profile = calibrate_plan(plan, batch_size=8, seed=5)
    path = profile.save(tmp_path / "profile.json")
    loaded = CalibrationProfile.load(path)
    assert sorted(loaded.tasks()) == sorted(profile.tasks())
    for name in profile.tasks():
        for layer in profile.layers(name):
            np.testing.assert_allclose(loaded.rates(name, layer), profile.rates(name, layer))
    assert loaded.num_images == profile.num_images


def test_profile_from_network_matches_engine_calibration(network, plan, batch):
    images = {name: batch for name in TASKS}
    from_plan = calibrate_plan(plan, images=images)
    from_net = profile_from_network(network, images)
    for name in TASKS:
        for layer in from_plan.layers(name):
            np.testing.assert_allclose(
                from_net.rates(name, layer), from_plan.rates(name, layer), atol=1e-12,
                err_msg=f"mime-side and engine-side survival disagree for {name}/{layer}",
            )


def test_calibration_validation(plan):
    with pytest.raises(ValueError):
        calibrate_plan(plan, batch_size=0)
    profile = calibrate_plan(plan, batch_size=4, seed=0)
    with pytest.raises(KeyError):
        profile.rates("nope", "conv1")
    with pytest.raises(KeyError):
        profile.rates("alpha", "conv99")
    with pytest.raises(ValueError):
        profile.live_mask("alpha", "conv1", dead_threshold=1.0)


# -------------------------------------------------------------- specialization --
def test_exact_mode_is_bit_identical(plan, batch):
    profile = _profile_on(plan, batch)
    for name in TASKS:
        spec = specialize_plan(plan, name, profile, compact_reduction=False)
        dense = plan.run(batch, name)
        np.testing.assert_array_equal(
            dense, spec.run(batch, name),
            err_msg=f"exact-mode specialized logits diverge for task {name}",
        )
        assert not spec.compact_reduction


def test_default_mode_is_ulp_equivalent_and_saves_more(plan, batch):
    profile = _profile_on(plan, batch)
    for name in TASKS:
        exact = specialize_plan(plan, name, profile, compact_reduction=False)
        fast = specialize_plan(plan, name, profile)
        dense = plan.run(batch, name)
        out = fast.run(batch, name)
        np.testing.assert_allclose(out, dense, rtol=1e-12, atol=1e-12)
        assert (np.argmax(out, axis=1) == np.argmax(dense, axis=1)).all()
        assert fast.compact_reduction
        assert fast.specialized_macs_per_image <= exact.specialized_macs_per_image
        assert fast.mac_reduction() > 0.3  # ~50% dead channels compound across layers


def test_specialized_plan_shrinks_and_reports(plan, batch):
    profile = _profile_on(plan, batch)
    spec = specialize_plan(plan, "alpha", profile)
    assert isinstance(spec, SpecializedEnginePlan)
    assert spec.source_task == "alpha"
    assert spec.task_names() == ["alpha"]
    counts = spec.dead_channel_counts()
    assert set(counts) == set(plan.masked_layer_names())
    assert sum(counts.values()) > 0
    assert 0 < spec.specialized_macs_per_image < spec.dense_macs_per_image
    assert 0.0 < spec.mac_reduction() < 1.0
    # Masked GEMMs actually shrank to the live channel counts.
    for kernel, original in zip(
        [k for k in spec.kernels if hasattr(k, "weight_t")],
        [k for k in plan.kernels if hasattr(k, "weight_t")],
    ):
        assert kernel.weight_t.shape[1] <= original.weight_t.shape[1]


def test_specialization_errors(plan, batch):
    profile = _profile_on(plan, batch)
    with pytest.raises(KeyError):
        specialize_plan(plan, "nope", profile)
    spec = specialize_plan(plan, "alpha", profile)
    with pytest.raises(CompileError):
        specialize_plan(spec, "alpha", profile)
    with pytest.raises(CompileError):
        spec.add_task(object())
    with pytest.raises(ValueError):
        specialize_plan(plan, "alpha", profile, min_live=0)
    with pytest.raises(ValueError):
        specialize_plan(plan, "alpha", profile, dead_threshold=1.0)
    with pytest.raises(ValueError):
        specialize_plan(plan, "alpha", profile, compact_reduction=True, granularity=16)


def test_min_live_keeps_an_all_dead_layer_alive(network, batch):
    # Kill *every* channel of every masked layer for one task: min_live must
    # retain one channel per layer and the result must still match the dense
    # plan exactly (every masked activation is zero in both plans, so even
    # the reduction-compacted mode degenerates to bit equality: the logits
    # are exactly the head bias).
    rng = np.random.default_rng(3)
    task = network.add_task("void", 5, rng=rng)
    for param in task.thresholds:
        param.data[:] = DEAD
    plan = compile_network(network, dtype=np.float64)
    profile = _profile_on(plan, batch)
    spec = specialize_plan(plan, "void", profile)
    for live in spec.live_channels.values():
        assert live.sum() == 1
    np.testing.assert_array_equal(plan.run(batch, "void"), spec.run(batch, "void"))


def test_declined_compaction_reports_zero_eliminated_channels(plan, batch):
    # Exact mode on vgg_tiny: the narrow (8/16-wide) layers decline
    # compaction because 16-lane padding swallows the saving, and the FC
    # trunk always stays dense — dead_channel_counts must not claim their
    # dead channels were eliminated.
    profile = _profile_on(plan, batch)
    spec = specialize_plan(plan, "alpha", profile, compact_reduction=False)
    for layer, count in spec.dead_channel_counts().items():
        original = next(k for k in plan.kernels if getattr(k, "mask", None) and k.mask.layer_name == layer)
        compacted = next(k for k in spec.kernels if getattr(k, "mask", None) and k.mask.layer_name == layer)
        if compacted.weight_t.shape[1] == original.weight_t.shape[1]:
            assert count == 0, f"{layer} reports {count} eliminated channels but was not compacted"


def test_exact_mode_actually_compacts_wide_conv_layers():
    # vgg_small @ 32 has 32/64-wide convolutions with >=256 GEMM rows: exact
    # mode must genuinely shrink those while staying bit-identical.
    rng = np.random.default_rng(23)
    backbone = build_model("vgg_small", num_classes=6, input_size=32, in_channels=3, rng=rng)
    net = MimeNetwork(backbone)
    net.eval()
    _add_structured_tasks(net, rng, dead_fraction=0.6)
    plan = compile_network(net, dtype=np.float32)
    batch = rng.normal(size=(6, 3, 32, 32))
    profile = _profile_on(plan, batch)
    for name in TASKS:
        spec = specialize_plan(plan, name, profile, compact_reduction=False)
        shrunk = [
            (kernel.name, kernel.weight_t.shape[1], original.weight_t.shape[1])
            for kernel, original in zip(
                [k for k in spec.kernels if hasattr(k, "weight_t")],
                [k for k in plan.kernels if hasattr(k, "weight_t")],
            )
            if kernel.weight_t.shape[1] < original.weight_t.shape[1]
        ]
        assert shrunk, f"exact mode compacted nothing for task {name}"
        assert spec.specialized_macs_per_image < spec.dense_macs_per_image
        np.testing.assert_array_equal(
            plan.run(batch, name), spec.run(batch, name),
            err_msg=f"exact-mode vgg_small logits diverge for task {name}",
        )


# --------------------------------------------- engine / serving / policy sweep --
def test_engine_with_specialized_plans_matches_dense_under_every_policy(plan, batch):
    profile = _profile_on(plan, batch)
    specialized = specialize_tasks(plan, profile=profile, compact_reduction=False)
    for mode in SCHEDULING_MODES:
        dense_engine = MultiTaskEngine(plan, micro_batch=4)
        spec_engine = MultiTaskEngine(plan, micro_batch=4, specialized=specialized)
        for name in TASKS:
            dense_engine.submit(name, batch)
            spec_engine.submit(name, batch)
        dense_out, _ = dense_engine.run_pending(mode=mode)
        spec_out, stats = spec_engine.run_pending(mode=mode)
        assert stats.specialized_batches == stats.num_batches
        for index, (lhs, rhs) in enumerate(zip(dense_out, spec_out)):
            np.testing.assert_array_equal(
                lhs, rhs, err_msg=f"request {index} diverges under policy '{mode}'"
            )


@pytest.mark.parametrize("model_name", available_models())
def test_every_registry_model_specializes_bit_identically(model_name):
    """Satellite: specialization correctness for every registered architecture.

    VGG-family backbones must produce bit-identical live-channel logits after
    exact-mode specialization; non-VGG architectures are rejected by
    MimeNetwork up front (documented behaviour), which this sweep pins down.
    """
    rng = np.random.default_rng(17)
    kwargs = {"num_classes": 6, "in_channels": 3, "rng": rng}
    if model_name in ("vgg11", "vgg13", "vgg16", "vgg19"):
        kwargs.update(input_size=32, width_multiplier=0.25)  # full depth, CPU-scale width
    elif model_name.startswith("vgg"):
        kwargs.update(input_size=16)
    else:
        with pytest.raises(TypeError):
            MimeNetwork(build_model(model_name))
        return
    backbone = build_model(model_name, **kwargs)
    assert isinstance(backbone, VGG)
    net = MimeNetwork(backbone)
    net.eval()
    _add_structured_tasks(net, rng)
    plan = compile_network(net, dtype=np.float32)
    size = backbone.input_size
    batch = rng.normal(size=(3, 3, size, size))
    profile = _profile_on(plan, batch)
    specialized = specialize_tasks(plan, profile=profile, compact_reduction=False)
    for name in TASKS:
        np.testing.assert_array_equal(
            plan.run(batch, name),
            specialized[name].run(batch, name),
            err_msg=f"{model_name}: specialized logits diverge for task {name}",
        )


def test_serving_runtime_4_workers_specialized_matches_dense(plan, batch):
    profile = _profile_on(plan, batch)
    # Per-task counts are exact multiples of micro_batch and max_wait is far
    # above the drain time, so every batch closes on its *size* trigger with
    # a composition fixed by submission order.  That makes the dense and
    # specialized runs group identically — a bit-exact comparison is only
    # meaningful for identical GEMM row counts (BLAS may reassociate a row's
    # reduction differently for different batch heights).
    items = [(TASKS[i % len(TASKS)], batch[i % batch.shape[0]]) for i in range(36)]
    with ServingRuntime(plan, workers=4, micro_batch=4, max_wait=30.0) as dense_runtime:
        dense_results = [f.result(timeout=30.0) for f in dense_runtime.submit_many(items)]

    # Bit-exact specialization: logits must match the dense plan bit for bit.
    exact = specialize_tasks(plan, profile=profile, compact_reduction=False)
    runtime = ServingRuntime(plan, workers=4, micro_batch=4, max_wait=30.0, specialized=exact)
    with runtime:
        exact_results = [f.result(timeout=30.0) for f in runtime.submit_many(items)]
    for index, (lhs, rhs) in enumerate(zip(dense_results, exact_results)):
        np.testing.assert_array_equal(lhs, rhs, err_msg=f"request {index} diverges")

    # Default (throughput) specialization: ULP-equivalent, and the recorder
    # must see the executed MACs drop below the dense baseline.
    fast = specialize_tasks(plan, profile=profile)
    runtime = ServingRuntime(plan, workers=4, micro_batch=4, max_wait=30.0, specialized=fast)
    with runtime:
        fast_results = [f.result(timeout=30.0) for f in runtime.submit_many(items)]
    for lhs, rhs in zip(dense_results, fast_results):
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12, atol=1e-12)
    dense_macs, effective = runtime.recorder.mac_totals()
    assert dense_macs > 0 and 0 < effective < dense_macs


def test_serving_runtime_rejects_specialized_plan_for_unknown_task(plan, batch):
    profile = _profile_on(plan, batch)
    spec = specialize_plan(plan, "alpha", profile)
    with pytest.raises(KeyError):
        ServingRuntime(plan, specialized={"stranger": spec})


# ------------------------------------------------------------ dynamic fast path --
def _high_sparsity_network():
    """A task whose thresholds kill almost everything: many GEMM rows die."""
    rng = np.random.default_rng(5)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    net = MimeNetwork(backbone)
    net.eval()
    task = net.add_task("sparse", 4, rng=rng)
    for param in task.thresholds:
        param.data[:] = 3.0  # survives only on extreme activations
    return net


def test_dynamic_row_gather_is_bit_identical_and_saves_macs(batch):
    net = _high_sparsity_network()
    reference = compile_network(net, dtype=np.float64).run(batch, "sparse")
    plan = compile_network(net, dtype=np.float64)
    enable_dynamic_sparse(plan, gate=0.2, crossover=1.0)
    ctx = RunContext(plan.dynamic)
    out = plan.run(batch, "sparse", ctx=ctx)
    np.testing.assert_array_equal(reference, out)
    assert ctx.dynamic_gemms > 0
    assert ctx.effective_macs < ctx.dense_macs
    assert 0.0 < ctx.mac_reduction() < 1.0


def test_dynamic_gate_keeps_dense_traffic_dense(plan, batch):
    # Thresholds of the fixture's *live* channels are small, but the first
    # conv sees a dense image: prev_sparsity starts at 0, so with a high gate
    # nothing triggers and the run is the plain dense execution.
    enable_dynamic_sparse(plan, gate=1.0, crossover=1.0)
    ctx = RunContext(plan.dynamic)
    out = plan.run(batch, "alpha", ctx=ctx)
    assert ctx.dynamic_gemms == 0
    assert ctx.effective_macs == ctx.dense_macs
    fresh = compile_network_like(plan, batch)
    np.testing.assert_array_equal(out, fresh)


def compile_network_like(plan, batch):
    """Dense reference run through the same plan without dynamic config."""
    saved, plan.dynamic = plan.dynamic, None
    try:
        return plan.run(batch, "alpha")
    finally:
        plan.dynamic = saved


def test_enable_dynamic_sparse_validation(plan):
    with pytest.raises(ValueError):
        enable_dynamic_sparse(plan, gate=1.5)
    with pytest.raises(ValueError):
        enable_dynamic_sparse(plan, crossover=-0.1)


def test_autotune_caches_per_layer_crossovers(plan):
    config = autotune_dynamic_crossover(plan, batch=2, fractions=(0.25, 0.5), repeats=1)
    assert plan.dynamic is config
    gemm_names = [k.name for k in plan.kernels if hasattr(k, "weight_t")]
    assert sorted(config.crossover) == sorted(gemm_names)
    for value in config.crossover.values():
        assert 0.0 <= value <= 1.0
    # Unknown layers fall back to the default crossover.
    assert config.crossover_for("unknown") == config.default_crossover


# ------------------------------------------------------------- MAC accounting --
def test_run_stats_report_effective_macs(plan, batch):
    profile = _profile_on(plan, batch)
    engine = MultiTaskEngine(plan, micro_batch=4)
    for name in TASKS:
        engine.submit(name, batch)
    _, dense_stats = engine.run_pending()
    assert dense_stats.dense_macs > 0
    assert dense_stats.effective_macs == dense_stats.dense_macs
    assert dense_stats.mac_reduction() == 0.0
    assert dense_stats.specialized_batches == 0

    engine.specialize(profile=profile)
    for name in TASKS:
        engine.submit(name, batch)
    _, stats = engine.run_pending()
    assert stats.specialized_batches == stats.num_batches
    assert 0 < stats.effective_macs < stats.dense_macs
    assert stats.mac_reduction() > 0.3
    summary = stats.summary()
    assert "effective MACs" in summary and "% saved" in summary


def test_recorder_mac_totals_flow_into_hardware_report(network, plan, batch):
    profile = _profile_on(plan, batch)
    engine = MultiTaskEngine(plan, micro_batch=4, specialized=specialize_tasks(plan, profile=profile))
    for name in TASKS:
        engine.submit(name, batch)
    engine.run_pending()
    dense, effective = engine.recorder.mac_totals()
    assert 0 < effective < dense
    assert engine.recorder.mac_reduction() == pytest.approx(1.0 - effective / dense)

    report = engine.hardware_report(extract_layer_shapes(network.backbone), conv_only=True)
    assert report.measured_dense_macs == dense
    assert report.measured_effective_macs == effective
    assert report.measured_mac_reduction() == pytest.approx(engine.recorder.mac_reduction())


def test_recorder_mac_validation_and_reset():
    recorder = SparsityRecorder()
    with pytest.raises(ValueError):
        recorder.record_macs(-1, 0)
    recorder.record_macs(100, 60)
    recorder.record_macs(100, 40)
    assert recorder.mac_totals() == (200, 100)
    assert recorder.mac_reduction() == pytest.approx(0.5)
    recorder.reset()
    assert recorder.mac_totals() == (0, 0)
    assert recorder.mac_reduction() == 0.0


def test_specialized_runs_record_dense_comparable_sparsity(plan, batch):
    """The sparsity profile driving the hardware simulator must not change
    when the same traffic is served by specialized plans: eliminated channels
    are exactly the channels the dense plan measured as masked, so they count
    as dead in the specialized measurement too (dense-channel normalisation).
    """
    profile = _profile_on(plan, batch)
    recorded = {}
    for label, specs in (
        ("dense", {}),
        ("exact", specialize_tasks(plan, profile=profile, compact_reduction=False)),
        ("default", specialize_tasks(plan, profile=profile)),
    ):
        engine = MultiTaskEngine(plan, micro_batch=4, specialized=specs)
        for name in TASKS:
            engine.submit(name, batch)
        engine.run_pending()
        recorded[label] = {name: engine.recorder.per_layer(name) for name in TASKS}
    for label in ("exact", "default"):
        for name in TASKS:
            for layer, dense_value in recorded["dense"][name].items():
                assert recorded[label][name][layer] == pytest.approx(dense_value, abs=1e-6), (
                    f"{label} run of {name}/{layer} records sparsity "
                    f"{recorded[label][name][layer]:.4f} vs dense {dense_value:.4f}"
                )
