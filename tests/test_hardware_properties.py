"""Property-based tests on the hardware model's structural invariants.

These use Hypothesis to check relations that must hold for *any* sparsity
profile, batch composition or layer geometry — the kind of invariants the
paper's argument rests on (sharing weights can never increase parameter
traffic, more sparsity can never increase energy, energy is additive over the
schedule, and so on).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    LayerSparsityProfile,
    SystolicArraySimulator,
    case1_config,
    case2_config,
    mime_config,
    pipelined_task_schedule,
    singular_task_schedule,
)
from repro.models.shapes import vgg_layer_shapes

TASKS = ["cifar10", "cifar100", "fmnist"]
SHAPES = vgg_layer_shapes("vgg_small", input_size=32, num_classes=10, classifier_hidden=(128,))
SIM = SystolicArraySimulator()

sparsity_values = st.floats(0.0, 0.95)


def _profile(sparsity: float) -> LayerSparsityProfile:
    return LayerSparsityProfile.uniform(TASKS, sparsity)


class TestStructuralInvariants:
    @given(sparsity_values)
    @settings(max_examples=15, deadline=None)
    def test_zero_skipping_never_costs_more(self, sparsity):
        schedule = pipelined_task_schedule(TASKS)
        profile = _profile(sparsity)
        dense = SIM.run(SHAPES, schedule, profile, case1_config())
        skipped = SIM.run(SHAPES, schedule, profile, case2_config())
        assert skipped.total_energy().total <= dense.total_energy().total + 1e-6

    @given(sparsity_values)
    @settings(max_examples=15, deadline=None)
    def test_sharing_weights_never_increases_parameter_traffic(self, sparsity):
        schedule = pipelined_task_schedule(TASKS)
        profile = _profile(sparsity)
        conventional = SIM.run(SHAPES, schedule, profile, case2_config())
        mime = SIM.run(SHAPES, schedule, profile, mime_config())
        for layer in conventional.layer_names():
            conv_weights = conventional.layer(layer).param_dram_words
            mime_params = mime.layer(layer).param_dram_words
            shape = next(s for s in SHAPES if s.name == layer)
            # MIME trades (n-1) weight reloads for n per-task threshold loads,
            # so it wins exactly when n*T <= (n-1)*W — the crossover condition
            # behind the paper's Fig. 8 discussion.
            n = len(TASKS)
            if n * shape.output_neurons <= (n - 1) * shape.weight_count:
                assert mime_params <= conv_weights + 1e-6
            else:
                assert mime_params >= conv_weights - 1e-6

    @given(st.floats(0.05, 0.9), st.floats(0.0, 0.09))
    @settings(max_examples=15, deadline=None)
    def test_energy_monotone_in_sparsity(self, sparsity, delta):
        """Adding activation sparsity can only reduce (or keep) total energy."""
        schedule = singular_task_schedule(["cifar10"], images_per_task=2)
        lower = SIM.run(SHAPES, schedule, _profile(sparsity), case2_config())
        higher = SIM.run(SHAPES, schedule, _profile(min(0.99, sparsity + delta)), case2_config())
        assert higher.total_energy().total <= lower.total_energy().total + 1e-6

    @given(st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_activation_energy_additive_over_rounds(self, rounds):
        """Per-image costs scale linearly with rounds; parameter costs do not shrink."""
        profile = _profile(0.5)
        single = SIM.run(SHAPES, pipelined_task_schedule(TASKS, rounds=1), profile, mime_config())
        multi = SIM.run(SHAPES, pipelined_task_schedule(TASKS, rounds=rounds), profile, mime_config())
        assert multi.total_energy().total >= single.total_energy().total * min(rounds, 1)
        # MAC energy is strictly per-image, so it scales exactly with rounds.
        assert multi.total_energy().e_mac == pytest.approx(
            rounds * single.total_energy().e_mac, rel=1e-9
        )

    @given(sparsity_values)
    @settings(max_examples=10, deadline=None)
    def test_energy_components_non_negative(self, sparsity):
        schedule = pipelined_task_schedule(TASKS)
        result = SIM.run(SHAPES, schedule, _profile(sparsity), mime_config())
        for layer in result.layers:
            assert layer.energy.e_dram >= 0
            assert layer.energy.e_cache >= 0
            assert layer.energy.e_reg >= 0
            assert layer.energy.e_mac >= 0
            assert layer.cycles > 0

    @given(st.integers(1, 5))
    @settings(max_examples=8, deadline=None)
    def test_task_switch_count_drives_conventional_reloads(self, rounds):
        from repro.hardware import ParameterSharing, parameter_load_events

        schedule = pipelined_task_schedule(TASKS, rounds=rounds)
        events = parameter_load_events(schedule, ParameterSharing.PER_TASK)
        assert events == len(TASKS) * rounds
        assert parameter_load_events(schedule, ParameterSharing.SHARED) == 1
