"""Tests for the ThresholdMask layer and the threshold regulariser."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mime import ThresholdMask, ThresholdRegularizer
from tests.conftest import numeric_gradient

RNG = np.random.default_rng(3)


class TestThresholdMaskForward:
    def test_masking_follows_equation_1_and_2(self):
        mask = ThresholdMask((4,), init_threshold=0.5)
        y = np.array([[0.4, 0.5, 0.6, -1.0]])
        out = mask(y)
        # m_i = 1 iff y_i - t_i >= 0; a_i = y_i * m_i
        assert np.allclose(out, [[0.0, 0.5, 0.6, 0.0]])

    def test_sparsity_measurement(self):
        mask = ThresholdMask((4,), init_threshold=0.5)
        mask(np.array([[1.0, 0.0, 1.0, 0.0]]))
        assert mask.last_sparsity() == pytest.approx(0.5)
        assert mask.last_mask().shape == (1, 4)

    def test_conv_shaped_thresholds(self):
        mask = ThresholdMask((2, 3, 3), init_threshold=0.1)
        y = RNG.normal(size=(5, 2, 3, 3))
        out = mask(y)
        assert out.shape == y.shape
        assert mask.num_thresholds() == 18

    def test_shape_mismatch_raises(self):
        mask = ThresholdMask((4,))
        with pytest.raises(ValueError):
            mask(np.zeros((2, 5)))

    def test_nonpositive_threshold_init_rejected(self):
        with pytest.raises(ValueError):
            ThresholdMask((3,), init_threshold=0.0)

    def test_higher_threshold_prunes_more(self):
        y = RNG.normal(size=(20, 10))
        low = ThresholdMask((10,), init_threshold=0.01)
        high = ThresholdMask((10,), init_threshold=1.5)
        low(y)
        high(y)
        assert high.last_sparsity() >= low.last_sparsity()

    def test_mime_sparsity_exceeds_relu_sparsity(self):
        """Positive thresholds prune at least everything ReLU would prune."""
        y = RNG.normal(size=(50, 16))
        mask = ThresholdMask((16,), init_threshold=0.3)
        mask(y)
        relu_sparsity = float(np.mean(y <= 0))
        assert mask.last_sparsity() >= relu_sparsity


class TestThresholdMaskBackward:
    def test_threshold_gradient_matches_numeric_surrogate(self):
        """The analytic threshold gradient matches the surrogate-loss numeric gradient."""
        mask = ThresholdMask((6,), init_threshold=0.2, surrogate_width=1.0)
        y = RNG.normal(size=(4, 6))
        upstream = RNG.normal(size=(4, 6))

        mask(y)
        mask.backward(upstream)
        analytic = mask.thresholds.grad.copy()

        def surrogate_loss():
            # The smoothed forward implied by the piecewise-linear surrogate:
            # a_i = y_i * clip-integral of the triangular derivative.  For a
            # numerical check we integrate the surrogate: step(d) is replaced by
            # S(d) with S'(d) = max(0, 1-|d|)/1, S(-1)=0, S(1)=1.
            diff = y - mask.thresholds.data[None, :]
            d = np.clip(diff, -1.0, 1.0)
            smooth_step = np.where(
                d >= 0, 0.5 + d - 0.5 * d**2, 0.5 + d + 0.5 * d**2
            )
            return float(np.sum(upstream * y * smooth_step))

        numeric = numeric_gradient(surrogate_loss, mask.thresholds.data)
        mask(y)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_gradient_direction_increases_sparsity_penalty(self):
        """Raising a threshold can only switch neurons off, never on."""
        mask = ThresholdMask((8,), init_threshold=0.5)
        y = RNG.normal(size=(16, 8))
        before = mask(y)
        mask.thresholds.data += 10.0
        after = mask(y)
        assert np.count_nonzero(after) <= np.count_nonzero(before)

    def test_backward_before_forward_raises(self):
        mask = ThresholdMask((3,))
        with pytest.raises(RuntimeError):
            mask.backward(np.zeros((1, 3)))

    def test_input_gradient_outside_surrogate_window(self):
        """Far from the threshold the gradient reduces to the plain mask."""
        mask = ThresholdMask((2,), init_threshold=0.1, surrogate_width=0.5)
        y = np.array([[5.0, -5.0]])
        mask(y)
        grad_in = mask.backward(np.ones((1, 2)))
        assert np.allclose(grad_in, [[1.0, 0.0]])


class TestRegularizer:
    def test_value_is_sum_of_exponentials(self):
        mask = ThresholdMask((3,), init_threshold=0.5)
        regularizer = ThresholdRegularizer(beta=1e-6)
        assert regularizer.value([mask]) == pytest.approx(3 * np.exp(0.5))

    def test_penalty_scaling(self):
        mask = ThresholdMask((2,), init_threshold=1.0)
        regularizer = ThresholdRegularizer(beta=0.5)
        assert regularizer.penalty([mask]) == pytest.approx(0.5 * 2 * np.e)

    def test_gradient_accumulation(self):
        mask = ThresholdMask((4,), init_threshold=0.3)
        ThresholdRegularizer(beta=0.01).accumulate_gradients([mask])
        assert np.allclose(mask.thresholds.grad, 0.01 * np.exp(0.3))

    def test_zero_beta_is_noop(self):
        mask = ThresholdMask((4,), init_threshold=0.3)
        ThresholdRegularizer(beta=0.0).accumulate_gradients([mask])
        assert mask.thresholds.grad is None

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            ThresholdRegularizer(beta=-1.0)

    @given(st.floats(0.05, 2.0), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_regulariser_monotone_in_threshold(self, t, n):
        """L_t grows with the threshold values, which is what keeps them bounded."""
        small = ThresholdMask((n,), init_threshold=t)
        large = ThresholdMask((n,), init_threshold=t + 0.5)
        regularizer = ThresholdRegularizer(beta=1.0)
        assert regularizer.value([large]) > regularizer.value([small])
