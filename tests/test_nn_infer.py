"""The train/infer path split: ``infer`` must match eval-mode ``forward``
while writing no backward caches and preserving the input dtype."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.mime import ThresholdMask


@pytest.fixture()
def images(rng):
    return rng.normal(size=(4, 3, 8, 8))


def test_conv_infer_matches_forward_without_caches(rng, images):
    conv = Conv2d(3, 5, kernel_size=3, padding=1, rng=rng)
    out = conv.infer(images)
    np.testing.assert_allclose(out, conv.forward(images))
    fresh = Conv2d(3, 5, kernel_size=3, padding=1, rng=rng)
    fresh.infer(images)
    assert fresh._cols_cache is None
    with pytest.raises(RuntimeError):
        fresh.backward(np.zeros_like(out))


def test_linear_infer_matches_forward_without_caches(rng):
    layer = Linear(6, 4, rng=rng)
    x = rng.normal(size=(5, 6))
    np.testing.assert_allclose(layer.infer(x), layer.forward(x))
    fresh = Linear(6, 4, rng=rng)
    fresh.infer(x)
    assert fresh._input_cache is None


@pytest.mark.parametrize("pool_cls", [MaxPool2d, AvgPool2d])
def test_pool_infer_matches_forward(rng, images, pool_cls):
    pool = pool_cls(2)
    np.testing.assert_allclose(pool.infer(images), pool.forward(images))
    fresh = pool_cls(2)
    fresh.infer(images)
    assert fresh._input_shape is None


def test_global_avg_pool_infer_matches_forward(images):
    pool = GlobalAvgPool2d()
    np.testing.assert_allclose(pool.infer(images), pool.forward(images))


@pytest.mark.parametrize("act_cls", [ReLU, Sigmoid, Tanh])
def test_activation_infer_matches_forward(rng, act_cls):
    layer = act_cls()
    x = rng.normal(size=(4, 7))
    np.testing.assert_allclose(layer.infer(x), layer.forward(x))


def test_relu_infer_writes_no_mask(rng):
    relu = ReLU()
    relu.infer(rng.normal(size=(3, 3)))
    with pytest.raises(RuntimeError):
        relu.last_sparsity()


@pytest.mark.parametrize("training", [True, False])
def test_batchnorm2d_infer_always_uses_running_stats(rng, images, training):
    bn = BatchNorm2d(3)
    bn.train(True)
    for _ in range(3):  # accumulate non-trivial running statistics
        bn.forward(rng.normal(loc=1.0, scale=2.0, size=(4, 3, 8, 8)))
    bn.train(training)
    reference = BatchNorm2d(3)
    reference.load_state_dict(bn.state_dict())
    reference.eval()
    np.testing.assert_allclose(bn.infer(images), reference.forward(images))


def test_batchnorm1d_infer_matches_eval_forward(rng):
    bn = BatchNorm1d(6)
    bn.train(True)
    bn.forward(rng.normal(size=(8, 6)))
    bn.eval()
    x = rng.normal(size=(4, 6))
    np.testing.assert_allclose(bn.infer(x), bn.forward(x))


def test_dropout_infer_is_identity_even_in_training_mode(rng):
    dropout = Dropout(0.9, rng=rng)
    dropout.train(True)
    x = rng.normal(size=(10, 10))
    np.testing.assert_array_equal(dropout.infer(x), x)


def test_flatten_infer_matches_forward(images):
    flatten = Flatten()
    np.testing.assert_array_equal(flatten.infer(images), flatten.forward(images))
    fresh = Flatten()
    fresh.infer(images)
    assert fresh._input_shape is None


def test_sequential_infer_chains_layer_infer(rng, images):
    model = Sequential(Conv2d(3, 4, 3, padding=1, rng=rng), ReLU(), MaxPool2d(2), Flatten())
    model.eval()
    np.testing.assert_allclose(model.infer(images), model.forward(images))


def test_threshold_mask_infer_matches_forward_without_caches(rng):
    mask = ThresholdMask((5,), init_threshold=0.1)
    x = rng.normal(size=(6, 5))
    np.testing.assert_allclose(mask.infer(x), mask.forward(x))
    fresh = ThresholdMask((5,), init_threshold=0.1)
    fresh.infer(x)
    assert fresh._mask is None
    with pytest.raises(RuntimeError):
        fresh.last_sparsity()


@pytest.mark.parametrize(
    "layer_builder, x_shape",
    [
        (lambda rng: Conv2d(3, 4, 3, padding=1, rng=rng), (2, 3, 8, 8)),
        (lambda rng: Linear(6, 3, rng=rng), (2, 6)),
        (lambda rng: ThresholdMask((6,)), (2, 6)),
        (lambda rng: MaxPool2d(2), (2, 3, 8, 8)),
    ],
)
def test_infer_preserves_float32(rng, layer_builder, x_shape):
    layer = layer_builder(rng)
    x = rng.normal(size=x_shape).astype(np.float32)
    assert layer.infer(x).dtype == np.float32


def test_batchnorm_infer_preserves_float32(rng):
    bn = BatchNorm2d(3)
    bn.eval()
    assert bn.infer(rng.normal(size=(2, 3, 4, 4)).astype(np.float32)).dtype == np.float32


def test_mime_network_infer_matches_forward(tiny_mime, rng):
    tiny_mime.eval()
    x = rng.normal(size=(4, 3, 16, 16))
    reference = tiny_mime.forward(x)
    np.testing.assert_allclose(tiny_mime.infer(x), reference, atol=1e-12)


def test_mime_network_infer_leaves_mask_caches_untouched(tiny_mime, rng):
    tiny_mime.eval()
    x = rng.normal(size=(2, 3, 16, 16))
    tiny_mime.forward(x)
    cached = tiny_mime.sparsity_by_layer()
    tiny_mime.infer(rng.normal(size=(2, 3, 16, 16)))
    assert tiny_mime.sparsity_by_layer() == cached


def test_mime_backward_uses_cached_feature_shape(tiny_mime, rng):
    # The shape is computed once at build time and reused by every backward.
    assert tiny_mime._feature_output_shape() == tiny_mime._feature_shape
    x = rng.normal(size=(2, 3, 16, 16))
    logits = tiny_mime.forward(x)
    grad = tiny_mime.backward(np.ones_like(logits))
    assert grad.shape == x.shape
