"""Differential property harness: every execution path must tell one story.

The repo now carries five semantically-equivalent ways to run the same
network — the float training path (``MimeNetwork.forward``), the compiled
dense plan (``EnginePlan.run``), compact and bit-exact specialized plans,
the dynamic sparse row-gather fast path, and process-sharded serving — and
hand-written tests alone cannot keep them honest as each evolves.  This
harness generates ≥50 seeded random cases (architecture × task × batch
shape × inputs) and asserts the whole equivalence lattice on every one:

* dense plan ≈ training forward (both float64; different kernel
  implementations, so allclose at tight tolerance);
* bit-exact specialization == dense plan, **bit for bit**;
* dynamic sparse (forced on for every GEMM) == dense plan, **bit for bit**;
* compact specialization ≈ dense plan (ULP-level: reduction regrouping);
* process-sharded serving == dense plan, **bit for bit**, across the spawn
  + PlanSpec + shared-memory-ring boundary;
* blocked GEMM + views pooling variants == dense plan, **bit for bit**;
* packed (L2-panel-resident) GEMMs == dense plan, **bit for bit** (the
  packer proves every multi-panel split exact on the host BLAS at build
  time and collapses the split otherwise, so the contract is unconditional);
* direct (im2col-free) conv ≈ dense plan (ULP-level: per-tap regrouping);
* Winograd F(2x2, 3x3) ≈ dense plan within its *declared* tolerance
  (transform-domain regrouping; see ``winograd_tolerance``), with argmax
  agreement ≥ 0.9;
* int8 inference within its *declared* accuracy contract (decision fidelity,
  not value equivalence — the one deliberately-lossy path);
* int8spd (the wide-integer speed datapath) == int8, **bit for bit** — a
  faster lowering of the same quantized arithmetic, not a new contract;
* a kernel-choice map survives PlanSpec + process spawn and serves the dense
  plan's bits from inside a worker;
* a chooser-tuned compact specialization round-trips through PlanSpec into a
  spawned worker and serves the same bits as the local specialized plan.

Specialization uses a *structural* survival profile derived from the task
thresholds themselves (a channel is dead iff its threshold is unreachable),
so the dead set is exact by construction and the bit-exact guarantees hold
on any input — no calibration-sampling flake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.engine import (
    CalibrationProfile,
    DynamicSparseConfig,
    PlanSpec,
    RunContext,
    calibrate_plan,
    compile_network,
)
from repro.engine import kernels as K
from repro.engine.kernels import (
    apply_kernel_choices,
    force_kernel_variant,
    quantize_plan_kernels,
    variant_candidates,
    winograd_tolerance,
)
from repro.engine.specialize import specialize_plan
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models.vgg import VGG
from repro.serving import ShardedRuntime

#: Seeds of the randomized architectures; together with CASES_PER_ARCH they
#: give the suite ≥50 cases, each exercising all five execution paths.
ARCH_SEEDS = (101, 202, 303, 404, 505)
CASES_PER_ARCH = 11
MICRO_BATCH = 4
#: Thresholds at or above this are structurally unreachable (see
#: ``add_structured_sparsity_task``'s ``dead_threshold=1e9`` default).
STRUCTURAL_DEAD = 1e8


@dataclass
class Case:
    """One differential case: a task, a batch shape, and seeded inputs."""

    task: str
    images: np.ndarray


class Arch:
    """A seeded random architecture with tasks, plans, and its case list."""

    def __init__(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        self.seed = seed
        input_size = int(rng.choice([8, 12, 16]))
        in_channels = int(rng.choice([1, 3]))
        num_convs = int(rng.integers(1, 4))
        config: List[object] = []
        pools = 0
        for _ in range(num_convs):
            config.append(int(rng.integers(3, 9)))
            if pools < 2 and rng.random() < 0.5:
                config.append("M")
                pools += 1
        classifier_hidden: Tuple[int, ...] = ()
        if rng.random() < 0.6:
            classifier_hidden = (int(rng.integers(8, 25)),)
        backbone = VGG(
            config,
            num_classes=int(rng.integers(3, 7)),
            in_channels=in_channels,
            input_size=input_size,
            batch_norm=bool(rng.random() < 0.7),
            classifier_hidden=classifier_hidden,
            dropout=0.0,
            rng=rng,
        )
        if backbone.batch_norm:
            # Non-trivial running statistics so BatchNorm folding is exercised
            # with something other than the (0, 1) initialisation.
            for layer in backbone.features:
                if hasattr(layer, "_buffers") and "running_mean" in getattr(layer, "_buffers", {}):
                    layer._buffers["running_mean"] += rng.normal(
                        0.0, 0.1, size=layer._buffers["running_mean"].shape
                    )
                    layer._buffers["running_var"] *= rng.uniform(
                        0.5, 1.5, size=layer._buffers["running_var"].shape
                    )
        self.network = MimeNetwork(backbone)
        self.network.eval()
        self.tasks = [f"task{i}" for i in range(int(rng.integers(2, 4)))]
        for name in self.tasks:
            add_structured_sparsity_task(
                self.network,
                name,
                num_classes=int(rng.integers(3, 7)),
                rng=rng,
                dead_fraction=float(rng.uniform(0.1, 0.5)),
                threshold_jitter=float(rng.uniform(0.05, 0.3)),
            )
        # float64 everywhere: the training path is float64, so the dense-plan
        # comparison is tight, and the bit-exact paths stay bit-exact.
        self.plan = compile_network(self.network, dtype=np.float64)
        self.profile = structural_profile(self.plan, self.network)
        self.cases = self._make_cases(rng)

    def _make_cases(self, rng: np.random.Generator) -> List[Case]:
        cases = []
        for _ in range(CASES_PER_ARCH):
            task = self.tasks[int(rng.integers(0, len(self.tasks)))]
            n = int(rng.integers(1, 7))
            cases.append(Case(task, rng.normal(size=(n,) + self.plan.input_shape)))
        return cases


def structural_profile(plan, network: MimeNetwork) -> CalibrationProfile:
    """Survival rates derived from the thresholds, not from sampling.

    A channel is dead iff *every* threshold it owns is structurally
    unreachable — exactly the channels ``add_structured_sparsity_task``
    killed — so specialization removes precisely the channels that are zero
    on **all** inputs and the bit-exact contract cannot be broken by an
    unlucky calibration batch.
    """
    survival: Dict[str, Dict[str, np.ndarray]] = {}
    for task in network.registry:
        per_layer: Dict[str, np.ndarray] = {}
        for spec, param in zip(plan.mask_specs, task.thresholds):
            data = param.data
            if data.ndim == 3:
                dead = (data >= STRUCTURAL_DEAD).all(axis=(1, 2))
            else:
                dead = data >= STRUCTURAL_DEAD
            per_layer[spec.layer_name] = (~dead).astype(float)
        survival[task.name] = per_layer
    return CalibrationProfile(
        survival=survival, num_images={task.name: 1 for task in network.registry}
    )


@pytest.fixture(scope="module", params=ARCH_SEEDS)
def arch(request) -> Arch:
    return Arch(request.param)


def test_suite_covers_at_least_fifty_cases():
    assert len(ARCH_SEEDS) * CASES_PER_ARCH >= 50


# ------------------------------------------------------- in-process paths ----
def test_dense_plan_matches_training_forward(arch):
    for case in arch.cases:
        reference = arch.network.forward(case.images, task=case.task)
        compiled = arch.plan.run(case.images, case.task)
        np.testing.assert_allclose(
            compiled,
            reference,
            rtol=1e-9,
            atol=1e-9,
            err_msg=f"arch seed {arch.seed}, task {case.task}, batch {len(case.images)}",
        )


def test_exact_specialization_is_bit_identical(arch):
    plans = {
        task: specialize_plan(arch.plan, task, arch.profile, compact_reduction=False)
        for task in arch.tasks
    }
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        exact = plans[case.task].run(case.images, case.task)
        np.testing.assert_array_equal(
            exact, dense, err_msg=f"arch seed {arch.seed}, task {case.task}"
        )


def test_compact_specialization_matches_to_ulp(arch):
    plans = {
        task: specialize_plan(arch.plan, task, arch.profile, compact_reduction=True)
        for task in arch.tasks
    }
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        compact = plans[case.task].run(case.images, case.task)
        np.testing.assert_allclose(
            compact,
            dense,
            rtol=1e-9,
            atol=1e-12,
            err_msg=f"arch seed {arch.seed}, task {case.task}",
        )


def test_dynamic_sparse_fast_path_is_bit_identical(arch):
    # gate=0 + crossover=1 forces the row-gather path onto *every* GEMM, the
    # strongest version of its bit-exactness claim.
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        ctx = RunContext(DynamicSparseConfig(gate=0.0, default_crossover=1.0))
        dynamic = arch.plan.run(case.images, case.task, ctx=ctx)
        assert ctx.dynamic_gemms > 0, "the forced fast path never engaged"
        np.testing.assert_array_equal(
            dynamic, dense, err_msg=f"arch seed {arch.seed}, task {case.task}"
        )


# --------------------------------------------------------- kernel variants ----
def test_blocked_kernel_variants_are_bit_identical(arch):
    """``blocked`` GEMMs and ``views`` pools reproduce the dense plan bit for bit.

    The blocked conv's strip-copied panel equals the monolithic im2col matrix
    and image-blocking never splits a GEMM row, so the reduction order is
    unchanged; the pool ``views`` cascade computes the same maxima.  Both
    claims are exact, so the comparison is ``array_equal``, not ``allclose``.
    """
    tuned = PlanSpec.from_plan(arch.plan).build()
    force_kernel_variant(tuned, "blocked")
    force_kernel_variant(tuned, "views")
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        blocked = tuned.run(case.images, case.task)
        np.testing.assert_array_equal(
            blocked, dense, err_msg=f"arch seed {arch.seed}, task {case.task}"
        )


def test_direct_conv_matches_to_ulp(arch):
    """The im2col-free direct conv agrees at ULP level (per-tap regrouping).

    3x3 layers accumulate one partial sum per filter tap, which regroups the
    per-pixel reduction — ULP-level, same tolerance as compact
    specialization.  (1x1 layers degenerate to the identical single GEMM and
    are covered bitwise in ``tests/test_kernels.py``.)
    """
    tuned = PlanSpec.from_plan(arch.plan).build()
    forced = force_kernel_variant(tuned, "direct")
    assert forced, "no conv layer was eligible for the direct variant"
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        direct = tuned.run(case.images, case.task)
        np.testing.assert_allclose(
            direct,
            dense,
            rtol=1e-9,
            atol=1e-12,
            err_msg=f"arch seed {arch.seed}, task {case.task}",
        )


def test_packed_kernel_variants_are_bit_identical(arch):
    """``packed`` GEMMs reproduce the dense plan bit for bit.

    The packer keeps a multi-panel split only after proving it bit-exact on
    this host's BLAS (``_packed_split_exact``) and collapses to one
    contiguous panel otherwise, so equality is unconditional — hence
    ``array_equal``.  The panel budget is shrunk so candidate splits are
    actually generated and the proof-or-collapse machinery is exercised,
    not just the trivial single-panel case.
    """
    tuned = PlanSpec.from_plan(arch.plan).build()
    original = K._PACKED_PANEL_BYTES
    K._PACKED_PANEL_BYTES = 1 << 10  # force multi-panel splits at these widths
    try:
        forced = force_kernel_variant(tuned, "packed")
        assert forced, "no GEMM was eligible for the packed variant"
        for case in arch.cases:
            dense = arch.plan.run(case.images, case.task)
            packed = tuned.run(case.images, case.task)
            np.testing.assert_array_equal(
                packed, dense, err_msg=f"arch seed {arch.seed}, task {case.task}"
            )
    finally:
        K._PACKED_PANEL_BYTES = original


def test_winograd_conv_within_declared_tolerance(arch):
    """Winograd convs stay inside ``winograd_tolerance`` and keep decisions.

    F(2x2, 3x3) computes each output through transform-domain combinations —
    value-equivalent up to accumulated rounding, so the comparison is the
    declared-tolerance ``allclose`` (float64 here: ULP-class bounds), plus
    the decision-fidelity floor serving cares about.
    """
    tuned = PlanSpec.from_plan(arch.plan).build()
    forced = force_kernel_variant(tuned, "winograd")
    assert forced, "no conv layer was eligible for the winograd variant"
    tol = winograd_tolerance(arch.plan.dtype)
    agree = total = 0
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        wino = tuned.run(case.images, case.task)
        np.testing.assert_allclose(
            wino, dense, **tol,
            err_msg=f"arch seed {arch.seed}, task {case.task}",
        )
        agree += int((dense.argmax(axis=1) == wino.argmax(axis=1)).sum())
        total += len(dense)
    assert agree / total >= 0.9, (
        f"arch seed {arch.seed}: argmax agreement {agree}/{total} below declared 0.9"
    )


def test_int8_variant_within_declared_tolerance(arch):
    """The int8 path stays inside its declared accuracy contract.

    Int8 is the one variant that is *not* value-equivalent; its contract
    (README, "Int8 accuracy contract") is decision fidelity, not bitwise
    logits.  Measured headroom on these architectures: relative logit error
    <= 0.06 and argmax agreement >= 0.97, so the declared bounds below have
    >= 2.5x slack while still catching any real quantization regression.
    """
    profile = calibrate_plan(arch.plan, batch_size=MICRO_BATCH, seed=arch.seed)
    assert profile.ranges, "calibration must record activation ranges for int8"
    quantized = PlanSpec.from_plan(arch.plan).build()
    names = quantize_plan_kernels(quantized, profile, set_variant=True)
    assert names, "no kernel accepted int8 quantization"
    agree = total = 0
    for case in arch.cases:
        dense = arch.plan.run(case.images, case.task)
        int8 = quantized.run(case.images, case.task)
        assert np.isfinite(int8).all()
        scale = np.abs(dense).max() or 1.0
        assert np.abs(int8 - dense).max() / scale <= 0.15, (
            f"arch seed {arch.seed}, task {case.task}: int8 logit error "
            f"{np.abs(int8 - dense).max() / scale:.4f} above declared 0.15"
        )
        agree += int((dense.argmax(axis=1) == int8.argmax(axis=1)).sum())
        total += len(dense)
    assert agree / total >= 0.9, (
        f"arch seed {arch.seed}: argmax agreement {agree}/{total} below declared 0.9"
    )


def test_int8spd_is_bit_identical_to_int8(arch, monkeypatch):
    """The wide-integer speed datapath changes speed, never bits.

    ``int8spd`` lowers the exact same quantized arithmetic as ``int8``
    (identical quantization, identical dequant op sequence, guard-band
    refinement included), so its outputs must equal the reference int8
    path's bit for bit — which also makes int8's declared accuracy contract
    (``≤ 0.5pp``-class decision fidelity, tested above) carry over verbatim.
    The host probe is forced to "wins" so the test runs everywhere.
    """
    monkeypatch.setattr(K, "_INT8SPD_WINS", True)
    profile = calibrate_plan(arch.plan, batch_size=MICRO_BATCH, seed=arch.seed)
    quantized = PlanSpec.from_plan(arch.plan).build()
    names = quantize_plan_kernels(quantized, profile, set_variant=True)
    assert names, "no kernel accepted int8 quantization"
    reference = {
        id(case): quantized.run(case.images, case.task) for case in arch.cases
    }
    forced = force_kernel_variant(quantized, "int8spd")
    assert set(forced) == set(names), "every quantized GEMM must accept int8spd"
    for case in arch.cases:
        speed = quantized.run(case.images, case.task)
        np.testing.assert_array_equal(
            speed, reference[id(case)],
            err_msg=f"arch seed {arch.seed}, task {case.task}",
        )


def test_chooser_tuned_specialization_round_trips_through_sharded_worker(arch):
    """Chooser-aware specialization survives PlanSpec + spawn bit for bit.

    ``specialize_plan(..., choose_kernels=True)`` autotunes the *compacted*
    geometry and leaves the choice map on the spec; a spawned worker rebuilds
    the plan from its PlanSpec and must serve exactly the bits the local
    specialized plan produces — whatever variants the chooser picked on this
    host (including declared-tolerance ones: both sides run the same
    lowering, so the comparison stays bitwise).
    """
    task = arch.tasks[0]
    spec = specialize_plan(
        arch.plan, task, arch.profile, compact_reduction=True,
        choose_kernels=True, choose_batch=MICRO_BATCH,
    )
    assert spec.kernel_choices, "the chooser must leave choices on the spec"
    rebuilt = PlanSpec.from_plan(spec).build()
    assert rebuilt.kernel_choices == spec.kernel_choices
    rebuilt_variants = {
        k.name: k.variant
        for k in rebuilt.kernels
        if getattr(k, "name", None) in spec.kernel_choices
    }
    assert rebuilt_variants == spec.kernel_choices

    stream_rng = np.random.default_rng(arch.seed + 3)
    images = stream_rng.normal(size=(2 * MICRO_BATCH,) + arch.plan.input_shape)
    runtime = ShardedRuntime(
        arch.plan, policy="fifo-deadline", micro_batch=MICRO_BATCH, max_wait=5.0,
        workers=1, specialized={task: spec},
    )
    futures = [runtime.submit(task, image) for image in images]
    runtime.start()
    report = runtime.stop(drain=True)
    assert report.completed == len(images)
    for start in range(0, len(images), MICRO_BATCH):
        batch = images[start : start + MICRO_BATCH]
        reference = spec.run(batch, task)
        served = np.stack(
            [f.result(timeout=0) for f in futures[start : start + MICRO_BATCH]]
        )
        np.testing.assert_array_equal(
            served, reference, err_msg=f"arch seed {arch.seed}, task {task}"
        )


def test_kernel_choices_round_trip_through_sharded_worker(arch):
    """A chooser map survives PlanSpec + spawn and still serves bit-exactly.

    Builds a deterministic mixed-choice map (blocked GEMMs, views pools —
    machine-independent, unlike a live autotune), applies it, and serves one
    padded stream through a spawned worker: the worker must rebuild the plan
    with the same choices and produce the dense plan's bits.
    """
    tuned = PlanSpec.from_plan(arch.plan).build()
    wanted = {"conv": "blocked", "linear": "blocked", "pool": "views"}
    choices = {
        kernel.name: wanted[kernel.kind]
        for kernel in tuned.kernels
        if variant_candidates(kernel) and wanted[kernel.kind] in variant_candidates(kernel)
    }
    applied = apply_kernel_choices(tuned, choices)
    assert applied == choices
    rebuilt = PlanSpec.from_plan(tuned).build()
    assert rebuilt.kernel_choices == choices
    rebuilt_variants = {
        k.name: k.variant for k in rebuilt.kernels if getattr(k, "name", None) in choices
    }
    assert rebuilt_variants == choices

    task = arch.tasks[0]
    stream_rng = np.random.default_rng(arch.seed + 2)
    images = stream_rng.normal(size=(2 * MICRO_BATCH,) + arch.plan.input_shape)
    runtime = ShardedRuntime(
        tuned, policy="fifo-deadline", micro_batch=MICRO_BATCH, max_wait=5.0, workers=1
    )
    futures = [runtime.submit(task, image) for image in images]
    runtime.start()
    report = runtime.stop(drain=True)
    assert report.completed == len(images)
    for start in range(0, len(images), MICRO_BATCH):
        batch = images[start : start + MICRO_BATCH]
        reference = arch.plan.run(batch, task)
        served = np.stack([f.result(timeout=0) for f in futures[start : start + MICRO_BATCH]])
        np.testing.assert_array_equal(
            served, reference, err_msg=f"arch seed {arch.seed}, task {task}"
        )


# ----------------------------------------------------- process-sharded path ----
def test_sharded_serving_is_bit_identical(arch):
    """Every case's images also round-trip through a spawned worker fleet.

    Per-task streams are padded to micro-batch multiples so each batch closes
    on its size trigger with a deterministic composition; the reference is
    ``plan.run`` on exactly those compositions, compared bit for bit.
    """
    per_task: Dict[str, List[np.ndarray]] = {task: [] for task in arch.tasks}
    for case in arch.cases:
        per_task[case.task].extend(case.images)
    pad_rng = np.random.default_rng(arch.seed + 1)
    for task, images in per_task.items():
        shortfall = (-len(images)) % MICRO_BATCH
        images.extend(pad_rng.normal(size=(shortfall,) + arch.plan.input_shape))

    runtime = ShardedRuntime(
        arch.plan, policy="fifo-deadline", micro_batch=MICRO_BATCH, max_wait=5.0, workers=1
    )
    futures: Dict[str, List] = {task: [] for task in arch.tasks}
    for task, images in per_task.items():
        for image in images:
            futures[task].append(runtime.submit(task, image))
    runtime.start()
    report = runtime.stop(drain=True)
    assert report.completed == sum(len(images) for images in per_task.values())

    for task, images in per_task.items():
        for start in range(0, len(images), MICRO_BATCH):
            batch = np.stack(images[start : start + MICRO_BATCH])
            reference = arch.plan.run(batch, task)
            served = np.stack(
                [f.result(timeout=0) for f in futures[task][start : start + MICRO_BATCH]]
            )
            np.testing.assert_array_equal(
                served, reference, err_msg=f"arch seed {arch.seed}, task {task}"
            )
