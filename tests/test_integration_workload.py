"""End-to-end integration tests: the full surrogate workload and the tables built from it.

These exercise the entire pipeline the paper describes — parent training,
MIME threshold training for three child tasks, conventional fine-tuning — on
the ``fast_config`` scale, and then feed the *measured* sparsity profiles into
the hardware model.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import fast_config
from repro.experiments.workloads import build_workload
from repro.experiments.tables import (
    compare_sparsity_ordering,
    table2_mime_accuracy_and_sparsity,
    table3_baseline_accuracy_and_sparsity,
)
from repro.hardware import (
    SystolicArraySimulator,
    case2_config,
    mime_config,
    pipelined_task_schedule,
)
from repro.models import extract_layer_shapes


@pytest.fixture(scope="module")
def workload():
    return build_workload(fast_config(), include_mime=True, include_baselines=True)


class TestWorkloadTraining:
    def test_all_three_child_tasks_trained(self, workload):
        assert set(workload.mime_accuracy) == {"cifar10", "cifar100", "fmnist"}
        assert set(workload.baseline_accuracy) == {"cifar10", "cifar100", "fmnist"}

    def test_models_learn_above_chance(self, workload):
        for task in workload.child_tasks:
            chance = 1.0 / task.num_classes
            assert workload.mime_accuracy[task.name] > chance
            assert workload.baseline_accuracy[task.name] > chance

    def test_parent_accuracy_above_chance(self, workload):
        assert workload.parent_accuracy > 1.0 / workload.parent_task.num_classes

    def test_mime_sparsity_reports_cover_all_masked_layers(self, workload):
        masked = workload.mime_network.masked_layer_names()
        for report in workload.mime_sparsity.values():
            assert set(report.layer_names()) == set(masked)
            assert 0.0 < report.mean < 1.0

    def test_mime_mean_sparsity_exceeds_baseline(self, workload):
        """The reproduced analogue of Tables II vs III."""
        table2 = table2_mime_accuracy_and_sparsity(workload)
        table3 = table3_baseline_accuracy_and_sparsity(workload)
        holds_for = compare_sparsity_ordering(table2, table3)
        assert len(holds_for) >= 2  # at least two of the three tasks

    def test_mime_stores_far_fewer_per_task_parameters(self, workload):
        network = workload.mime_network
        per_task = network.num_threshold_parameters()
        parent = network.parent_parameter_count()
        assert per_task < 0.25 * parent


class TestWorkloadToHardware:
    def test_measured_profiles_drive_simulator(self, workload):
        """Use the measured (not paper) sparsities for a pipelined-mode comparison."""
        shapes = extract_layer_shapes(workload.parent_model)
        schedule = pipelined_task_schedule(workload.child_names())
        simulator = SystolicArraySimulator()
        baseline = simulator.run(
            shapes, schedule, workload.baseline_sparsity_profile(), case2_config(), conv_only=True
        )
        mime = simulator.run(
            shapes, schedule, workload.mime_sparsity_profile(), mime_config(), conv_only=True
        )
        assert mime.total_energy().total < baseline.total_energy().total

    def test_profiles_contain_measured_values(self, workload):
        profile = workload.mime_sparsity_profile()
        for task in workload.child_names():
            assert 0.0 < profile.output_sparsity(task, "conv2") < 1.0
