"""End-to-end checkpointing tests.

The artefact MIME deploys is exactly ``{W_parent, T_child-1, ..., T_child-n}``
(plus the tiny task heads).  These tests save that artefact set to disk with
the library's serialisation helpers, rebuild a fresh network from the files,
and verify the reloaded system is bit-for-bit equivalent (same predictions,
same masks, same sparsity) — i.e. the reproduction supports the deployment
workflow the paper assumes, not just in-memory experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import clone_vgg
from repro.mime import MimeNetwork
from repro.models import vgg_tiny
from repro.utils import load_state_dict, save_state_dict

RNG = np.random.default_rng(31)


@pytest.fixture()
def trained_like_network(tiny_task, tiny_grey_task):
    """A two-task MimeNetwork with perturbed (as-if-trained) thresholds and heads."""
    backbone = vgg_tiny(num_classes=6, input_size=16, rng=np.random.default_rng(0))
    network = MimeNetwork(backbone)
    for task in (tiny_task, tiny_grey_task):
        network.add_task(task.name, task.num_classes, rng=RNG)
        record = network.registry.get(task.name)
        for threshold in record.thresholds:
            threshold.data += RNG.uniform(0.0, 0.3, size=threshold.data.shape)
        record.head_weight.data += RNG.normal(0, 0.1, size=record.head_weight.data.shape)
    return network


class TestMimeArtefactRoundTrip:
    def test_parent_and_thresholds_round_trip(self, tmp_path, trained_like_network, tiny_task, tiny_grey_task):
        network = trained_like_network
        images = RNG.normal(size=(5, 3, 16, 16))

        # Save the deployable artefact set: one parent file + one file per task.
        save_state_dict(network.backbone.state_dict(), tmp_path / "w_parent.npz")
        for name in network.task_names():
            save_state_dict(network.registry.get(name).state_dict(), tmp_path / f"t_{name}.npz")

        # Rebuild from files on a fresh network.
        fresh_backbone = vgg_tiny(num_classes=6, input_size=16, rng=np.random.default_rng(99))
        fresh_backbone.load_state_dict(load_state_dict(tmp_path / "w_parent.npz"))
        restored = MimeNetwork(fresh_backbone)
        for task in (tiny_task, tiny_grey_task):
            restored.add_task(task.name, task.num_classes, rng=np.random.default_rng(100))
            restored.registry.get(task.name).load_state_dict(
                load_state_dict(tmp_path / f"t_{task.name}.npz")
            )

        for name in network.task_names():
            expected = network.forward(images, task=name)
            actual = restored.forward(images, task=name)
            assert np.allclose(expected, actual), f"predictions diverged for task '{name}'"
            assert network.sparsity_by_layer() == pytest.approx(restored.sparsity_by_layer())

    def test_artefact_files_reflect_storage_asymmetry(self, tmp_path, trained_like_network):
        """The on-disk artefacts show the paper's storage story: the parent file
        dominates and each per-task file is a small fraction of it."""
        network = trained_like_network
        parent_path = tmp_path / "w_parent.npz"
        save_state_dict(network.backbone.state_dict(), parent_path)
        task_sizes = []
        for name in network.task_names():
            path = tmp_path / f"t_{name}.npz"
            save_state_dict(network.registry.get(name).state_dict(), path)
            task_sizes.append(path.stat().st_size)
        assert all(size < parent_path.stat().st_size for size in task_sizes)

    def test_threshold_state_rejects_wrong_architecture(self, tmp_path, trained_like_network, tiny_task):
        network = trained_like_network
        path = tmp_path / "t.npz"
        save_state_dict(network.registry.get(tiny_task.name).state_dict(), path)

        other_backbone = vgg_tiny(num_classes=6, input_size=8, rng=RNG)  # different input size
        other = MimeNetwork(other_backbone)
        other.add_task(tiny_task.name, tiny_task.num_classes, rng=RNG)
        with pytest.raises((ValueError, KeyError)):
            other.registry.get(tiny_task.name).load_state_dict(load_state_dict(path))


class TestBaselineCheckpointRoundTrip:
    def test_finetuned_child_round_trip(self, tmp_path, tiny_backbone, tiny_task):
        child = clone_vgg(tiny_backbone, num_classes=tiny_task.num_classes)
        path = tmp_path / "child.npz"
        save_state_dict(child.state_dict(), path)

        restored = clone_vgg(tiny_backbone, num_classes=tiny_task.num_classes, rng=np.random.default_rng(55))
        restored.load_state_dict(load_state_dict(path))
        images = RNG.normal(size=(3, 3, 16, 16))
        child.eval()
        restored.eval()
        assert np.allclose(child(images), restored(images))
