"""Tests for the Module/Parameter machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter


class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 3, rng=np.random.default_rng(0))
        self.second = Linear(3, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.second(self.first(x))

    def backward(self, grad):
        return self.first.backward(self.second.backward(grad))


class TestParameter:
    def test_shape_and_size(self):
        param = Parameter(np.zeros((3, 4)))
        assert param.shape == (3, 4)
        assert param.size == 12

    def test_accumulate_grad_adds(self):
        param = Parameter(np.zeros((2, 2)))
        param.accumulate_grad(np.ones((2, 2)))
        param.accumulate_grad(np.ones((2, 2)))
        assert np.allclose(param.grad, 2 * np.ones((2, 2)))

    def test_accumulate_grad_shape_mismatch_raises(self):
        param = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            param.accumulate_grad(np.ones((3, 2)))

    def test_frozen_parameter_skips_gradient(self):
        param = Parameter(np.zeros((2, 2)), requires_grad=False)
        param.accumulate_grad(np.ones((2, 2)))
        assert param.grad is None

    def test_zero_grad_resets(self):
        param = Parameter(np.zeros(3))
        param.accumulate_grad(np.ones(3))
        param.zero_grad()
        assert param.grad is None


class TestModuleRegistration:
    def test_named_parameters_cover_submodules(self):
        model = _TwoLayer()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"first.weight", "first.bias", "second.weight", "second.bias"}

    def test_num_parameters(self):
        model = _TwoLayer()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_freeze_and_trainable_count(self):
        model = _TwoLayer()
        model.freeze()
        assert model.num_parameters(trainable_only=True) == 0
        model.unfreeze()
        assert model.num_parameters(trainable_only=True) == model.num_parameters()

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), ReLU())
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_children_iteration(self):
        model = _TwoLayer()
        assert len(list(model.children())) == 2


class TestStateDict:
    def test_round_trip(self):
        model = _TwoLayer()
        other = _TwoLayer()
        other.load_state_dict(model.state_dict())
        for (name_a, param_a), (name_b, param_b) in zip(
            model.named_parameters(), other.named_parameters()
        ):
            assert name_a == name_b
            assert np.allclose(param_a.data, param_b.data)

    def test_strict_missing_key_raises(self):
        model = _TwoLayer()
        state = model.state_dict()
        state.pop("first.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = _TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        model = _TwoLayer()
        x = np.random.default_rng(0).normal(size=(5, 4))
        out = model(x)
        model.backward(np.ones_like(out))
        assert any(param.grad is not None for param in model.parameters())
        model.zero_grad()
        assert all(param.grad is None for param in model.parameters())
