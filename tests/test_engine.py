"""The compiled multi-task inference engine.

Covers the PR's acceptance properties: engine/model output equivalence for
every registered task in both scheduling modes, compile() not perturbing the
training network, O(1) task plans, workspace reuse, request ordering, and the
measured-sparsity round-trip into the hardware simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    MultiTaskEngine,
    SparsityRecorder,
    compile_network,
)
from repro.hardware import LayerSparsityProfile, SystolicArraySimulator, mime_config
from repro.mime import MimeNetwork
from repro.models import extract_layer_shapes, vgg_tiny

TASKS = (("alpha", 4), ("beta", 7), ("gamma", 3))


@pytest.fixture()
def network(rng):
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=np.random.default_rng(0))
    net = MimeNetwork(backbone)
    net.eval()
    jitter = np.random.default_rng(99)
    for name, num_classes in TASKS:
        task = net.add_task(name, num_classes, rng=jitter)
        for param in task.thresholds:
            param.data += jitter.uniform(0.0, 0.15, size=param.data.shape)
    return net


@pytest.fixture()
def batch(rng):
    return rng.normal(size=(9, 3, 16, 16))


# ---------------------------------------------------------------- equivalence --
@pytest.mark.parametrize("mode", ["singular", "pipelined"])
def test_engine_matches_training_forward_for_every_task(network, batch, mode):
    plan = compile_network(network, dtype=np.float64)
    engine = MultiTaskEngine(plan, micro_batch=4)
    references = {}
    for name, _ in TASKS:
        references[name] = network.forward(batch, task=name)
        engine.submit(name, batch)
    outputs, stats = engine.run_pending(mode=mode)
    assert stats.num_images == len(TASKS) * batch.shape[0]
    cursor = 0
    for name, num_classes in TASKS:
        for row in range(batch.shape[0]):
            np.testing.assert_allclose(
                outputs[cursor], references[name][row], atol=1e-5,
                err_msg=f"task {name} image {row} diverges in {mode} mode",
            )
            assert outputs[cursor].shape == (num_classes,)
            cursor += 1


def test_float32_engine_is_close_and_agrees_on_predictions(network, batch):
    plan = compile_network(network)  # default dtype: float32
    assert plan.dtype == np.float32
    for name, _ in TASKS:
        reference = network.forward(batch, task=name)
        out = plan.run(batch, name)
        assert out.dtype == np.float32
        # Mask bits may flip for pre-activations within float32 epsilon of a
        # threshold, so compare loosely plus on argmax agreement.
        assert np.abs(out - reference).mean() < 1e-3
        assert (np.argmax(out, axis=1) == np.argmax(reference, axis=1)).mean() >= 0.8


def test_engine_matches_with_unmasked_classifier_hidden(rng, batch):
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=np.random.default_rng(1))
    net = MimeNetwork(backbone, mask_classifier_hidden=False)
    net.eval()
    net.add_task("solo", 5, rng=np.random.default_rng(2))
    plan = compile_network(net, dtype=np.float64)
    np.testing.assert_allclose(plan.run(batch, "solo"), net.forward(batch, task="solo"), atol=1e-5)


def test_engine_matches_with_headless_classifier(rng, batch):
    # No hidden FC trunk: the NHWC permutation must fold into the task heads.
    backbone = vgg_tiny(
        num_classes=6, input_size=16, in_channels=3, classifier_hidden=(),
        rng=np.random.default_rng(3),
    )
    net = MimeNetwork(backbone)
    net.eval()
    net.add_task("solo", 5, rng=np.random.default_rng(4))
    plan = compile_network(net, dtype=np.float64)
    assert plan.head_permutation is not None
    np.testing.assert_allclose(plan.run(batch, "solo"), net.forward(batch, task="solo"), atol=1e-5)


# ------------------------------------------------------------ compile hygiene --
def test_compile_leaves_training_network_untouched(network, batch):
    network.set_active_task("beta")
    before_state = network.state_dict()
    before_reference = network.forward(batch)
    before_sparsity = network.sparsity_by_layer()

    plan = compile_network(network, dtype=np.float32)
    engine = MultiTaskEngine(plan, micro_batch=4)
    for name, _ in TASKS:
        engine.submit(name, batch)
    engine.run_pending(mode="pipelined")

    assert network.active_task == "beta"
    after_state = network.state_dict()
    assert before_state.keys() == after_state.keys()
    for key, value in before_state.items():
        np.testing.assert_array_equal(value, after_state[key], err_msg=f"{key} changed")
    # Layer caches (and hence measured sparsity) still reflect the pre-compile pass.
    assert network.sparsity_by_layer() == before_sparsity
    np.testing.assert_array_equal(network.forward(batch), before_reference)


def test_mutating_the_training_network_does_not_leak_into_the_plan(network, batch):
    plan = compile_network(network, dtype=np.float64)
    expected = plan.run(batch, "alpha").copy()
    for task in network.registry:
        for param in task.thresholds:
            param.data += 10.0  # would prune everything if the plan aliased it
    np.testing.assert_array_equal(plan.run(batch, "alpha"), expected)


def test_add_task_after_compile(network, batch):
    plan = compile_network(network, dtype=np.float64)
    late = network.add_task("delta", 6, rng=np.random.default_rng(5))
    plan.add_task(late)
    np.testing.assert_allclose(plan.run(batch, "delta"), network.forward(batch, task="delta"), atol=1e-5)


def test_compile_rejects_non_mime_models():
    with pytest.raises(TypeError):
        compile_network(vgg_tiny(num_classes=4, input_size=16))


def test_plan_rejects_unknown_task_and_bad_shapes(network, batch):
    plan = compile_network(network)
    with pytest.raises(KeyError):
        plan.run(batch, "nope")
    with pytest.raises(ValueError):
        plan.run(np.zeros((2, 3, 8, 8)), "alpha")


def test_masked_layer_names_match_network(network):
    plan = compile_network(network)
    assert plan.masked_layer_names() == network.masked_layer_names()


# ---------------------------------------------------------------- scheduling --
def test_pipelined_mode_interleaves_and_singular_groups(network, batch):
    plan = compile_network(network)
    for mode, expected_switches in (("singular", 2), ("pipelined", 5)):
        engine = MultiTaskEngine(plan, micro_batch=5)
        for name, _ in TASKS:
            engine.submit(name, batch)  # 9 images -> 2 micro-batches per task
        _, stats = engine.run_pending(mode=mode)
        assert stats.num_batches == 6
        assert stats.task_switches == expected_switches
    with pytest.raises(ValueError):
        MultiTaskEngine(plan).process([], mode="bogus")


def test_outputs_come_back_in_submission_order(network, rng):
    plan = compile_network(network, dtype=np.float64)
    engine = MultiTaskEngine(plan, micro_batch=3)
    submissions = []
    order = np.random.default_rng(6)
    for _ in range(20):
        name, _ = TASKS[int(order.integers(0, len(TASKS)))]
        image = rng.normal(size=(3, 16, 16))
        engine.submit(name, image)
        submissions.append((name, image))
    outputs, _ = engine.run_pending(mode="pipelined")
    assert len(outputs) == len(submissions)
    for output, (name, image) in zip(outputs, submissions):
        np.testing.assert_allclose(output, plan.run(image[None], name)[0], atol=1e-12)


def test_workspace_buffers_are_reused_across_calls(network, batch):
    plan = compile_network(network)
    plan.run(batch, "alpha")
    allocated = plan.num_workspace_buffers()
    assert allocated > 0
    for _ in range(3):
        plan.run(batch, "beta")
    assert plan.num_workspace_buffers() == allocated  # same shapes, same buffers
    plan.run(batch[:2], "alpha")
    assert plan.num_workspace_buffers() > allocated  # new batch size, new set


# ------------------------------------------------------------- hardware glue --
def test_measured_sparsity_round_trips_into_the_simulator(network, batch):
    plan = compile_network(network)
    engine = MultiTaskEngine(plan, micro_batch=4)
    for name, _ in TASKS:
        engine.submit(name, batch)
    engine.run_pending(mode="pipelined")

    profile = engine.sparsity_profile()
    assert isinstance(profile, LayerSparsityProfile)
    assert sorted(profile.tasks()) == sorted(name for name, _ in TASKS)
    for name, _ in TASKS:
        layers = profile.per_task[name]
        assert set(layers) == set(plan.masked_layer_names())
        assert all(0.0 <= value <= 1.0 for value in layers.values())

    schedule = engine.recorder.schedule()
    assert len(schedule) == len(TASKS) * batch.shape[0]
    shapes = extract_layer_shapes(network.backbone)
    result = SystolicArraySimulator().run(shapes, schedule, profile, mime_config())
    assert result.total_energy().total > 0
    report = engine.hardware_report(shapes, conv_only=True)
    assert set(report.layer_names()) == {s.name for s in shapes if s.kind == "conv"}


def test_recorder_accumulates_across_runs_unless_fresh(network, batch):
    plan = compile_network(network)
    engine = MultiTaskEngine(plan, micro_batch=4)
    engine.submit("alpha", batch)
    engine.run_pending()
    assert engine.recorder.num_images() == batch.shape[0]

    # By default the recorder covers the engine's whole lifetime...
    engine.submit("beta", batch)
    engine.run_pending()
    assert engine.recorder.num_images() == 2 * batch.shape[0]

    # ...and fresh_stats starts a new measurement window.
    engine.submit("gamma", batch)
    engine.run_pending(fresh_stats=True)
    assert engine.recorder.num_images() == batch.shape[0]
    assert engine.recorder.tasks() == ["gamma"]

    engine.reset_stats()
    assert engine.recorder.num_images() == 0
    assert engine.last_task is None


def test_task_switches_span_process_calls(network, batch):
    plan = compile_network(network)
    engine = MultiTaskEngine(plan, micro_batch=16)
    engine.submit("alpha", batch)
    _, first = engine.run_pending(mode="singular")
    assert first.task_switches == 0
    assert engine.last_task == "alpha"

    # The first batch of the next drain belongs to a different task: that is
    # a real switch the hardware would pay for, and the stats now count it.
    engine.submit("beta", batch)
    _, second = engine.run_pending(mode="singular")
    assert second.task_switches == 1

    # Same task again: no switch.
    engine.submit("beta", batch)
    _, third = engine.run_pending(mode="singular")
    assert third.task_switches == 0

    # A fresh window forgets the previous task.
    engine.submit("alpha", batch)
    _, fourth = engine.run_pending(mode="singular", fresh_stats=True)
    assert fourth.task_switches == 0


def test_run_stats_summary(network, batch):
    plan = compile_network(network)
    engine = MultiTaskEngine(plan, micro_batch=4)
    for name, _ in TASKS:
        engine.submit(name, batch)
    _, stats = engine.run_pending(mode="pipelined")
    summary = stats.summary()
    assert "pipelined" in summary
    assert str(stats.num_images) in summary
    assert str(stats.num_batches) in summary
    assert "task switches" in summary


def test_recorder_validation_and_reset():
    recorder = SparsityRecorder()
    with pytest.raises(ValueError):
        recorder.record("t", "conv1", 1.5, 1)
    with pytest.raises(ValueError):
        recorder.record("t", "conv1", 0.5, 0)
    with pytest.raises(KeyError):
        recorder.per_layer("missing")
    recorder.record("t", "conv1", 0.25, 4)
    recorder.record("t", "conv1", 0.75, 4)
    recorder.record_pass("t", 8)
    assert recorder.per_layer("t") == {"conv1": 0.5}
    assert recorder.mean_sparsity("t") == 0.5
    assert recorder.num_images() == 8
    recorder.reset()
    assert recorder.num_images() == 0 and recorder.tasks() == []


# ----------------------------------------------------- workspace pool hygiene --
def test_workspace_pool_reallocates_on_shape_or_dtype_change():
    from repro.engine import WorkspacePool

    pool = WorkspacePool()
    first = pool.get(1, "buf", 4, (4, 8), np.float32)
    first[:] = 7.0
    assert pool.get(1, "buf", 4, (4, 8), np.float32) is first  # steady state: reused
    # Same key, different geometry: a stale buffer must never be returned —
    # the zero-from-allocation-time invariant would silently break.
    resized = pool.get(1, "buf", 4, (4, 16), np.float32)
    assert resized is not first and resized.shape == (4, 16)
    assert (resized == 0.0).all()
    retyped = pool.get(1, "buf", 4, (4, 16), np.float64)
    assert retyped.dtype == np.float64 and (retyped == 0.0).all()


def test_padded_workspace_large_then_small_batch_cannot_leak(network):
    """A big-batch run must not contaminate a later small-batch run.

    The conv pad buffer relies on its border staying zero from allocation
    time; running a large batch with extreme values and then a smaller batch
    through the same pool must give exactly the same logits as a fresh pool.
    """
    from repro.engine import WorkspacePool

    plan = compile_network(network, dtype=np.float64)
    rng = np.random.default_rng(77)
    big = 1e6 * rng.normal(size=(16, 3, 16, 16))  # extreme values to make leaks loud
    small = rng.normal(size=(2, 3, 16, 16))

    shared = WorkspacePool()
    plan.run(big, "alpha", workspaces=shared)
    reused = plan.run(small, "beta", workspaces=shared)
    fresh = plan.run(small, "beta", workspaces=WorkspacePool())
    np.testing.assert_array_equal(reused, fresh)
    # And the reverse order (small warms the pool, big reuses it).
    shared2 = WorkspacePool()
    plan.run(small, "beta", workspaces=shared2)
    np.testing.assert_array_equal(
        plan.run(big, "alpha", workspaces=shared2),
        plan.run(big, "alpha", workspaces=WorkspacePool()),
    )


def test_one_pool_safely_serves_dense_and_specialized_plans(network, batch):
    """Serving workers hold one pool while switching between per-task plans.

    Buffers are keyed by kernel identity, so a dense plan and a compacted
    specialized plan (same kernel indices, different shapes) must coexist in
    one pool without clobbering each other.
    """
    from repro.engine import WorkspacePool, calibrate_plan, specialize_tasks

    plan = compile_network(network, dtype=np.float64)
    profile = calibrate_plan(plan, images={name: batch for name, _ in TASKS})
    specialized = specialize_tasks(plan, profile=profile)
    pool = WorkspacePool()
    for _ in range(2):  # interleave: dense, specialized, dense, specialized
        dense_out = plan.run(batch, "alpha", workspaces=pool)
        spec_out = specialized["alpha"].run(batch, "alpha", workspaces=pool)
    np.testing.assert_array_equal(dense_out, plan.run(batch, "alpha"))
    np.testing.assert_array_equal(spec_out, specialized["alpha"].run(batch, "alpha"))


def test_mask_buffers_are_pooled_and_reused(network, batch):
    plan = compile_network(network)
    plan.run(batch, "alpha")
    allocated = plan.num_workspace_buffers()
    buffers = plan._workspaces._buffers
    mask_buffers = [buf for buf in buffers.values() if buf.dtype == np.bool_]
    assert mask_buffers, "threshold masks should live in pooled bool buffers"
    for _ in range(3):
        plan.run(batch, "beta")
    assert plan.num_workspace_buffers() == allocated  # steady state: no new buffers
