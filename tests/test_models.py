"""Tests for the model zoo and layer-shape extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    LeNet,
    MLP,
    available_models,
    build_model,
    extract_layer_shapes,
    register_model,
    vgg16_layer_shapes,
    vgg_tiny,
    vgg_small,
)
from repro.models.vgg import VGG, VGG_CONFIGS, vgg16
from repro.models.shapes import vgg_layer_shapes
from repro.nn import Conv2d, CrossEntropyLoss

RNG = np.random.default_rng(0)


class TestVGG:
    def test_vgg_tiny_forward_shape(self):
        model = vgg_tiny(num_classes=7, input_size=16, rng=RNG)
        out = model(RNG.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 7)

    def test_vgg_small_forward_shape(self):
        model = vgg_small(num_classes=4, input_size=32, rng=RNG)
        out = model(RNG.normal(size=(1, 3, 32, 32)))
        assert out.shape == (1, 4)

    def test_backward_shapes(self):
        model = vgg_tiny(num_classes=5, input_size=16, rng=RNG)
        x = RNG.normal(size=(2, 3, 16, 16))
        out = model(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_vgg16_conv_layer_count(self):
        convs = [c for c in VGG_CONFIGS["vgg16"] if c != "M"]
        assert len(convs) == 13

    def test_width_multiplier_scales_channels(self):
        model = VGG(VGG_CONFIGS["vgg_tiny"], width_multiplier=0.5, input_size=16, rng=RNG)
        first_conv = model.conv_layers()[0]
        assert first_conv.out_channels == 4

    def test_conv_layers_in_order(self):
        model = vgg_small(input_size=32, rng=RNG)
        convs = model.conv_layers()
        assert all(isinstance(layer, Conv2d) for layer in convs)
        assert len(convs) == 6

    def test_replace_classifier_head(self):
        model = vgg_tiny(num_classes=5, input_size=16, rng=RNG)
        model.replace_classifier_head(11)
        out = model(RNG.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 11)
        assert model.num_classes == 11

    def test_grayscale_input_channels(self):
        model = vgg_tiny(num_classes=3, input_size=16, in_channels=1, rng=RNG)
        out = model(RNG.normal(size=(2, 1, 16, 16)))
        assert out.shape == (2, 3)

    def test_training_reduces_loss(self):
        from repro.nn import Adam

        model = vgg_tiny(num_classes=3, input_size=8, rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 3, 8, 8))
        labels = rng.integers(0, 3, size=30)
        # Give each class a strong constant offset so the task is learnable.
        for cls in range(3):
            x[labels == cls, cls] += 2.0
        criterion = CrossEntropyLoss()
        optimizer = Adam([p for p in model.parameters() if p.requires_grad], lr=5e-3)
        first_loss = None
        for _ in range(15):
            optimizer.zero_grad()
            loss = criterion(model(x), labels)
            model.backward(criterion.backward())
            optimizer.step()
            if first_loss is None:
                first_loss = loss
        assert loss < first_loss

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            vgg_tiny(num_classes=0)
        with pytest.raises(ValueError):
            VGG(VGG_CONFIGS["vgg_tiny"], width_multiplier=0.0)


class TestReferenceModels:
    def test_lenet_forward(self):
        model = LeNet(num_classes=10, in_channels=1, input_size=28, rng=RNG)
        out = model(RNG.normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_mlp_forward_and_backward(self):
        model = MLP(input_dim=3 * 8 * 8, hidden_sizes=(16,), num_classes=5, rng=RNG)
        x = RNG.normal(size=(4, 3, 8, 8))
        out = model(x)
        assert out.shape == (4, 5)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestRegistry:
    def test_builtin_models_available(self):
        names = available_models()
        for expected in ("vgg16", "vgg_tiny", "lenet", "mlp"):
            assert expected in names

    def test_build_model(self):
        model = build_model("vgg_tiny", num_classes=4, input_size=16)
        assert isinstance(model, VGG)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("not-a-model")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_model("vgg16", vgg16)


class TestLayerShapes:
    def test_vgg16_has_13_convs_and_fcs(self):
        shapes = vgg16_layer_shapes(input_size=32)
        convs = [s for s in shapes if s.kind == "conv"]
        linears = [s for s in shapes if s.kind == "linear"]
        assert len(convs) == 13
        assert len(linears) == 2  # one hidden layer + the classifier by default
        assert convs[0].name == "conv1" and convs[-1].name == "conv13"

    def test_threshold_vs_weight_crossover(self):
        """Thresholds outnumber weights only in the earliest layers (paper Fig. 8)."""
        shapes = vgg16_layer_shapes(input_size=112)
        by_name = {s.name: s for s in shapes}
        assert by_name["conv2"].output_neurons > by_name["conv2"].weight_count
        assert by_name["conv4"].output_neurons > by_name["conv4"].weight_count
        assert by_name["conv5"].output_neurons < by_name["conv5"].weight_count
        assert by_name["conv13"].output_neurons < by_name["conv13"].weight_count

    def test_mac_count_formula(self):
        shapes = vgg16_layer_shapes(input_size=32)
        conv2 = next(s for s in shapes if s.name == "conv2")
        assert conv2.macs == 64 * 32 * 32 * 64 * 9

    def test_extract_matches_symbolic(self):
        model = vgg_small(num_classes=10, input_size=32, rng=RNG)
        extracted = extract_layer_shapes(model)
        symbolic = vgg_layer_shapes(
            "vgg_small", input_size=32, num_classes=10, classifier_hidden=(128,)
        )
        assert [s.name for s in extracted] == [s.name for s in symbolic]
        for a, b in zip(extracted, symbolic):
            assert a.weight_count == b.weight_count
            assert a.output_neurons == b.output_neurons

    def test_imagenet_scale_parameter_count(self):
        """The symbolic VGG16/ImageNet model has the canonical ~138 M parameters."""
        shapes = vgg_layer_shapes(
            "vgg16", input_size=224, num_classes=1000, classifier_hidden=(4096, 4096)
        )
        total = sum(s.weight_count + s.bias_count for s in shapes)
        assert 135e6 < total < 140e6

    def test_spatial_halving_through_pools(self):
        shapes = vgg16_layer_shapes(input_size=64)
        by_name = {s.name: s for s in shapes}
        assert by_name["conv1"].output_h == 64
        assert by_name["conv3"].output_h == 32
        assert by_name["conv5"].output_h == 16
        assert by_name["conv8"].output_h == 8
        assert by_name["conv11"].output_h == 4

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            vgg_layer_shapes("vgg16", input_size=0)

    def test_sequential_requires_input_shape(self):
        from repro.nn import Sequential, Linear

        with pytest.raises(ValueError):
            extract_layer_shapes(Sequential(Linear(4, 2)))
