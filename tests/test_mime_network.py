"""Tests for the MimeNetwork multi-task model and its trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DataLoader
from repro.mime import MimeNetwork, ThresholdTrainer

RNG = np.random.default_rng(9)


class TestConstruction:
    def test_backbone_is_frozen(self, tiny_mime):
        assert all(not p.requires_grad for p in tiny_mime.backbone.parameters())

    def test_masks_cover_convs_and_hidden_fc(self, tiny_mime):
        names = tiny_mime.masked_layer_names()
        assert names == ["conv1", "conv2", "conv3", "fc4"]

    def test_threshold_counts_match_layer_outputs(self, tiny_mime):
        counts = tiny_mime.threshold_counts()
        # vgg_tiny at 16x16: conv1 8x16x16, conv2 16x8x8, conv3 32x4x4, fc 64.
        assert counts == {"conv1": 8 * 16 * 16, "conv2": 16 * 8 * 8, "conv3": 32 * 4 * 4, "fc4": 64}

    def test_mask_classifier_hidden_flag(self, tiny_backbone):
        network = MimeNetwork(tiny_backbone, mask_classifier_hidden=False)
        network.add_task("t", 3)
        assert network.masked_layer_names() == ["conv1", "conv2", "conv3"]

    def test_requires_vgg_backbone(self):
        from repro.models import MLP

        with pytest.raises(TypeError):
            MimeNetwork(MLP(input_dim=12, num_classes=2))

    def test_forward_requires_registered_task(self, tiny_backbone):
        network = MimeNetwork(tiny_backbone)
        with pytest.raises(RuntimeError):
            network.forward(RNG.normal(size=(1, 3, 16, 16)))


class TestMultiTask:
    def test_add_and_switch_tasks(self, tiny_backbone):
        network = MimeNetwork(tiny_backbone)
        network.add_task("a", 3, rng=RNG)
        network.add_task("b", 7, rng=RNG)
        x = RNG.normal(size=(2, 3, 16, 16))
        out_a = network.forward(x, task="a")
        out_b = network.forward(x, task="b")
        assert out_a.shape == (2, 3)
        assert out_b.shape == (2, 7)
        assert network.active_task == "b"
        assert network.task_names() == ["a", "b"]

    def test_duplicate_task_rejected(self, tiny_mime, tiny_task):
        with pytest.raises(ValueError):
            tiny_mime.add_task(tiny_task.name, 3)

    def test_unknown_task_rejected(self, tiny_mime):
        with pytest.raises(KeyError):
            tiny_mime.set_active_task("nope")

    def test_tasks_share_backbone_weights(self, tiny_backbone):
        """W_parent is literally the same array object for every task."""
        network = MimeNetwork(tiny_backbone)
        network.add_task("a", 3, rng=RNG)
        network.add_task("b", 4, rng=RNG)
        x = RNG.normal(size=(1, 3, 16, 16))
        weights_before = [p.data.copy() for p in network.backbone.parameters()]
        network.forward(x, task="a")
        network.forward(x, task="b")
        for before, param in zip(weights_before, network.backbone.parameters()):
            assert np.allclose(before, param.data)

    def test_per_task_thresholds_are_independent(self, tiny_backbone):
        network = MimeNetwork(tiny_backbone)
        network.add_task("a", 3, rng=RNG)
        network.add_task("b", 3, rng=RNG)
        task_a = network.registry.get("a")
        task_a.thresholds[0].data += 1.0
        task_b = network.registry.get("b")
        assert not np.allclose(task_a.thresholds[0].data, task_b.thresholds[0].data)

    def test_trainable_parameters_are_thresholds_and_head(self, tiny_mime, tiny_task):
        params = tiny_mime.trainable_parameters(tiny_task.name)
        # 4 masks + head weight + head bias
        assert len(params) == 6
        assert all(p.requires_grad for p in params)

    def test_threshold_parameter_total(self, tiny_mime):
        assert tiny_mime.num_threshold_parameters() == sum(tiny_mime.threshold_counts().values())

    def test_parent_parameter_count_positive(self, tiny_mime):
        assert tiny_mime.parent_parameter_count() > tiny_mime.num_threshold_parameters()

    def test_sparsity_by_layer_after_forward(self, tiny_mime):
        tiny_mime.forward(RNG.normal(size=(4, 3, 16, 16)))
        sparsity = tiny_mime.sparsity_by_layer()
        assert set(sparsity) == set(tiny_mime.masked_layer_names())
        assert all(0.0 <= value <= 1.0 for value in sparsity.values())

    def test_task_state_round_trip(self, tiny_backbone):
        network = MimeNetwork(tiny_backbone)
        network.add_task("a", 3, rng=RNG)
        record = network.registry.get("a")
        record.thresholds[0].data += 0.7
        state = record.state_dict()

        other = MimeNetwork(tiny_backbone)
        other.add_task("a", 3, rng=np.random.default_rng(99))
        other.registry.get("a").load_state_dict(state)
        assert np.allclose(other.registry.get("a").thresholds[0].data, record.thresholds[0].data)
        assert np.allclose(other.registry.get("a").head_weight.data, record.head_weight.data)


class TestThresholdTraining:
    def test_training_improves_accuracy_and_freezes_backbone(self, tiny_backbone, tiny_task):
        network = MimeNetwork(tiny_backbone)
        network.add_task(tiny_task.name, tiny_task.num_classes, rng=RNG)
        backbone_before = {
            name: param.data.copy() for name, param in network.backbone.named_parameters()
        }
        trainer = ThresholdTrainer(network, lr=1e-2, beta=1e-6)
        loader = DataLoader(tiny_task.train, batch_size=16, shuffle=True, rng=np.random.default_rng(0))
        history = trainer.train_task(tiny_task.name, loader, epochs=12)

        assert history.epochs == 12
        assert history.train_accuracy[-1] > history.train_accuracy[0]
        chance = 1.0 / tiny_task.num_classes
        assert history.train_accuracy[-1] > chance + 0.1
        # The parent weights must not have moved.
        for name, param in network.backbone.named_parameters():
            assert np.allclose(backbone_before[name], param.data), name

    def test_thresholds_change_during_training(self, tiny_mime, tiny_task, tiny_loader):
        before = tiny_mime.registry.get(tiny_task.name).thresholds[0].data.copy()
        trainer = ThresholdTrainer(tiny_mime, lr=5e-3)
        trainer.train_task(tiny_task.name, tiny_loader, epochs=2)
        after = tiny_mime.registry.get(tiny_task.name).thresholds[0].data
        assert not np.allclose(before, after)

    def test_evaluate_returns_loss_and_accuracy(self, tiny_mime, tiny_task):
        trainer = ThresholdTrainer(tiny_mime)
        loss, acc = trainer.evaluate(tiny_task.name, DataLoader(tiny_task.test, batch_size=8))
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_train_all_covers_registered_tasks(self, tiny_backbone, tiny_task, tiny_grey_task):
        network = MimeNetwork(tiny_backbone)
        network.add_task(tiny_task.name, tiny_task.num_classes, rng=RNG)
        network.add_task(tiny_grey_task.name, tiny_grey_task.num_classes, rng=RNG)
        trainer = ThresholdTrainer(network, lr=5e-3)
        loaders = {
            tiny_task.name: DataLoader(tiny_task.train, batch_size=16, shuffle=True, rng=RNG),
            tiny_grey_task.name: DataLoader(tiny_grey_task.train, batch_size=16, shuffle=True, rng=RNG),
        }
        histories = trainer.train_all(loaders, epochs=2)
        assert set(histories) == {tiny_task.name, tiny_grey_task.name}

    def test_invalid_epochs_raise(self, tiny_mime, tiny_task, tiny_loader):
        trainer = ThresholdTrainer(tiny_mime)
        with pytest.raises(ValueError):
            trainer.train_task(tiny_task.name, tiny_loader, epochs=0)

    def test_invalid_optimizer_raises(self, tiny_mime):
        with pytest.raises(ValueError):
            ThresholdTrainer(tiny_mime, optimizer="rmsprop")

    def test_regularisation_keeps_thresholds_bounded(self, tiny_backbone, tiny_task, tiny_loader):
        """With a large beta the exp(t) penalty pushes thresholds down."""
        network = MimeNetwork(tiny_backbone, init_threshold=0.5)
        network.add_task(tiny_task.name, tiny_task.num_classes, rng=RNG)
        trainer = ThresholdTrainer(network, lr=5e-3, beta=1e-2)
        trainer.train_task(tiny_task.name, tiny_loader, epochs=3)
        thresholds = network.registry.get(tiny_task.name).thresholds
        max_threshold = max(float(t.data.max()) for t in thresholds)
        assert max_threshold < 5.0
