"""Tests for the experiment harness: paper data, figure generators, reporting.

The figure generators are analytical, so these tests double as the assertions
that the reproduced trends match the paper's headline claims (the benchmark
harness prints the same quantities).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import paper_data
from repro.experiments.config import ExperimentConfig, fast_config, full_config
from repro.experiments.figures import (
    figure4_dram_storage,
    figure5_singular_energy,
    figure6_pipelined_energy,
    figure7_pipelined_throughput,
    figure8_vs_pruned,
    figure9_ablation,
    paper_sparsity_profiles,
    paper_vgg16_shapes,
)
from repro.experiments.report import (
    render_energy_report,
    render_ratio_table,
    render_sparsity_table,
    render_table,
)
from repro.experiments.tables import paper_table2_reference, paper_table3_reference, compare_sparsity_ordering


class TestPaperData:
    def test_tables_cover_three_child_tasks(self):
        assert set(paper_data.MIME_SPARSITY) == {"cifar10", "cifar100", "fmnist"}
        assert set(paper_data.BASELINE_SPARSITY) == {"cifar10", "cifar100", "fmnist"}

    def test_mime_sparsity_exceeds_baseline_everywhere(self):
        """The paper's Tables II/III: thresholds prune more than ReLU, per layer."""
        for task in paper_data.MIME_SPARSITY:
            for layer, value in paper_data.MIME_SPARSITY[task].items():
                assert value > paper_data.BASELINE_SPARSITY[task][layer]

    def test_mime_accuracy_slightly_below_baseline(self):
        for task in paper_data.MIME_ACCURACY:
            assert paper_data.MIME_ACCURACY[task] < paper_data.BASELINE_ACCURACY[task]
            assert paper_data.MIME_ACCURACY[task] > paper_data.BASELINE_ACCURACY[task] - 5.0

    def test_complete_profile_fills_missing_layers(self):
        completed = paper_data.complete_sparsity_profile(paper_data.MIME_SPARSITY["cifar10"])
        assert set(completed) == set(paper_data.VGG16_CONV_LAYERS + ["fc14", "fc15"])
        assert all(0.0 < value < 1.0 for value in completed.values())
        # Listed layers keep their exact values.
        assert completed["conv2"] == paper_data.MIME_SPARSITY["cifar10"]["conv2"]

    def test_complete_profile_rejects_unknown_layers(self):
        with pytest.raises(ValueError):
            paper_data.complete_sparsity_profile({"convX": 0.5})

    def test_reference_table_helpers(self):
        table2 = paper_table2_reference()
        table3 = paper_table3_reference()
        assert compare_sparsity_ordering(table2, table3) == list(table2)


class TestConfig:
    def test_fast_config_is_smaller(self):
        fast, full = fast_config(), full_config()
        assert fast.mime_epochs <= full.mime_epochs
        assert fast.backbone == "vgg_tiny"

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(task_scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(pruned_sparsity=1.0)


class TestSharedInputs:
    def test_paper_shapes_are_full_vgg16(self):
        shapes = paper_vgg16_shapes()
        assert sum(1 for s in shapes if s.kind == "conv") == 13
        assert shapes[-1].out_channels == 10

    def test_paper_profiles_have_all_layers(self):
        mime_profile, baseline_profile = paper_sparsity_profiles()
        for task in ("cifar10", "cifar100", "fmnist"):
            assert mime_profile.output_sparsity(task, "conv7") > 0
            assert baseline_profile.output_sparsity(task, "conv7") > 0
            assert mime_profile.output_sparsity(task, "conv7") > baseline_profile.output_sparsity(task, "conv7")


class TestFigure4:
    def test_storage_saving_matches_paper_band(self):
        result = figure4_dram_storage()
        # Paper: ~3.48x for 3 child tasks.  The reproduction lands around 3x;
        # anything between 2.5x and 4.5x preserves the claim "> n x is saved".
        assert 2.5 < result["saving_ratio_3_tasks"] < 4.5
        assert result["mime_mb"] < result["conventional_mb"]

    def test_curve_monotone_in_tasks(self):
        curve = figure4_dram_storage(max_tasks=5)["curve"]
        assert curve["conventional_mb"] == sorted(curve["conventional_mb"])
        assert all(r2 >= r1 for r1, r2 in zip(curve["saving_ratio"], curve["saving_ratio"][1:]))


class TestFigure5and6:
    def test_singular_mode_bands(self):
        result = figure5_singular_energy()
        ratios1 = [v for k, v in result["mime_vs_case1"].items() if k != "conv1"]
        ratios2 = [v for k, v in result["mime_vs_case2"].items() if k != "conv1"]
        # Paper: 1.8-2.5x vs Case-1 and 1.07-1.30x vs Case-2.
        assert 1.6 < min(ratios1) and max(ratios1) < 3.2
        assert 1.0 < min(ratios2) and max(ratios2) < 1.6

    def test_singular_mime_dram_not_better_than_case2(self):
        result = figure5_singular_energy()
        reports = result["reports"]
        case2 = reports["case2-baseline-zeroskip"]
        mime = reports["mime"]
        higher = sum(
            1
            for layer in result["layer_names"]
            if mime.per_layer[layer].e_dram >= case2.per_layer[layer].e_dram
        )
        assert higher >= len(result["layer_names"]) // 2

    def test_pipelined_mode_bands(self):
        result = figure6_pipelined_energy()
        ratios1 = [v for k, v in result["mime_vs_case1"].items() if k != "conv1"]
        ratios2 = [v for k, v in result["mime_vs_case2"].items() if k != "conv1"]
        # Paper: 2.4-3.1x vs Case-1 and 1.3-2.4x vs Case-2.
        assert 2.2 < min(ratios1) and max(ratios1) < 3.3
        assert 1.15 < min(ratios2) and max(ratios2) < 2.5

    def test_pipelined_beats_singular(self):
        singular = figure5_singular_energy()
        pipelined = figure6_pipelined_energy()
        mean_singular = np.mean(list(singular["mime_vs_case2"].values()))
        mean_pipelined = np.mean(list(pipelined["mime_vs_case2"].values()))
        assert mean_pipelined > mean_singular


class TestFigure7:
    def test_throughput_band(self):
        result = figure7_pipelined_throughput()
        values = [v for k, v in result["mime_vs_case1"].items() if k != "conv1"]
        # Paper: 2.8-3.0x; the reproduction spans ~2.4-2.9x.
        assert min(values) > 2.0
        assert max(values) < 3.2
        assert result["mean_mime_vs_case1"] > 2.3

    def test_case2_throughput_lower_than_mime(self):
        result = figure7_pipelined_throughput()
        for layer in result["layer_names"]:
            if layer == "conv1":
                continue
            assert result["mime_vs_case1"][layer] >= result["case2_vs_case1"][layer]


class TestFigure8:
    def test_parameter_dram_crossover(self):
        """Thresholds dominate the earliest layers, weights the later ones."""
        result = figure8_vs_pruned()
        param_ratio = result["param_dram_pruned_over_mime"]
        assert param_ratio["conv2"] < 1.0  # pruned wins on parameter traffic early
        assert param_ratio["conv8"] > 1.2  # MIME wins once weights dominate
        assert param_ratio["conv13"] > 1.5
        # Ratios grow (weakly) towards the deeper layers.
        assert param_ratio["conv13"] >= param_ratio["conv5"]

    def test_total_energy_late_layer_band(self):
        result = figure8_vs_pruned()
        late = [result["pruned_over_mime"][f"conv{i}"] for i in range(8, 14)]
        # Paper: 1.36-2.0x savings in the latter convolutional layers.
        assert min(late) > 1.2
        assert max(late) < 2.2

    def test_compressed_storage_ablation_flips_result(self):
        dense = figure8_vs_pruned()
        from repro.experiments.figures import paper_sparsity_profiles
        from repro.hardware import SystolicArraySimulator, pipelined_task_schedule, pruned_config, mime_config
        from repro.experiments.figures import paper_vgg16_shapes

        mime_profile, baseline_profile = paper_sparsity_profiles()
        shapes = paper_vgg16_shapes()
        schedule = pipelined_task_schedule(["cifar10", "cifar100", "fmnist"])
        sim = SystolicArraySimulator()
        compressed = sim.run(
            shapes, schedule, baseline_profile,
            pruned_config(compressed_weight_storage=True, weight_zero_skipping=True),
            conv_only=True,
        )
        mime = sim.run(shapes, schedule, mime_profile, mime_config(), conv_only=True)
        # With idealised sparse-weight hardware the pruned models win everywhere —
        # the paper's comparison depends on the array lacking that support.
        assert compressed.total_energy().total < mime.total_energy().total
        assert np.mean(list(dense["pruned_over_mime"].values())) > 1.0


class TestFigure9:
    def test_reduced_pe_penalises_middle_layers_only(self):
        result = figure9_ablation()
        ratio_b = result["case_b_over_a"]
        assert result["case_b_middle_mean"] > 1.02
        assert ratio_b["conv1"] == pytest.approx(1.0, abs=1e-6)
        assert ratio_b["conv13"] == pytest.approx(1.0, abs=1e-6)
        assert max(ratio_b.values()) == max(
            ratio_b[name]
            for name in ("conv4", "conv5", "conv6", "conv7", "conv8", "conv9", "conv10")
        )

    def test_reduced_cache_much_milder_than_reduced_pe(self):
        result = figure9_ablation()
        assert result["case_c_middle_mean"] < result["case_b_middle_mean"]
        assert result["case_c_middle_mean"] < 1.05


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in text and "a" in text and "bb" in text
        assert len(text.splitlines()) == 5

    def test_render_ratio_table(self):
        text = render_ratio_table({"conv2": 2.5}, title="ratios")
        assert "conv2" in text and "2.5" in text

    def test_render_energy_report(self):
        result = figure6_pipelined_energy()
        text = render_energy_report(result["reports"], result["layer_names"][:4])
        assert "mime" in text and "conv2" in text

    def test_render_sparsity_table(self):
        text = render_sparsity_table(paper_table2_reference(), layer_names=["conv2", "conv5"])
        assert "cifar100" in text and "conv5" in text
