"""Property-style tests for the pluggable scheduling policies.

Every policy must be a *permutation* of the chunked micro-batches: no request
dropped, none duplicated, micro-batch sizes respected, per-task submission
order preserved inside batches, and engine outputs realigned to submission
order.  On top of that, each policy has its own ordering contract: singular
groups tasks, pipelined strictly alternates on balanced queues, fifo-deadline
honours deadlines before arrival order, and weighted-fair serves images
proportionally to the configured weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    SCHEDULING_MODES,
    FifoDeadlinePolicy,
    InferenceRequest,
    MultiTaskEngine,
    PipelinedPolicy,
    SingularPolicy,
    WeightedFairPolicy,
    chunk_requests,
    compile_network,
    get_policy,
)
from repro.mime import MimeNetwork

TASK_NAMES = ("alpha", "beta", "gamma")


def make_requests(seed: int, count: int, tasks=TASK_NAMES, deadlines=False):
    """A reproducible random request stream (images are 1-element stubs)."""
    rng = np.random.default_rng(seed)
    requests = []
    for index in range(count):
        task = tasks[int(rng.integers(0, len(tasks)))]
        deadline = float(rng.uniform(0.0, 10.0)) if deadlines and rng.random() < 0.5 else None
        requests.append(
            InferenceRequest(
                index,
                task,
                np.zeros(1),
                arrival_time=float(index),
                deadline=deadline,
            )
        )
    return requests


# ----------------------------------------------------------- shared contract --
@pytest.mark.parametrize("mode", SCHEDULING_MODES)
@pytest.mark.parametrize("seed,count,micro_batch", [(0, 1, 4), (1, 17, 4), (2, 40, 8), (3, 23, 1)])
def test_policy_is_a_lossless_permutation(mode, seed, count, micro_batch):
    requests = make_requests(seed, count, deadlines=True)
    policy = get_policy(mode)
    ordered = policy.order(chunk_requests(requests, micro_batch))

    seen = [request.index for batch in ordered for request in batch.requests]
    assert sorted(seen) == list(range(count)), f"{mode} dropped or duplicated a request"
    for batch in ordered:
        assert 1 <= len(batch) <= micro_batch
        assert all(request.task == batch.task for request in batch.requests)
        indices = [request.index for request in batch.requests]
        assert indices == sorted(indices), "per-task submission order broken inside a batch"


@pytest.mark.parametrize("mode", SCHEDULING_MODES)
def test_order_is_deterministic(mode):
    requests = make_requests(7, 30, deadlines=True)
    policy = get_policy(mode)
    batches = chunk_requests(requests, 4)
    first = [(b.task, b.seq) for b in policy.order(list(batches))]
    second = [(b.task, b.seq) for b in policy.order(list(batches))]
    assert first == second


@pytest.mark.parametrize("mode", SCHEDULING_MODES)
def test_every_policy_returns_outputs_in_submission_order(network_fixture, mode):
    network, plan = network_fixture
    engine = MultiTaskEngine(plan, micro_batch=3)
    submissions = []
    order = np.random.default_rng(8)
    rng = np.random.default_rng(9)
    for _ in range(14):
        name = TASK_NAMES[int(order.integers(0, len(TASK_NAMES)))]
        image = rng.normal(size=(3, 16, 16))
        engine.submit(name, image)
        submissions.append((name, image))
    outputs, stats = engine.run_pending(mode=mode)
    assert stats.mode == mode
    assert stats.num_images == len(submissions)
    for output, (name, image) in zip(outputs, submissions):
        np.testing.assert_allclose(output, plan.run(image[None], name)[0], atol=1e-12)


@pytest.fixture(scope="module")
def network_fixture():
    from repro.models import vgg_tiny

    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3,
                        rng=np.random.default_rng(0))
    network = MimeNetwork(backbone)
    network.eval()
    jitter = np.random.default_rng(42)
    for name in TASK_NAMES:
        task = network.add_task(name, 5, rng=jitter)
        for param in task.thresholds:
            param.data += jitter.uniform(0.0, 0.15, size=param.data.shape)
    plan = compile_network(network, dtype=np.float64)
    return network, plan


# ------------------------------------------------------------- per-policy ----
def test_singular_groups_tasks_contiguously():
    requests = make_requests(11, 36)
    ordered = SingularPolicy().order(chunk_requests(requests, 4))
    tasks_seen = [batch.task for batch in ordered]
    # Each task appears in exactly one contiguous run.
    runs = [task for i, task in enumerate(tasks_seen) if i == 0 or tasks_seen[i - 1] != task]
    assert len(runs) == len(set(tasks_seen))


def test_pipelined_strictly_alternates_on_balanced_queues():
    # 3 tasks x 8 images, micro-batch 4 -> 2 rounds of 3 batches.
    requests = []
    index = 0
    for round_index in range(8):
        for task in TASK_NAMES:
            requests.append(InferenceRequest(index, task, np.zeros(1), float(index)))
            index += 1
    ordered = PipelinedPolicy().order(chunk_requests(requests, 4))
    tasks_seen = [batch.task for batch in ordered]
    assert len(tasks_seen) == 6
    for previous, current in zip(tasks_seen, tasks_seen[1:]):
        assert previous != current, f"pipelined repeated task {current} back-to-back"
    # Both rounds cover every task once.
    assert set(tasks_seen[:3]) == set(TASK_NAMES)
    assert set(tasks_seen[3:]) == set(TASK_NAMES)


def test_fifo_deadline_executes_urgent_batches_first():
    # Task 'late' arrives first without deadlines; 'urgent' arrives later with
    # a tight deadline and must jump the queue.
    requests = [
        InferenceRequest(0, "late", np.zeros(1), arrival_time=0.0),
        InferenceRequest(1, "late", np.zeros(1), arrival_time=0.1),
        InferenceRequest(2, "urgent", np.zeros(1), arrival_time=0.2, deadline=0.5),
        InferenceRequest(3, "relaxed", np.zeros(1), arrival_time=0.3, deadline=9.0),
    ]
    ordered = FifoDeadlinePolicy().order(chunk_requests(requests, 2))
    assert [batch.task for batch in ordered] == ["urgent", "relaxed", "late"]


def test_fifo_deadline_degrades_to_fifo_without_deadlines():
    requests = make_requests(12, 24, deadlines=False)
    ordered = FifoDeadlinePolicy().order(chunk_requests(requests, 4))
    arrivals = [batch.arrival_time for batch in ordered]
    assert arrivals == sorted(arrivals)


def test_weighted_fair_serves_images_proportionally():
    # Heavy gets weight 3, light weight 1: in any schedule prefix the served
    # image ratio should track 3:1 (within one batch of slack).
    requests = []
    index = 0
    for _ in range(12):
        for task in ("heavy", "light"):
            requests.append(InferenceRequest(index, task, np.zeros(1), float(index)))
            index += 1
    policy = WeightedFairPolicy(weights={"heavy": 3.0, "light": 1.0})
    ordered = policy.order(chunk_requests(requests, 4))
    served = {"heavy": 0, "light": 0}
    for batch in ordered:
        served[batch.task] += len(batch)
        if served["light"] > 0 and served["heavy"] < 12:
            # Light should never be ahead of its 1/4 share by more than a batch.
            assert served["light"] <= served["heavy"] / 3.0 + 4
    assert served == {"heavy": 12, "light": 12}

    with pytest.raises(ValueError):
        WeightedFairPolicy(weights={"x": 0.0})


def test_pipelined_pick_ranks_by_arrival_not_cross_task_seq():
    # Per-task seq counters are not comparable across tasks online: a task
    # active since boot has a huge counter, a newcomer starts at 0.  The
    # old task's batch arrived first and must win over the newcomer.
    old = chunk_requests(
        [InferenceRequest(0, "old", np.zeros(1), arrival_time=1.0)], 4
    )[0]
    old.seq = 500  # long-running task: high lifetime sequence number
    new = chunk_requests(
        [InferenceRequest(1, "new", np.zeros(1), arrival_time=2.0)], 4
    )[0]
    picked = PipelinedPolicy().pick([old, new], last_task="other")
    assert picked.task == "old", "long-active task starved by cross-task seq compare"
    # Alternation still preferred: coming from 'old', pick the other task.
    assert PipelinedPolicy().pick([old, new], last_task="old").task == "new"


def test_weighted_fair_pick_does_not_starve_established_tasks():
    # Serve task 'old' alone for a long stretch, then have 'new' join.  With
    # naive cumulative accounting 'new' would win every pick until its
    # lifetime share caught up, starving 'old'; start-time fair queuing clamps
    # the newcomer's virtual start to the current virtual clock instead.
    policy = WeightedFairPolicy()
    for seq in range(50):
        batch = chunk_requests(
            [InferenceRequest(seq, "old", np.zeros(1), float(seq))], 4
        )[0]
        assert policy.pick([batch]) is batch

    picks = []
    for step in range(6):
        base = 100 + 2 * step
        old_batch = chunk_requests(
            [InferenceRequest(base, "old", np.zeros(1), float(base))], 4
        )[0]
        new_batch = chunk_requests(
            [InferenceRequest(base + 1, "new", np.zeros(1), float(base + 1))], 4
        )[0]
        picks.append(policy.pick([old_batch, new_batch]).task)
    assert "old" in picks[:2], f"established task starved: {picks}"
    assert picks.count("old") == 3 and picks.count("new") == 3, picks


def test_weighted_fair_equal_weights_interleaves():
    requests = make_requests(13, 30)
    ordered = WeightedFairPolicy().order(chunk_requests(requests, 4))
    tasks_seen = [batch.task for batch in ordered]
    # With equal weights no task gets two full batches in a row while another
    # still has pending work behind it.
    for i in range(len(tasks_seen) - 2):
        window = tasks_seen[i : i + 3]
        if len(set(tasks_seen[i:])) >= 2:
            assert len(set(window)) >= 2


# ---------------------------------------------------------------- plumbing ----
def test_get_policy_resolves_names_and_instances():
    instance = WeightedFairPolicy(weights={"a": 2.0})
    assert get_policy(instance) is instance
    assert get_policy("pipelined").name == "pipelined"
    with pytest.raises(ValueError):
        get_policy("bogus")


def test_chunk_requests_validates_and_orders():
    with pytest.raises(ValueError):
        chunk_requests([], 0)
    requests = make_requests(14, 10, tasks=("only",))
    batches = chunk_requests(requests, 4)
    assert [len(b) for b in batches] == [4, 4, 2]
    assert [b.seq for b in batches] == [0, 1, 2]


def test_pick_requires_a_candidate():
    for mode in SCHEDULING_MODES:
        with pytest.raises(ValueError):
            get_policy(mode).pick([])
