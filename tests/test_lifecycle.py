"""Model lifecycle: hot-swap control plane + online recalibration loop.

Covers the zero-downtime deployment contract end to end: a thread runtime
atomically swapping plan sets between micro-batches; a live **process-sharded
fleet** swapping to a re-specialized artifact under load with zero failed
requests and post-swap logits bit-identical to a cold start from the same
artifact (the acceptance scenario); add/remove-task riding the same path; and
the recalibration loop detecting survival drift on live traffic,
re-specializing, hot-swapping, and publishing to a model store.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.artifacts import ModelArtifact, ModelStore
from repro.engine import (
    CalibrationProfile,
    SparsityRecorder,
    compile_network,
    specialize_tasks,
)
from repro.mime import MimeNetwork, add_structured_sparsity_task
from repro.models import vgg_tiny
from repro.serving import (
    RecalibrationLoop,
    RuntimeClosedError,
    ServingRuntime,
    ShardedRuntime,
)

TASKS = ("alpha", "beta", "gamma")
STRUCTURAL_DEAD = 1e8
MICRO_BATCH = 4


def build_network(seed: int, jitter: float = 0.2, tasks=TASKS):
    rng = np.random.default_rng(seed)
    backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
    network = MimeNetwork(backbone)
    network.eval()
    for name in tasks:
        add_structured_sparsity_task(
            network, name, num_classes=5, rng=rng, dead_fraction=0.3,
            threshold_jitter=jitter,
        )
    return network


def structural_profile(plan, network: MimeNetwork) -> CalibrationProfile:
    """Threshold-derived survival: the dead set is exact, never sampled."""
    survival: Dict[str, Dict[str, np.ndarray]] = {}
    for task in network.registry:
        per_layer: Dict[str, np.ndarray] = {}
        for spec, param in zip(plan.mask_specs, task.thresholds):
            data = param.data
            if data.ndim == 3:
                dead = (data >= STRUCTURAL_DEAD).all(axis=(1, 2))
            else:
                dead = data >= STRUCTURAL_DEAD
            per_layer[spec.layer_name] = (~dead).astype(float)
        survival[task.name] = per_layer
    return CalibrationProfile(
        survival=survival, num_images={task.name: 1 for task in network.registry}
    )


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    """A live dense plan plus a store-published re-specialized artifact."""
    network = build_network(seed=42)
    plan = compile_network(network, dtype=np.float32)
    profile = structural_profile(plan, network)
    specialized = specialize_tasks(plan, profile=profile, compact_reduction=True)
    artifact = ModelArtifact.from_plans(
        "respecialized", plan, specialized, calibration=profile
    )
    store = ModelStore(tmp_path_factory.mktemp("store"))
    version = store.publish(artifact)
    return network, plan, store, version


def deterministic_stream(plan, per_task: int, seed: int, tasks=TASKS):
    """(task, image) pairs whose batcher grouping is fully deterministic.

    Per-task counts are exact multiples of MICRO_BATCH, so every batch closes
    on its size trigger with a composition that depends only on submission
    order — the precondition for bit-identical comparisons against explicit
    ``plan.run`` groups.
    """
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(per_task):
        for task in tasks:
            stream.append((task, rng.normal(size=plan.input_shape)))
    return stream


def reference_groups(stream, micro_batch=MICRO_BATCH):
    """The exact micro-batch compositions the FIFO size-trigger produces."""
    per_task: Dict[str, list] = {}
    for task, image in stream:
        per_task.setdefault(task, []).append(image)
    groups = []
    for task, images in per_task.items():
        for start in range(0, len(images), micro_batch):
            groups.append((task, np.stack(images[start : start + micro_batch])))
    return groups


def assert_futures_match(futures, stream, expected_plan_for):
    """Every future resolved without error and bit-matches its plan's output."""
    outputs: Dict[str, list] = {}
    for future, (task, _) in zip(futures, stream):
        outputs.setdefault(task, []).append(future.result(timeout=60.0))
    for task, batch in reference_groups(stream):
        reference = expected_plan_for(task).run(batch, task)
        rows = outputs[task][: len(batch)]
        del outputs[task][: len(batch)]
        np.testing.assert_array_equal(np.stack(rows), reference)


# -------------------------------------------------------- thread hot-swap ----
class TestThreadHotSwap:
    def test_swap_under_load_routes_every_request_to_the_right_plans(self, deployment):
        network, plan, store, _ = deployment
        # A different model with the same geometry and task names: the swap
        # visibly changes the logits, so routing mistakes cannot hide.
        other = build_network(seed=1234, jitter=0.35)
        other_plan = compile_network(other, dtype=np.float32)
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, max_wait=5.0, workers=2)
        before = deterministic_stream(plan, per_task=8, seed=3)
        after = deterministic_stream(plan, per_task=8, seed=4)
        futures_before = [runtime.submit(task, image) for task, image in before]
        runtime.start()
        runtime.swap(other_plan, timeout=60.0)
        futures_after = [runtime.submit(task, image) for task, image in after]
        report = runtime.stop(drain=True)
        assert report.errors == 0 and report.completed == len(before) + len(after)
        assert_futures_match(futures_before, before, lambda task: plan)
        assert_futures_match(futures_after, after, lambda task: other_plan)

    def test_swap_to_artifact_installs_specialized_plans(self, deployment):
        network, plan, store, _ = deployment
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, max_wait=0.002, workers=2)
        with runtime:
            assert runtime.specialized == {}
            artifact = store.load()
            runtime.swap(artifact, timeout=60.0)
            assert sorted(runtime.specialized) == sorted(TASKS)
            stream = deterministic_stream(plan, per_task=4, seed=5)
            futures = [runtime.submit(task, image) for task, image in stream]
            for future in futures:
                future.result(timeout=60.0)

    def test_swap_prunes_stale_workspace_buffers(self, deployment):
        _, plan, store, _ = deployment
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, max_wait=0.002, workers=1)
        with runtime:
            warm = [runtime.submit(task, np.zeros(plan.input_shape)) for task in TASKS]
            for future in warm:
                future.result(timeout=60.0)
            assert any(len(pool) for pool in runtime._pools)
            new_plans = runtime.swap(store.load(), timeout=60.0)
            live = new_plans.kernel_uids()
            for pool in runtime._pools:
                assert all(key[0] in live for key in pool._buffers)

    def test_swap_validation_and_closed_runtime(self, deployment):
        _, plan, _, _ = deployment
        small = build_network(seed=7)
        wrong_dtype = compile_network(small, dtype=np.float64)
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, workers=1)
        with pytest.raises(ValueError, match="dtype"):
            runtime.swap(wrong_dtype)
        with pytest.raises(TypeError, match="cannot swap"):
            runtime.swap("not a plan")
        runtime.stop()
        with pytest.raises(RuntimeClosedError):
            runtime.swap(plan)

    def test_swap_before_start_takes_effect_at_launch(self, deployment):
        _, plan, store, _ = deployment
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, max_wait=0.002, workers=1)
        runtime.swap(store.load())
        assert sorted(runtime.specialized) == sorted(TASKS)
        with runtime:
            future = runtime.submit(TASKS[0], np.zeros(plan.input_shape))
            future.result(timeout=60.0)

    def test_add_and_remove_task_ride_the_swap_path(self, deployment):
        network, plan, _, _ = deployment
        extra = build_network(seed=99, tasks=("delta",))
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, max_wait=0.002, workers=2)
        with runtime:
            with pytest.raises(KeyError):
                runtime.submit("delta", np.zeros(plan.input_shape))
            runtime.add_task(extra.registry.get("delta"), timeout=60.0)
            served = [runtime.submit("delta", np.zeros(plan.input_shape)) for _ in range(4)]
            # In-flight requests for a removed task drain before the cutover.
            pending = [runtime.submit("alpha", np.zeros(plan.input_shape)) for _ in range(4)]
            runtime.remove_task("alpha", timeout=60.0)
            for future in served + pending:
                future.result(timeout=60.0)
            with pytest.raises(KeyError):
                runtime.submit("alpha", np.zeros(plan.input_shape))
            with pytest.raises(KeyError, match="already registered"):
                runtime.add_task(extra.registry.get("delta"))
        # The new task really executes its own head: compare against a plan
        # extended the same way.
        reference = compile_network(network, dtype=np.float32)
        reference.add_task(extra.registry.get("delta"))
        np.testing.assert_array_equal(
            np.stack([future.result(timeout=0) for future in served]),
            reference.run(np.zeros((4,) + tuple(plan.input_shape)), "delta"),
        )

    def test_nonblocking_submit_fails_fast_while_intake_is_paused(self, deployment):
        from repro.serving import QueueFullError

        _, plan, _, _ = deployment
        runtime = ServingRuntime(plan, micro_batch=MICRO_BATCH, workers=1)
        runtime._pause_intake()
        try:
            with pytest.raises(QueueFullError, match="paused for a plan swap"):
                runtime.submit("alpha", np.zeros(plan.input_shape), block=False)
            with pytest.raises(QueueFullError, match="after waiting"):
                runtime.submit("alpha", np.zeros(plan.input_shape), timeout=0.01)
        finally:
            runtime._resume_intake()
        with runtime:
            runtime.submit("alpha", np.zeros(plan.input_shape)).result(timeout=60.0)

    def test_remove_last_task_rejected(self, deployment):
        _, plan, _, _ = deployment
        runtime = ServingRuntime(plan, workers=1)
        runtime.remove_task("alpha")
        runtime.remove_task("beta")
        with pytest.raises(ValueError, match="only task"):
            runtime.remove_task("gamma")


# ------------------------------------------------------- sharded hot-swap ----
class TestShardedHotSwap:
    def test_live_fleet_swaps_to_respecialized_artifact_under_load(self, deployment):
        """The acceptance scenario: a running ShardedRuntime hot-swaps to a
        re-specialized artifact while requests are in flight; zero requests
        fail, pre-swap traffic matches the dense plan bit for bit, post-swap
        traffic matches a cold start from the same artifact bit for bit."""
        network, plan, store, version = deployment
        artifact = store.load(version)
        cold_plan, cold_specialized = artifact.build_plans()  # the cold-start reference

        runtime = ShardedRuntime(
            plan, policy="fifo-deadline", micro_batch=MICRO_BATCH, max_wait=5.0, workers=2
        )
        before = deterministic_stream(plan, per_task=8, seed=31)
        after = deterministic_stream(plan, per_task=8, seed=32)
        futures_before = [runtime.submit(task, image) for task, image in before]
        runtime.start()
        # Swap while the fleet is mid-drain: intake pauses, every admitted
        # batch completes on the old dense plans, workers rebuild + ack.
        runtime.swap(artifact, timeout=120.0)
        assert sorted(runtime.specialized) == sorted(TASKS)
        futures_after = [runtime.submit(task, image) for task, image in after]
        report = runtime.stop(drain=True)

        assert report.errors == 0 and report.cancelled == 0
        assert report.completed == len(before) + len(after)
        assert_futures_match(futures_before, before, lambda task: plan)
        assert_futures_match(futures_after, after, lambda task: cold_specialized[task])
        # Sanity: the compacted plans really are a different computation than
        # the dense plan (ULP-level differences), so the bit-equality above
        # proves the swap actually cut over.
        probe_task, probe_batch = reference_groups(after)[0]
        assert not np.array_equal(
            plan.run(probe_batch, probe_task),
            cold_specialized[probe_task].run(probe_batch, probe_task),
        )

    def test_sharded_add_and_remove_task(self, deployment):
        _, plan, _, _ = deployment
        extra = build_network(seed=100, tasks=("delta",))
        runtime = ShardedRuntime(plan, micro_batch=MICRO_BATCH, max_wait=0.002, workers=1)
        with runtime:
            runtime.add_task(extra.registry.get("delta"), timeout=120.0)
            futures = [runtime.submit("delta", np.zeros(plan.input_shape)) for _ in range(4)]
            runtime.remove_task("beta", timeout=120.0)
            with pytest.raises(KeyError):
                runtime.submit("beta", np.zeros(plan.input_shape))
            for future in futures:
                future.result(timeout=60.0)

    def test_swap_rejects_heads_wider_than_the_output_ring(self, deployment):
        _, plan, _, _ = deployment
        rng = np.random.default_rng(17)
        backbone = vgg_tiny(num_classes=6, input_size=16, in_channels=3, rng=rng)
        wide = MimeNetwork(backbone)
        wide.eval()
        for name in TASKS:
            # 64 classes > the 5-class geometry the rings were sized for.
            add_structured_sparsity_task(wide, name, num_classes=64, rng=rng)
        wide_plan = compile_network(wide, dtype=np.float32)
        runtime = ShardedRuntime(plan, micro_batch=MICRO_BATCH, max_wait=0.002, workers=1)
        with runtime:
            with pytest.raises(ValueError, match="output-ring"):
                runtime.swap(wide_plan, timeout=120.0)
            # Old plans still serve after the rejected swap.
            future = runtime.submit(TASKS[0], np.zeros(plan.input_shape))
            future.result(timeout=60.0)


# -------------------------------------------------------- recalibration ------
def serve_batch(runtime, tasks, images):
    futures = [runtime.submit(task, image) for task in tasks for image in images]
    for future in futures:
        future.result(timeout=60.0)


class TestRecalibrationLoop:
    def make_runtime(self, plan, specialized=None, workers=2):
        return ServingRuntime(
            plan,
            micro_batch=8,
            max_wait=0.002,
            workers=workers,
            recorder=SparsityRecorder(channel_tracking=True),
            specialized=specialized,
        )

    def test_requires_channel_tracking(self, deployment):
        _, plan, _, _ = deployment
        runtime = ServingRuntime(plan, workers=1)
        with pytest.raises(ValueError, match="channel_tracking"):
            RecalibrationLoop(runtime, CalibrationProfile())

    def test_no_drift_on_the_calibration_distribution(self, deployment):
        from repro.engine import calibrate_plan

        _, plan, _, _ = deployment
        images = {
            task: np.random.default_rng(50 + i).normal(size=(16,) + tuple(plan.input_shape))
            for i, task in enumerate(TASKS)
        }
        baseline = calibrate_plan(plan, images=images)
        runtime = self.make_runtime(plan)
        with runtime:
            # Serve exactly the calibration images: per-channel survival is a
            # sum of per-image counts, so the live rates match the baseline
            # exactly regardless of batch composition.
            for task in TASKS:
                serve_batch(runtime, [task], list(images[task]))
            loop = RecalibrationLoop(
                runtime, baseline, drift_threshold=0.01, min_images=16
            )
            event = loop.check_once()
        assert not event.triggered and not event.swapped
        assert event.drift is not None
        assert event.drift.max_rate_delta == 0.0
        assert event.drift.flipped_channels == 0

    def test_insufficient_traffic_never_triggers(self, deployment):
        _, plan, _, _ = deployment
        runtime = self.make_runtime(plan)
        with runtime:
            loop = RecalibrationLoop(runtime, CalibrationProfile(), min_images=64)
            event = loop.check_once()
        assert not event.triggered and event.drift is None
        assert "insufficient traffic" in event.reason

    def test_drift_respecializes_swaps_and_publishes(self, deployment, tmp_path):
        from repro.engine import calibrate_plan

        _, plan, _, _ = deployment
        baseline = calibrate_plan(plan, batch_size=32, seed=60)
        store = ModelStore(tmp_path / "store")
        runtime = self.make_runtime(plan)
        rng = np.random.default_rng(61)
        with runtime:
            loop = RecalibrationLoop(
                runtime,
                baseline,
                drift_threshold=0.2,
                min_images=32,
                store=store,
                artifact_name="online",
            )
            # Drifted traffic: near-zero inputs silence most channels.
            quiet = [0.01 * rng.normal(size=plan.input_shape) for _ in range(32)]
            for task in TASKS:
                serve_batch(runtime, [task], quiet)
            event = loop.check_once()
            assert event.triggered and event.swapped
            assert event.drift.max_rate_delta >= 0.2
            assert event.published_version == "v001"
            # The loop rolled its baseline and installed live-profile plans.
            assert loop.baseline is not baseline
            assert sorted(runtime.specialized) == sorted(TASKS)
            assert loop.swaps() == 1
            # The swapped-in plans keep serving, including on the drifted mix.
            serve_batch(runtime, list(TASKS), quiet[:8])
        published = store.load("v001")
        assert published.metadata["source"] == "online-recalibration"
        assert sorted(published.specialized_specs) == sorted(TASKS)

    def test_live_profile_is_reported_in_dense_coordinates(self, deployment):
        """Survival measured on compacted plans maps back onto dense channels,
        so profiles stay comparable across swaps."""
        network, plan, _, _ = deployment
        profile = structural_profile(plan, network)
        specialized = specialize_tasks(plan, profile=profile, compact_reduction=True)
        runtime = self.make_runtime(plan, specialized=specialized)
        rng = np.random.default_rng(70)
        with runtime:
            serve_batch(
                runtime, list(TASKS), [rng.normal(size=plan.input_shape) for _ in range(8)]
            )
            loop = RecalibrationLoop(runtime, profile, min_images=1)
            live = loop.live_profile()
        for task in TASKS:
            for layer in profile.layers(task):
                assert live.rates(task, layer).shape == profile.rates(task, layer).shape
                # Channels the specialization eliminated read as 0.0 survival.
                eliminated = ~specialized[task].live_channels.get(
                    layer, np.ones(profile.rates(task, layer).shape[0], dtype=bool)
                )
                assert np.all(live.rates(task, layer)[eliminated] == 0.0)

    def test_drift_ignores_tasks_below_the_min_images_gate(self, deployment):
        """A barely-served task's noisy survival must not trigger a swap."""
        from repro.engine import calibrate_plan

        _, plan, _, _ = deployment
        images = {
            task: np.random.default_rng(90 + i).normal(size=(16,) + tuple(plan.input_shape))
            for i, task in enumerate(TASKS)
        }
        baseline = calibrate_plan(plan, images=images)
        runtime = self.make_runtime(plan)
        with runtime:
            # alpha serves its full calibration batch (zero drift, ready);
            # beta serves a handful of wildly drifted images (not ready).
            serve_batch(runtime, ["alpha"], list(images["alpha"]))
            serve_batch(runtime, ["beta"], [np.zeros(plan.input_shape)] * 4)
            loop = RecalibrationLoop(runtime, baseline, drift_threshold=0.01, min_images=16)
            event = loop.check_once()
        assert not event.triggered and not event.swapped
        assert list(event.drift.per_task) == ["alpha"]  # beta never compared
        assert event.drift.max_rate_delta == 0.0

    def test_baseline_rolls_only_for_respecialized_tasks(self, deployment):
        """A task that kept its old specialization keeps its old baseline —
        its drift must still be judged against the profile its plans came
        from, not against whatever the window happened to measure."""
        from repro.engine import calibrate_plan

        _, plan, _, _ = deployment
        baseline = calibrate_plan(plan, batch_size=32, seed=97)
        original_beta = {
            layer: np.array(baseline.rates("beta", layer))
            for layer in baseline.layers("beta")
        }
        runtime = self.make_runtime(plan)
        rng = np.random.default_rng(98)
        with runtime:
            loop = RecalibrationLoop(runtime, baseline, drift_threshold=0.2, min_images=16)
            # Only alpha clears the gate with drifted traffic; beta serves a
            # trickle, gamma nothing.
            serve_batch(runtime, ["alpha"], [0.01 * rng.normal(size=plan.input_shape)
                                             for _ in range(16)])
            serve_batch(runtime, ["beta"], [np.zeros(plan.input_shape)] * 4)
            event = loop.check_once()
        assert event.swapped
        assert sorted(runtime.specialized) == ["alpha"]  # only alpha re-specialized
        for layer, rates in original_beta.items():
            np.testing.assert_array_equal(loop.baseline.rates("beta", layer), rates)
        assert sorted(loop.baseline.tasks()) == sorted(TASKS)

    def test_swap_event_recorded_even_when_store_publish_fails(self, deployment, tmp_path):
        from repro.engine import calibrate_plan

        _, plan, _, _ = deployment

        class ExplodingStore:
            def publish(self, artifact, version=None, set_latest=True):
                raise OSError("disk full")

        baseline = calibrate_plan(plan, batch_size=32, seed=95)
        runtime = self.make_runtime(plan)
        with runtime:
            loop = RecalibrationLoop(
                runtime, baseline, drift_threshold=0.2, min_images=16,
                store=ExplodingStore(),
            )
            drifted = [0.01 * np.random.default_rng(96).normal(size=plan.input_shape)
                       for _ in range(16)]
            for task in TASKS:
                serve_batch(runtime, [task], drifted)
            event = loop.check_once()
        # The swap happened and the record says so; the publish failure is
        # surfaced on the event instead of erasing it.
        assert event.triggered and event.swapped
        assert event.published_version is None
        assert "publish failed" in event.reason
        assert loop.swaps() == 1
        assert sorted(runtime.specialized) == sorted(TASKS)

    def test_channel_tracking_survives_width_changes_across_swaps(self, deployment):
        """A swap can change a layer's compacted width mid-window; accumulation
        restarts for that layer instead of raising a broadcast error."""
        recorder = SparsityRecorder(channel_tracking=True)
        recorder.record_channels("alpha", "conv1", np.array([1, 2, 3]), 4)
        recorder.record_channels("alpha", "conv1", np.array([5, 5]), 10)  # new geometry
        rates = recorder.survival_profile().rates("alpha", "conv1")
        np.testing.assert_allclose(rates, [0.5, 0.5])
        # Same rule when merging worker snapshots taken across a swap.
        other = SparsityRecorder(channel_tracking=True)
        other.record_channels("alpha", "conv1", np.array([1, 1, 1]), 2)
        recorder.merge_snapshot(other.snapshot())
        np.testing.assert_allclose(
            recorder.survival_profile().rates("alpha", "conv1"), [0.5, 0.5, 0.5]
        )

    def test_serving_survives_a_respecialization_that_changes_widths(self, deployment):
        """End to end: swap between specializations with different live sets
        while channel tracking is on — no failed requests, fresh window."""
        network, plan, _, _ = deployment
        profile = structural_profile(plan, network)
        narrow = dict(profile.survival)
        # Kill two extra (structurally live) channels of the first masked
        # layer for every task: a different compacted width after the swap.
        first_layer = plan.masked_layer_names()[0]
        for task in TASKS:
            rates = np.array(profile.survival[task][first_layer])
            rates[np.flatnonzero(rates > 0)[:2]] = 0.0
            narrow[task] = dict(narrow[task])
            narrow[task][first_layer] = rates
        narrow_profile = CalibrationProfile(
            survival=narrow, num_images=dict(profile.num_images)
        )
        wide = specialize_tasks(plan, profile=profile, compact_reduction=True)
        narrow_specialized = specialize_tasks(
            plan, profile=narrow_profile, compact_reduction=True
        )
        runtime = self.make_runtime(plan, specialized=wide)
        rng = np.random.default_rng(81)
        with runtime:
            serve_batch(
                runtime, list(TASKS), [rng.normal(size=plan.input_shape) for _ in range(8)]
            )
            runtime.swap(plan, specialized=narrow_specialized, timeout=60.0)
            serve_batch(
                runtime, list(TASKS), [rng.normal(size=plan.input_shape) for _ in range(8)]
            )
            report = runtime.report()
        assert report.errors == 0
        assert report.completed == 48

    def test_recalibration_reuses_cached_timings_for_unchanged_geometry(self):
        """Re-deploying a chooser-tuned model must not pay for re-timing.

        The deployment specializes with ``choose_kernels=True``, warming the
        process timing cache; a recalibration swap from the *same* structural
        profile re-compacts to identical layer geometries, so the swap-time
        chooser re-run must resolve every variant from cached measurements —
        zero new timings — and land on the same choices.
        """
        from repro.engine.kernels import TIMING_CACHE

        network = build_network(seed=46)
        plan = compile_network(network, dtype=np.float32)
        profile = structural_profile(plan, network)
        specialized = specialize_tasks(
            plan, profile=profile, compact_reduction=True, choose_kernels=True,
        )
        for spec in specialized.values():
            assert spec.kernel_choices, "deployment must be chooser-tuned"
        runtime = self.make_runtime(plan, specialized=specialized, workers=1)
        with runtime:
            loop = RecalibrationLoop(runtime, profile, min_images=1)
            misses_before = TIMING_CACHE.misses
            hits_before = TIMING_CACHE.hits
            # Drive the re-specialize+swap path directly with the deployment's
            # own profile: geometry is unchanged by construction, which is
            # exactly the common re-deploy case the cache exists for.
            loop._respecialize_and_swap(profile, list(TASKS))
            assert TIMING_CACHE.misses == misses_before, (
                "unchanged geometries must re-use cached timings, not re-time"
            )
            assert TIMING_CACHE.hits > hits_before
            for task in TASKS:
                swapped = runtime.specialized[task]
                assert swapped is not specialized[task], "swap must install fresh plans"
                assert swapped.kernel_choices == specialized[task].kernel_choices

    def test_background_loop_runs_and_stops(self, deployment):
        import time

        _, plan, _, _ = deployment
        runtime = self.make_runtime(plan, workers=1)
        with runtime:
            loop = RecalibrationLoop(runtime, CalibrationProfile(), interval=0.05)
            with loop:
                deadline = time.monotonic() + 5.0
                while not loop.events and time.monotonic() < deadline:
                    time.sleep(0.01)
            assert loop.events  # at least one check ran on the daemon thread
            assert loop._thread is None
        assert "insufficient traffic" in loop.events[0].reason
