"""Tests for the hardware spec, cost model, schedules and energy bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    AccessCounts,
    EnergyBreakdown,
    LayerCostModel,
    LayerSparsityProfile,
    ParameterSharing,
    case1_config,
    case2_config,
    default_spec,
    mime_config,
    parameter_load_events,
    pipelined_task_schedule,
    pruned_config,
    reduced_cache_spec,
    reduced_pe_spec,
    singular_task_schedule,
    threshold_load_events,
)
from repro.hardware.energy import LayerEnergyReport, energy_saving_ratio
from repro.hardware.spec import SystolicArraySpec
from repro.models import vgg16_layer_shapes


SHAPES = vgg16_layer_shapes(input_size=32)
BY_NAME = {s.name: s for s in SHAPES}


class TestSpec:
    def test_table_iv_defaults(self):
        spec = default_spec()
        assert spec.pe_array_size == 1024
        assert spec.weight_cache_bytes == 156 * 1024
        assert spec.spad_bytes == 512
        assert (spec.e_dram, spec.e_cache, spec.e_reg, spec.e_mac) == (200.0, 6.0, 2.0, 1.0)
        assert spec.precision_bits == 16

    def test_reduced_specs(self):
        assert reduced_pe_spec().pe_array_size == 256
        assert reduced_cache_spec().weight_cache_bytes == 128 * 1024

    def test_word_capacity(self):
        assert default_spec().weight_cache_words() == 156 * 1024 // 2

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            SystolicArraySpec(pe_array_size=0)
        with pytest.raises(ValueError):
            SystolicArraySpec(spad_reuse=0.5)


class TestEnergyBreakdown:
    def test_total_and_addition(self):
        a = EnergyBreakdown(1, 2, 3, 4)
        b = EnergyBreakdown(10, 20, 30, 40)
        combined = a + b
        assert combined.total == 110
        assert combined.e_dram == 11

    def test_scaled(self):
        assert EnergyBreakdown(1, 1, 1, 1).scaled(2.0).total == 8

    def test_report_accumulates_layers(self):
        report = LayerEnergyReport("test")
        report.add_layer("conv1", EnergyBreakdown(1, 0, 0, 0))
        report.add_layer("conv1", EnergyBreakdown(2, 0, 0, 0))
        assert report.per_layer["conv1"].e_dram == 3
        assert report.total().e_dram == 3

    def test_saving_ratio(self):
        reference = LayerEnergyReport("ref")
        improved = LayerEnergyReport("new")
        reference.add_layer("conv1", EnergyBreakdown(10, 0, 0, 0))
        improved.add_layer("conv1", EnergyBreakdown(5, 0, 0, 0))
        assert energy_saving_ratio(reference, improved)["conv1"] == pytest.approx(2.0)


class TestSchedules:
    def test_singular_schedule(self):
        schedule = singular_task_schedule(["cifar10"], images_per_task=3)
        assert [p.task for p in schedule] == ["cifar10"] * 3

    def test_pipelined_schedule(self):
        schedule = pipelined_task_schedule(["a", "b", "c"], rounds=2)
        assert [p.task for p in schedule] == ["a", "b", "c", "a", "b", "c"]

    def test_weight_load_events_conventional_vs_shared(self):
        pipelined = pipelined_task_schedule(["a", "b", "c"])
        singular = singular_task_schedule(["a"], images_per_task=3)
        assert parameter_load_events(pipelined, ParameterSharing.PER_TASK) == 3
        assert parameter_load_events(pipelined, ParameterSharing.SHARED) == 1
        assert parameter_load_events(singular, ParameterSharing.PER_TASK) == 1

    def test_threshold_load_events_follow_task_switches(self):
        pipelined = pipelined_task_schedule(["a", "b", "c"], rounds=2)
        assert threshold_load_events(pipelined) == 6
        singular = singular_task_schedule(["a", "b"], images_per_task=2)
        assert threshold_load_events(singular) == 2

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            parameter_load_events([], ParameterSharing.SHARED)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            singular_task_schedule([], images_per_task=3)
        with pytest.raises(ValueError):
            pipelined_task_schedule(["a"], rounds=0)


class TestExecutionConfigs:
    def test_case_configs(self):
        assert case1_config().zero_skip is False
        assert case2_config().zero_skip is True
        assert mime_config().use_thresholds is True
        assert mime_config().sharing is ParameterSharing.SHARED
        assert pruned_config().weight_density == pytest.approx(0.1)

    def test_thresholds_require_shared_weights(self):
        from repro.hardware.scenario import ExecutionConfig

        with pytest.raises(ValueError):
            ExecutionConfig("bad", True, True, ParameterSharing.PER_TASK)

    def test_invalid_weight_density(self):
        with pytest.raises(ValueError):
            pruned_config(weight_density=0.0)


class TestSparsityProfile:
    def test_lookup_and_default(self):
        profile = LayerSparsityProfile(per_task={"a": {"conv2": 0.6}}, default_sparsity=0.1)
        assert profile.output_sparsity("a", "conv2") == 0.6
        assert profile.output_sparsity("a", "conv3") == 0.1
        assert profile.output_density("a", "conv2") == pytest.approx(0.4)

    def test_input_density_uses_previous_layer(self):
        profile = LayerSparsityProfile(per_task={"a": {"conv1": 0.5}})
        assert profile.input_density("a", 0, SHAPES) == 1.0
        assert profile.input_density("a", 1, SHAPES) == pytest.approx(0.5)

    def test_uniform_profile(self):
        profile = LayerSparsityProfile.uniform(["a", "b"], 0.3)
        assert profile.output_sparsity("b", "anything") == 0.3

    def test_invalid_sparsity_rejected(self):
        with pytest.raises(ValueError):
            LayerSparsityProfile(per_task={"a": {"conv1": 1.5}})


class TestLayerCostModel:
    def setup_method(self):
        self.model = LayerCostModel(default_spec())

    def test_dense_mac_count(self):
        counts = self.model.layer_access_counts(BY_NAME["conv2"], zero_skip=False)
        assert counts.macs == BY_NAME["conv2"].macs

    def test_zero_skip_scales_macs_with_input_density(self):
        layer = BY_NAME["conv2"]
        counts = self.model.layer_access_counts(layer, input_density=0.4, zero_skip=True)
        assert counts.macs == pytest.approx(layer.macs * 0.4)

    def test_first_layer_input_always_dense(self):
        layer = BY_NAME["conv1"]
        counts = self.model.layer_access_counts(layer, input_density=0.3, zero_skip=True, first_layer=True)
        assert counts.macs == pytest.approx(layer.macs)

    def test_thresholds_add_dram_and_comparisons(self):
        layer = BY_NAME["conv5"]
        with_thr = self.model.layer_access_counts(layer, use_thresholds=True)
        without = self.model.layer_access_counts(layer, use_thresholds=False)
        assert with_thr.dram_threshold_words == layer.output_neurons
        assert without.dram_threshold_words == 0
        assert with_thr.comparisons == layer.output_neurons
        assert with_thr.reg_accesses > without.reg_accesses

    def test_weight_zero_skipping_flag(self):
        layer = BY_NAME["conv8"]
        gated = self.model.layer_access_counts(layer, weight_density=0.1, weight_zero_skipping=True)
        dense = self.model.layer_access_counts(layer, weight_density=0.1, weight_zero_skipping=False)
        assert gated.macs == pytest.approx(0.1 * dense.macs)
        assert dense.dram_weight_words == gated.dram_weight_words

    def test_compressed_weight_storage_flag(self):
        layer = BY_NAME["conv8"]
        compressed = self.model.layer_access_counts(
            layer, weight_density=0.1, compressed_weight_storage=True
        )
        dense = self.model.layer_access_counts(layer, weight_density=0.1)
        assert compressed.dram_weight_words == pytest.approx(0.1 * dense.dram_weight_words)

    def test_refetch_factor_when_weights_exceed_cache(self):
        # conv8 at 32x32 input: 1.18 M weights (2.3 MB) > 156 KB cache, P = 16.
        layer = BY_NAME["conv8"]
        small_pe = LayerCostModel(reduced_pe_spec(8))
        factor_default = self.model.weight_refetch_factor(layer, layer.weight_count)
        factor_small = small_pe.weight_refetch_factor(layer, layer.weight_count)
        assert factor_default == 1.0
        assert factor_small == pytest.approx(np.ceil(16 / 8))

    def test_refetch_factor_is_one_when_weights_fit(self):
        layer = BY_NAME["conv2"]  # 36 K weights, 72 KB < 156 KB
        model = LayerCostModel(reduced_pe_spec(8))
        assert model.weight_refetch_factor(layer, layer.weight_count) == 1.0

    def test_output_passes(self):
        layer = BY_NAME["conv2"]  # 64 x 32 x 32 = 65536 output neurons
        assert self.model.output_passes(layer) == 64
        assert LayerCostModel(reduced_pe_spec(256)).output_passes(layer) == 256

    def test_cycles_scale_with_sparsity(self):
        layer = BY_NAME["conv5"]
        dense = self.model.layer_access_counts(layer, zero_skip=False)
        sparse = self.model.layer_access_counts(layer, input_density=0.35, zero_skip=True)
        assert sparse.cycles < dense.cycles

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            self.model.layer_access_counts(BY_NAME["conv2"], input_density=1.5)

    @given(st.floats(0.05, 1.0), st.floats(0.05, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_energy_monotone_in_densities(self, d_in, d_out):
        """More zeros can never increase any access count (zero-skipping)."""
        layer = BY_NAME["conv5"]
        base = self.model.layer_access_counts(layer, input_density=d_in, output_density=d_out)
        denser = self.model.layer_access_counts(
            layer, input_density=min(1.0, d_in + 0.1), output_density=min(1.0, d_out + 0.1)
        )
        assert base.macs <= denser.macs + 1e-9
        assert base.dram_activation_words <= denser.dram_activation_words + 1e-9
        assert base.cache_accesses <= denser.cache_accesses + 1e-9

    def test_access_counts_dataclass_helpers(self):
        counts = AccessCounts(dram_weight_words=5, dram_threshold_words=3, dram_act_in_words=2, dram_act_out_words=1)
        assert counts.dram_parameter_words == 8
        assert counts.dram_activation_words == 3
