"""Reproduction of MIME (DAC 2022): multi-task inference with memory-efficient dynamic pruning.

The package is organised as follows:

* :mod:`repro.nn` — NumPy neural-network framework (layers, losses, optimisers).
* :mod:`repro.models` — VGG family and small reference models.
* :mod:`repro.datasets` — synthetic parent/child task substrates and data streams.
* :mod:`repro.mime` — the paper's contribution: per-task threshold masks, the
  threshold trainer, multi-task network and DRAM storage accounting.
* :mod:`repro.baselines` — conventional fine-tuning and pruning-at-init baselines.
* :mod:`repro.engine` — compiled multi-task inference engine (train/infer path split).
* :mod:`repro.hardware` — Eyeriss-style systolic-array energy/throughput simulator.
* :mod:`repro.experiments` — harness reproducing every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "datasets",
    "mime",
    "baselines",
    "engine",
    "hardware",
    "experiments",
    "utils",
]
