"""Shared utilities: seeded RNG management, lightweight logging and serialization."""

from repro.utils.rng import new_rng, set_global_seed, global_rng
from repro.utils.logging import get_logger
from repro.utils.serialization import save_state_dict, load_state_dict
from repro.utils.ratios import fraction_saved

__all__ = [
    "new_rng",
    "set_global_seed",
    "global_rng",
    "get_logger",
    "save_state_dict",
    "load_state_dict",
    "fraction_saved",
]
