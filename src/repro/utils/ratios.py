"""Tiny shared arithmetic helpers used across layers.

Lives in :mod:`repro.utils` because both the engine (which imports the
hardware model) and the hardware model itself need it — a shared home avoids
either a layering inversion or five drifting copies of the same three lines.
"""

from __future__ import annotations


def fraction_saved(baseline: float, actual: float) -> float:
    """Fraction of ``baseline`` avoided by ``actual`` (0.0 when nothing was).

    The convention every MAC-reduction report in the repo follows: a
    non-positive baseline (nothing measured yet) reads as "nothing saved"
    rather than dividing by zero.
    """
    if baseline <= 0:
        return 0.0
    return 1.0 - actual / baseline
