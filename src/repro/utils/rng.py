"""Random-number-generator helpers.

All stochastic components in the library (weight initialisation, synthetic dataset
generation, data shuffling, dropout) draw from ``numpy.random.Generator`` objects
rather than the legacy global NumPy RNG.  This keeps experiments reproducible and
lets independent components own independent streams.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_global_rng = np.random.default_rng(_DEFAULT_SEED)


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh ``numpy.random.Generator``.

    Parameters
    ----------
    seed:
        Seed for the generator.  ``None`` derives a child seed from the global
        generator so that repeated calls still produce distinct-but-reproducible
        streams after :func:`set_global_seed`.
    """
    if seed is None:
        seed = int(_global_rng.integers(0, 2**31 - 1))
    return np.random.default_rng(seed)


def set_global_seed(seed: int) -> None:
    """Re-seed the library-wide generator used as a fallback by :func:`new_rng`."""
    global _global_rng
    _global_rng = np.random.default_rng(seed)


def global_rng() -> np.random.Generator:
    """Return the library-wide generator."""
    return _global_rng
