"""Minimal logging helper.

The library never configures the root logger; it only creates namespaced child
loggers so that applications embedding ``repro`` stay in control of handlers.
"""

from __future__ import annotations

import logging

_BASE_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional sub-name, e.g. ``"mime.trainer"`` yields ``repro.mime.trainer``.
    """
    if name:
        return logging.getLogger(f"{_BASE_NAME}.{name}")
    return logging.getLogger(_BASE_NAME)
