"""Parameter serialisation helpers.

State dicts in this library are flat ``{name: np.ndarray}`` mappings (the same
convention PyTorch uses).  They are stored as compressed ``.npz`` archives so a
trained parent model or a set of per-task thresholds can be checkpointed and
re-loaded without pickling arbitrary objects.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping

import numpy as np


def save_state_dict(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a flat ``{name: array}`` mapping to ``path`` as a compressed npz."""
    arrays = {key: np.asarray(value) for key, value in state.items()}
    np.savez_compressed(path, **arrays)


def load_state_dict(path: str | os.PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key].copy() for key in archive.files}
