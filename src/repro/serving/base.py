"""The backend-agnostic core of the online serving runtimes.

Two serving backends share everything except how a micro-batch reaches a
worker: the thread backend (:class:`~repro.serving.runtime.ServingRuntime`)
executes batches on worker threads inside this process, the process backend
(:class:`~repro.serving.sharded.ShardedRuntime`) ships them to a fleet of
spawned worker processes over shared-memory rings.  :class:`BaseRuntime`
holds the common machinery — request admission and validation, the
:class:`~repro.serving.batcher.DynamicBatcher` and its pluggable scheduling
policy, the worker pull loop, metrics/recorder plumbing and the
report/hardware-report surface — while the backends implement exactly three
hooks:

* :meth:`BaseRuntime._launch_workers` — bring the worker pool up;
* :meth:`BaseRuntime._execute` — run (or route) one closed micro-batch;
* :meth:`BaseRuntime._join_workers` — wind the pool down at ``stop()``.

:func:`run_plan_batch` is the other shared core: the plan-execution step a
worker performs for one micro-batch, identical whether that worker is a
thread in this process or a loop in a spawned child.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.engine import recorder_hardware_report
from repro.engine.plan import DynamicSparseConfig, EnginePlan, RunContext, WorkspacePool
from repro.engine.scheduling import MicroBatch, SchedulingPolicy, get_policy
from repro.engine.stats import SparsityRecorder
from repro.hardware.scenario import ExecutionConfig
from repro.hardware.simulator import BatchResult, SystolicArraySimulator
from repro.models.shapes import LayerShape
from repro.serving.batcher import DynamicBatcher
from repro.serving.metrics import ServingMetrics, ServingReport
from repro.serving.request import (
    QueueFullError,
    RequestCancelledError,
    RuntimeClosedError,
    ServingRequest,
    ServingResult,
)


def run_plan_batch(
    plan: EnginePlan,
    fallback_dynamic: Optional[DynamicSparseConfig],
    images: np.ndarray,
    task: str,
    recorder: SparsityRecorder,
    pool: WorkspacePool,
) -> np.ndarray:
    """Execute one micro-batch over ``plan`` with full stats accounting.

    The single worker-side step shared by every backend: builds the run
    context (falling back to the shared dense plan's dynamic config so
    enabling the fast path after specialization still applies to specialized
    batches), runs the plan, and records the pass and its MAC counts into
    ``recorder``.
    """
    ctx = RunContext(plan.dynamic if plan.dynamic is not None else fallback_dynamic)
    logits = plan.run(images, task, recorder=recorder, workspaces=pool, ctx=ctx)
    recorder.record_pass(task, images.shape[0])
    recorder.record_macs(ctx.dense_macs, ctx.effective_macs)
    return logits


class BaseRuntime:
    """Common intake/batching/metrics core of the serving backends."""

    #: Reported in :class:`~repro.serving.metrics.ServingReport` and used by
    #: the CLI's ``--backend`` flag.
    backend: str = "abstract"

    def __init__(
        self,
        plan: EnginePlan,
        policy: str | SchedulingPolicy = "fifo-deadline",
        micro_batch: int = 8,
        max_wait: float = 0.01,
        workers: int = 2,
        max_pending: int = 0,
        recorder: Optional[SparsityRecorder] = None,
        specialized: Optional[Dict[str, EnginePlan]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.plan = plan
        self.policy = get_policy(policy)
        self.micro_batch = micro_batch
        self.workers = workers
        #: Per-task specialized plans (:func:`repro.engine.specialize.
        #: specialize_tasks`).  All specialized plans are immutable like the
        #: dense plan, and every worker's private WorkspacePool keys buffers
        #: by kernel identity, so the same pool serves whichever plan a
        #: batch's task selects.
        self.specialized: Dict[str, EnginePlan] = dict(specialized) if specialized else {}
        for name in self.specialized:
            if name not in plan.tasks:
                raise KeyError(f"specialized plan for unknown task '{name}'")
        self.recorder = recorder if recorder is not None else SparsityRecorder()
        self.metrics = ServingMetrics()
        self._clock = clock
        self._batcher = DynamicBatcher(
            micro_batch=micro_batch,
            max_wait=max_wait,
            policy=self.policy,
            max_pending=max_pending,
            clock=clock,
        )
        self._submit_lock = threading.Lock()
        self._submitted = 0
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------- clock --
    @property
    def clock(self) -> Callable[[], float]:
        """The injectable clock every timestamp in this runtime is taken on."""
        return self._clock

    # -------------------------------------------------------------- lifecycle --
    def start(self) -> "BaseRuntime":
        """Bring the worker pool up.  Requests may be submitted before or after."""
        if self._stopped:
            raise RuntimeClosedError(f"a {type(self).__name__} cannot be restarted")
        if self._started:
            return self
        self._started = True
        # Workers first, then the measurement window: process backends block
        # in _launch_workers until every child built its plan, so reported
        # throughput covers serving, not interpreter spawn time.
        self._launch_workers()
        self.metrics.mark_start(self._clock())
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> ServingReport:
        """Shut down and return the final :class:`ServingReport`.

        ``drain=True`` (default) stops intake, flushes partial batches and
        waits for every admitted request to finish; ``drain=False`` cancels
        everything not yet executing — cancelled futures raise
        :class:`RequestCancelledError`.  On a runtime that was never
        started, admitted requests are always cancelled (no worker exists to
        drain them).  ``timeout`` bounds the *total* wait for the worker
        pool; if it elapses with workers still running, the returned report
        is a snapshot, not final (see the backend's notes on stragglers).
        """
        if not self._stopped:
            self._stopped = True
            self._batcher.close()
            if not drain or not self._started:
                cancelled = self._batcher.drain_cancelled()
                for request in cancelled:
                    request.result.set_error(
                        RequestCancelledError(
                            f"request {request.index} cancelled by stop(drain=False)"
                        )
                    )
                self.metrics.observe_cancelled(len(cancelled))
            if self._started:
                self._join_workers(drain=drain, timeout=timeout)
            self.metrics.mark_stop(self._clock())
        return self.report()

    def __enter__(self) -> "BaseRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # --------------------------------------------------------- backend hooks --
    def _launch_workers(self) -> None:
        raise NotImplementedError

    def _execute(self, batch: MicroBatch, state, last_task: Optional[str]) -> None:
        """Run (thread backend) or route (process backend) one closed batch."""
        raise NotImplementedError

    def _join_workers(self, drain: bool, timeout: Optional[float]) -> None:
        raise NotImplementedError

    # ----------------------------------------------------------------- intake --
    def submit(
        self,
        task: str,
        image: np.ndarray,
        deadline: Optional[float] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServingResult:
        """Admit one ``(C, H, W)`` image for ``task``; returns a future.

        ``deadline`` is an absolute timestamp on the runtime's clock
        (``time.monotonic()`` by default), consulted by deadline-aware
        policies and scored in the metrics.  On a full bounded queue,
        ``block=False`` raises :class:`QueueFullError` immediately, otherwise
        the call waits (up to ``timeout`` seconds).
        """
        if task not in self.plan.tasks:
            raise KeyError(f"unknown task '{task}'; compiled: {self.plan.task_names()}")
        image = np.asarray(image)
        if image.shape != self.plan.input_shape:
            raise ValueError(
                f"expected one image of shape {self.plan.input_shape}, got {image.shape}"
            )
        now = self._clock()
        with self._submit_lock:
            index = self._submitted
            self._submitted += 1
        result = ServingResult(index, task, now, deadline)
        # Copy so callers may reuse their staging buffer after submit().
        request = ServingRequest(index, task, image.copy(), now, deadline, result)
        try:
            self._batcher.submit(request, block=block, timeout=timeout)
        except QueueFullError:
            # Only genuine overload counts as a rejection in the report;
            # RuntimeClosedError during shutdown is not a capacity signal.
            self.metrics.observe_rejection()
            raise
        return result

    def submit_many(
        self, items: Sequence[Tuple[str, np.ndarray]], **kwargs
    ) -> List[ServingResult]:
        """Convenience loop over :meth:`submit` for ``(task, image)`` pairs."""
        return [self.submit(task, image, **kwargs) for task, image in items]

    def pending(self) -> int:
        return self._batcher.pending()

    # ---------------------------------------------------------------- workers --
    def _worker_loop(self, state) -> None:
        """The shared pull loop: batches flow from the batcher to _execute.

        ``state`` is whatever per-worker context the backend passed when it
        launched the loop (a :class:`~repro.engine.WorkspacePool` for thread
        workers, the router state for the process backend's dispatcher).
        """
        last_task: Optional[str] = None
        while True:
            batch = self._batcher.next_batch(last_task)
            if batch is None:
                return
            self._execute(batch, state, last_task)
            last_task = batch.task

    def plan_for(self, task: str) -> EnginePlan:
        """The plan a batch of ``task`` executes (specialized when available)."""
        return self.specialized.get(task, self.plan)

    def _complete_batch(
        self,
        requests: Sequence[ServingRequest],
        logits: np.ndarray,
        task: str,
        start: float,
        finish: float,
        switched: bool,
    ) -> None:
        """Resolve one executed batch's futures and record its metrics."""
        latencies, queue_waits, deadline_results = [], [], []
        for request, row in zip(requests, logits):
            request.result.set_result(row, start, finish)
            latencies.append(finish - request.arrival_time)
            queue_waits.append(start - request.arrival_time)
            deadline_results.append(request.result.deadline_met)
        self.metrics.observe_batch(
            task,
            latencies,
            queue_waits,
            switched=switched,
            deadline_results=deadline_results,
        )

    def _fail_batch(self, requests: Sequence[ServingRequest], error: BaseException) -> None:
        """Surface an execution error on every future of a failed batch."""
        for request in requests:
            request.result.set_error(error)
        self.metrics.observe_error(len(requests))

    # ---------------------------------------------------------------- reports --
    def report(self) -> ServingReport:
        """Current metrics snapshot (final once :meth:`stop` returned).

        ``task_switches`` counts **per-worker** switches (each worker models
        one accelerator pipeline); :meth:`hardware_report` instead charges
        reloads on the single global interleaved schedule, which alternates
        more under multi-worker load — the two numbers answer different
        questions and are not expected to match.
        """
        dense, effective = self.recorder.mac_totals()
        return self.metrics.report(
            self.policy.name,
            self.workers,
            now=self._clock(),
            backend=self.backend,
            dense_macs=dense,
            effective_macs=effective,
        )

    def reset_stats(self) -> None:
        """Start a fresh measurement window (mirrors the offline engine).

        Clears the metrics *and* the sparsity recorder.  Long-lived runtimes
        should call this periodically: both grow with every served image
        (per-request latency samples, one schedule slot per image) and are
        never trimmed otherwise.
        """
        self.metrics.reset(self._clock() if self._started else None)
        self.recorder.reset()

    def sparsity_profile(self, default_sparsity: float = 0.0):
        """Measured per-task, per-layer sparsity as a simulator-ready profile."""
        return self.recorder.to_profile(default_sparsity=default_sparsity)

    def hardware_report(
        self,
        shapes: Sequence[LayerShape],
        config: ExecutionConfig | None = None,
        simulator: SystolicArraySimulator | None = None,
        conv_only: bool = False,
    ) -> BatchResult:
        """Simulate the *online* schedule this runtime actually executed.

        The recorder covers the runtime's whole lifetime: the interleaved
        order the worker pool produced under load is exactly the schedule the
        systolic-array simulator charges parameter reloads against.
        """
        return recorder_hardware_report(
            self.recorder, shapes, config=config, simulator=simulator, conv_only=conv_only
        )
