"""The backend-agnostic core of the online serving runtimes.

Two serving backends share everything except how a micro-batch reaches a
worker: the thread backend (:class:`~repro.serving.runtime.ServingRuntime`)
executes batches on worker threads inside this process, the process backend
(:class:`~repro.serving.sharded.ShardedRuntime`) ships them to a fleet of
spawned worker processes over shared-memory rings.  :class:`BaseRuntime`
holds the common machinery — request admission and validation, the
:class:`~repro.serving.batcher.DynamicBatcher` and its pluggable scheduling
policy, the worker pull loop, metrics/recorder plumbing and the
report/hardware-report surface — while the backends implement exactly three
hooks:

* :meth:`BaseRuntime._launch_workers` — bring the worker pool up;
* :meth:`BaseRuntime._execute` — run (or route) one closed micro-batch;
* :meth:`BaseRuntime._join_workers` — wind the pool down at ``stop()``.

:func:`run_plan_batch` is the other shared core: the plan-execution step a
worker performs for one micro-batch, identical whether that worker is a
thread in this process or a loop in a spawned child.

**Control plane.**  A runtime's model is no longer fixed at construction:
the executable plans live in one immutable :class:`PlanSet` snapshot, and
:meth:`BaseRuntime.swap` replaces that snapshot while traffic flows — intake
pauses briefly, every admitted micro-batch drains against the old plans,
the backend cuts over (atomic assignment for threads, a rebuild control
message plus readiness acks for the process fleet), and intake resumes
against the new plans.  No request is ever dropped or executed against a
plan that does not know its task.  :meth:`BaseRuntime.add_task` and
:meth:`BaseRuntime.remove_task` ride the same path, and ``swap`` accepts a
:class:`~repro.artifacts.ModelArtifact` directly, which is what makes a
store-published artifact a zero-downtime deployment unit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.engine import recorder_hardware_report
from repro.engine.plan import (
    DynamicSparseConfig,
    EnginePlan,
    RunContext,
    TaskPlan,
    WorkspacePool,
)
from repro.engine.scheduling import MicroBatch, SchedulingPolicy, get_policy
from repro.engine.specialize import coalescing_signature
from repro.engine.stats import SparsityRecorder
from repro.hardware.scenario import ExecutionConfig
from repro.hardware.simulator import BatchResult, SystolicArraySimulator
from repro.models.shapes import LayerShape
from repro.serving.batcher import DynamicBatcher
from repro.serving.metrics import ServingMetrics, ServingReport
from repro.serving.request import (
    QueueFullError,
    RequestCancelledError,
    RuntimeClosedError,
    ServingRequest,
    ServingResult,
)
from repro.serving.stream import MetricsStream


def run_plan_batch(
    plan: EnginePlan,
    fallback_dynamic: Optional[DynamicSparseConfig],
    images: np.ndarray,
    task: str,
    recorder: SparsityRecorder,
    pool: WorkspacePool,
    row_tasks: Optional[Sequence[str]] = None,
    task_plans: Optional[Dict[str, TaskPlan]] = None,
) -> np.ndarray:
    """Execute one micro-batch over ``plan`` with full stats accounting.

    The single worker-side step shared by every backend: builds the run
    context (falling back to the shared dense plan's dynamic config so
    enabling the fast path after specialization still applies to specialized
    batches), runs the plan, and records the pass and its MAC counts into
    ``recorder``.

    ``row_tasks`` (set for coalesced batches) names each row's owning task
    and routes execution through :meth:`EnginePlan.run_mixed`; passes are
    then recorded per member task with its own row count, so request
    accounting stays exact even though layer statistics aggregate under the
    mixed pseudo-task.  ``task_plans`` optionally overrides the per-task
    threshold/head lookup (group-leader execution of specialized plans).
    """
    ctx = RunContext(plan.dynamic if plan.dynamic is not None else fallback_dynamic)
    if row_tasks is not None:
        logits = plan.run_mixed(
            images, row_tasks, task_plans=task_plans,
            recorder=recorder, workspaces=pool, ctx=ctx,
        )
        counts: Dict[str, int] = {}
        for name in row_tasks:
            counts[name] = counts.get(name, 0) + 1
        for name, count in counts.items():
            recorder.record_pass(name, count)
    else:
        logits = plan.run(images, task, recorder=recorder, workspaces=pool, ctx=ctx)
        recorder.record_pass(task, images.shape[0])
    recorder.record_macs(ctx.dense_macs, ctx.effective_macs)
    return logits


class PlanSet:
    """One immutable (dense plan, per-task specialized plans) snapshot.

    The runtime holds exactly one ``PlanSet`` at a time and workers read it
    once per micro-batch, so replacing the whole set is a single reference
    assignment — the atomic unit of the hot-swap control plane.  The plans
    inside are immutable by the engine's contract; building a new set never
    mutates a live one.
    """

    __slots__ = ("plan", "specialized", "_groups", "_leaders")

    def __init__(
        self, plan: EnginePlan, specialized: Optional[Dict[str, EnginePlan]] = None
    ) -> None:
        self.plan = plan
        self.specialized: Dict[str, EnginePlan] = dict(specialized) if specialized else {}
        for name in self.specialized:
            if name not in plan.tasks:
                raise KeyError(f"specialized plan for unknown task '{name}'")
        # Coalescing groups: tasks in the same group may share one mixed
        # micro-batch.  Dense tasks coalesce freely (same backbone, same head
        # width); specialized plans coalesce only when their compacted
        # geometry digest matches (see ``coalescing_signature``), and plans of
        # unknown provenance never coalesce.  The *leader* (first-registered
        # member) names the one plan object every batch of the group executes,
        # which is what keeps worker workspace pools from growing per task.
        self._groups: Dict[str, str] = {}
        self._leaders: Dict[str, str] = {}
        for name, task_plan in self.plan.tasks.items():
            spec = self.specialized.get(name)
            if spec is None:
                key = f"dense/c{task_plan.num_classes}"
            else:
                signature = coalescing_signature(spec)
                if signature is None:
                    key = f"solo/{name}"
                else:
                    key = f"spec/{signature}/c{spec.tasks[name].num_classes}"
            self._groups[name] = key
            self._leaders.setdefault(key, name)

    def plan_for(self, task: str) -> EnginePlan:
        """The plan a batch of ``task`` executes (specialized when available)."""
        return self.specialized.get(task, self.plan)

    def task_names(self) -> List[str]:
        return self.plan.task_names()

    def __contains__(self, task: str) -> bool:
        return task in self.plan.tasks

    def coalescing_group(self, task: str) -> str:
        """The coalescing-group key of ``task`` (the batcher's bucket key)."""
        return self._groups[task]

    def group_leader(self, group: str) -> str:
        """The member task whose plan object executes this group's batches."""
        return self._leaders[group]

    def execution_for(self, batch: MicroBatch) -> Tuple[
        EnginePlan, Optional[Dict[str, TaskPlan]], Optional[Tuple[str, ...]]
    ]:
        """Resolve one micro-batch to ``(exec_plan, task_plans, row_tasks)``.

        Non-coalesced batches keep today's path exactly (``(plan_for(task),
        None, None)``).  Coalesced batches execute on the group **leader's**
        plan: for the dense group the member tasks all live in the dense
        plan's own task table; for a specialized group each member contributes
        its own compacted :class:`TaskPlan`, gathered here from the member
        plans so the leader's kernels mask with the right thresholds.
        """
        if batch.group is None:
            return self.plan_for(batch.task), None, None
        if not batch.mixed:
            # A coalesced batch that happens to hold one task's rows needs no
            # per-row threshold gather: its own plan executes it exactly as a
            # per-task singular batch would (which is the exactness
            # reference), with broadcast thresholds.
            return self.plan_for(batch.task), None, None
        leader = self._leaders.get(batch.group, batch.task)
        exec_plan = self.plan_for(leader)
        if exec_plan is self.plan:
            return exec_plan, None, batch.tasks
        task_plans = {
            name: self.plan_for(name).tasks[name] for name in set(batch.tasks)
        }
        return exec_plan, task_plans, batch.tasks

    def kernel_uids(self, reachable_only: bool = False) -> set:
        """Workspace-owner uids of every kernel across the whole set.

        With ``reachable_only`` (a coalescing runtime pruning worker pools),
        only plans that can actually execute contribute: the dense plan plus
        each coalescing group's leader.  Non-leader specialized plans are
        never run once groups form — their buffers are reclaimable.
        """
        if reachable_only:
            by_id = {id(self.plan): self.plan}
            for leader in self._leaders.values():
                plan = self.plan_for(leader)
                by_id.setdefault(id(plan), plan)
            plans = list(by_id.values())
        else:
            plans = [self.plan, *self.specialized.values()]
        uids = {kernel.uid for plan in plans for kernel in plan.kernels}
        uids.update(plan._mixed_uid for plan in plans)
        return uids

    def plan_bytes(self, shared_only: bool = False) -> int:
        """Resident bytes of the set's tensors, counting shared memory once.

        Arrays that alias a common base (backbone weights shared across task
        plans, pass-through tensors a specialized plan kept from its dense
        source) are counted a single time — the resident-set semantics the
        many-task memory budget is stated in.

        ``shared_only`` restricts the count to the *plan* tensors (kernel
        weights/biases/quant payloads — the backbone every task shares).
        That is the portion deduplication keeps O(1) in the task count; the
        remainder is the paper's irreducible per-task payload (per-neuron
        thresholds + FC head), which necessarily scales with N.
        """
        seen: set = set()
        total = 0

        def visit(array) -> None:
            nonlocal total
            if not isinstance(array, np.ndarray):
                return
            base = array
            while isinstance(base.base, np.ndarray):
                base = base.base
            if id(base) not in seen:
                seen.add(id(base))
                total += base.nbytes

        by_id = {id(p): p for p in [self.plan, *self.specialized.values()]}
        for plan in by_id.values():
            for kernel in plan.kernels:
                visit(getattr(kernel, "weight_t", None))
                visit(getattr(kernel, "bias", None))
                visit(getattr(kernel, "live_index", None))
                quant = getattr(kernel, "quant", None)
                if quant is not None:
                    visit(quant.weight_q)
                    visit(quant.w_scale)
                    visit(quant.scale)
                    visit(quant.weight_qi)
            if shared_only:
                continue
            for task_plan in plan.tasks.values():
                for thresholds in task_plan.thresholds:
                    visit(thresholds)
                visit(task_plan.head_weight_t)
                visit(task_plan.head_bias)
        return total


class BaseRuntime:
    """Common intake/batching/metrics core of the serving backends."""

    #: Reported in :class:`~repro.serving.metrics.ServingReport` and used by
    #: the CLI's ``--backend`` flag.
    backend: str = "abstract"

    def __init__(
        self,
        plan: EnginePlan,
        policy: str | SchedulingPolicy = "fifo-deadline",
        micro_batch: int = 8,
        max_wait: float = 0.01,
        workers: int = 2,
        max_pending: int = 0,
        recorder: Optional[SparsityRecorder] = None,
        specialized: Optional[Dict[str, EnginePlan]] = None,
        clock: Callable[[], float] = time.monotonic,
        max_retries: int = 2,
        window_interval: float = 1.0,
        coalesce: bool = False,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        #: Cross-task batch coalescing (off by default): when enabled the
        #: batcher buckets requests by coalescing group instead of task, so
        #: one micro-batch may carry rows of several tasks over the shared
        #: backbone.  Default-off preserves per-task batching semantics for
        #: existing policies (weighted-fair's per-task virtual clocks, queue
        #: depth accounting in tests).
        self.coalesce = bool(coalesce)
        #: Per-task specialized plans (:func:`repro.engine.specialize.
        #: specialize_tasks`) ride next to the dense plan in one PlanSet.
        #: All plans are immutable, and every worker's private WorkspacePool
        #: keys buffers by kernel identity, so the same pool serves whichever
        #: plan a batch's task selects.
        self._plans = PlanSet(plan, specialized)
        self.policy = get_policy(policy)
        self.micro_batch = micro_batch
        self.workers = workers
        self.recorder = recorder if recorder is not None else SparsityRecorder()
        #: Retry budget stamped on every admitted request: how many times a
        #: request may be re-dispatched after a worker death before its future
        #: fails permanently.  Only the process backend's supervisor consumes
        #: it; the thread backend shares a fate with its workers.
        self.max_retries = max_retries
        # The metrics accumulator shares the runtime's clock so mid-run
        # reports and window boundaries live in one clock domain.
        self.metrics = ServingMetrics(clock=clock)
        self._clock = clock
        self._batcher = DynamicBatcher(
            micro_batch=micro_batch,
            max_wait=max_wait,
            policy=self.policy,
            max_pending=max_pending,
            clock=clock,
            # Late-bound through self._plans so hot-swaps retarget the
            # group map without touching the batcher.
            coalesce=(lambda task: self._plans.coalescing_group(task))
            if self.coalesce
            else None,
        )
        #: Windowed snapshots + control-plane event log + Prometheus text.
        #: Windows close on the runtime clock every ``window_interval``
        #: seconds when :meth:`MetricsStream.poll` is called (the CLI runs
        #: the stream's background poller; tests drive poll() manually).
        self.stream = MetricsStream(
            self.metrics,
            clock,
            interval=window_interval,
            queue_depths=self.queue_depths,
            shard_depths=self.shard_depths,
            report=self.report,
        )
        self._submit_lock = threading.Lock()
        self._submitted = 0
        self._started = False
        self._stopped = False
        # Control plane: one swap/add/remove at a time, plus an intake gate
        # that briefly pauses submit() while a swap drains the old plans.
        # Reentrant so swap_with() can derive a new set from the current one
        # and install it without another control operation interleaving.
        self._control_lock = threading.RLock()
        self._intake_gate = threading.Condition()
        self._intake_paused = False
        self._intake_active = 0

    # ------------------------------------------------------------------ plans --
    @property
    def plans(self) -> PlanSet:
        """The current plan snapshot (replaced wholesale by :meth:`swap`)."""
        return self._plans

    @property
    def plan(self) -> EnginePlan:
        """The current dense plan."""
        return self._plans.plan

    @property
    def specialized(self) -> Dict[str, EnginePlan]:
        """The current per-task specialized plans."""
        return self._plans.specialized

    def plan_for(self, task: str) -> EnginePlan:
        """The plan a batch of ``task`` executes (specialized when available)."""
        return self._plans.plan_for(task)

    # ------------------------------------------------------------------- clock --
    @property
    def clock(self) -> Callable[[], float]:
        """The injectable clock every timestamp in this runtime is taken on."""
        return self._clock

    # -------------------------------------------------------------- lifecycle --
    def start(self) -> "BaseRuntime":
        """Bring the worker pool up.  Requests may be submitted before or after."""
        if self._stopped:
            raise RuntimeClosedError(f"a {type(self).__name__} cannot be restarted")
        if self._started:
            return self
        self._started = True
        # Workers first, then the measurement window: process backends block
        # in _launch_workers until every child built its plan, so reported
        # throughput covers serving, not interpreter spawn time.
        self._launch_workers()
        self.metrics.mark_start(self._clock())
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> ServingReport:
        """Shut down and return the final :class:`ServingReport`.

        ``drain=True`` (default) stops intake, flushes partial batches and
        waits for every admitted request to finish; ``drain=False`` cancels
        everything not yet executing — cancelled futures raise
        :class:`RequestCancelledError`.  On a runtime that was never
        started, admitted requests are always cancelled (no worker exists to
        drain them).  ``timeout`` bounds the *total* wait for the worker
        pool; if it elapses with workers still running, the returned report
        is a snapshot, not final (see the backend's notes on stragglers).
        """
        if not self._stopped:
            self._stopped = True
            self._batcher.close()
            if not drain or not self._started:
                cancelled = self._batcher.drain_cancelled()
                for request in cancelled:
                    request.result.set_error(
                        RequestCancelledError(
                            f"request {request.index} cancelled by stop(drain=False)"
                        )
                    )
                self.metrics.observe_cancelled(len(cancelled))
            if self._started:
                self._join_workers(drain=drain, timeout=timeout)
            self.stream.stop()  # no-op unless the background poller ran
            self.metrics.mark_stop(self._clock())
        return self.report()

    def __enter__(self) -> "BaseRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # --------------------------------------------------------- backend hooks --
    def _launch_workers(self) -> None:
        raise NotImplementedError

    def _execute(self, batch: MicroBatch, state, last_task: Optional[str]) -> None:
        """Run (thread backend) or route (process backend) one closed batch."""
        raise NotImplementedError

    def _join_workers(self, drain: bool, timeout: Optional[float]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------ control plane --
    def _coerce_plans(
        self, target, specialized: Optional[Dict[str, EnginePlan]]
    ) -> PlanSet:
        """Normalise a swap target to a :class:`PlanSet`.

        Accepts a ``PlanSet``, a dense :class:`EnginePlan` (optionally with a
        ``specialized`` dict), or anything exposing ``build_plans()`` — i.e. a
        :class:`~repro.artifacts.ModelArtifact` (duck-typed to keep this
        module free of an artifacts dependency).
        """
        if isinstance(target, PlanSet):
            if specialized is not None:
                raise ValueError("pass specialized plans inside the PlanSet")
            return target
        if isinstance(target, EnginePlan):
            return PlanSet(target, specialized)
        build_plans = getattr(target, "build_plans", None)
        if callable(build_plans):
            plan, artifact_specialized = build_plans()
            return PlanSet(
                plan, specialized if specialized is not None else artifact_specialized
            )
        raise TypeError(
            f"cannot swap to {type(target).__name__}: expected an EnginePlan, "
            "a PlanSet, or a ModelArtifact"
        )

    def _validate_swap(self, plans: PlanSet) -> None:
        """Reject plan sets the live runtime cannot serve in place."""
        current = self._plans.plan
        if tuple(plans.plan.input_shape) != tuple(current.input_shape):
            raise ValueError(
                f"cannot swap: input shape {tuple(plans.plan.input_shape)} != "
                f"{tuple(current.input_shape)} the runtime was built for"
            )
        if np.dtype(plans.plan.dtype) != np.dtype(current.dtype):
            raise ValueError(
                f"cannot swap: dtype {np.dtype(plans.plan.dtype)} != "
                f"{np.dtype(current.dtype)} the runtime was built for"
            )

    def swap(
        self,
        target,
        specialized: Optional[Dict[str, EnginePlan]] = None,
        timeout: Optional[float] = None,
    ) -> PlanSet:
        """Hot-swap the runtime's plans with zero dropped or misrouted requests.

        ``target`` is an :class:`~repro.engine.EnginePlan` (with an optional
        ``specialized`` dict), a prebuilt :class:`PlanSet`, or a
        :class:`~repro.artifacts.ModelArtifact`.  The new plans must share the
        current input shape and dtype (process backends additionally bound
        the head width by their output-ring geometry).

        On a live runtime the sequence is: pause intake (submitters block for
        the duration, nothing is rejected) → flush and drain every admitted
        micro-batch against the **old** plans → backend cutover
        (:meth:`_apply_swap`: atomic snapshot replacement for threads; a
        rebuild control message + readiness ack per shard for processes) →
        resume intake against the **new** plans.  Requests admitted after the
        swap returns are guaranteed to execute on the new plans; requests
        admitted before are guaranteed to have executed on the old ones.

        ``timeout`` bounds the drain + cutover; on expiry a
        :class:`TimeoutError` is raised and the old plans keep serving.
        """
        plans = self._coerce_plans(target, specialized)
        self._validate_swap(plans)
        # One deadline covers every phase (batcher drain, in-flight drain,
        # backend cutover), so `timeout` bounds the whole call, not each step.
        # Budgets run on the runtime's injectable clock — mixing in raw
        # time.monotonic() here would put the swap deadline in a different
        # clock domain than the drains it bounds.
        give_up = None if timeout is None else self._clock() + timeout

        def remaining() -> Optional[float]:
            return None if give_up is None else max(0.0, give_up - self._clock())

        with self._control_lock:
            if self._stopped:
                raise RuntimeClosedError("cannot swap plans on a stopped runtime")
            if not self._started:
                self._plans = plans
                self.stream.record_event(
                    "swap", detail=f"pre-start install: tasks={plans.task_names()}"
                )
                return plans
            self._pause_intake()
            try:
                self._batcher.flush()
                if not self._batcher.quiescent(remaining()):
                    raise TimeoutError(
                        f"swap drain did not quiesce within {timeout}s; "
                        "the old plans are still serving"
                    )
                self._drain_in_flight(remaining())
                self._apply_swap(plans, remaining())
            finally:
                self._resume_intake()
        self.stream.record_event("swap", detail=f"tasks={plans.task_names()}")
        return plans

    def swap_with(self, build, timeout: Optional[float] = None) -> PlanSet:
        """Atomically derive a new plan set from the current one and swap to it.

        ``build(current: PlanSet)`` returns the swap target (anything
        :meth:`swap` accepts).  The control lock is held across the read and
        the swap, so two concurrent control operations (say, an operator's
        :meth:`add_task` and the recalibration loop's re-specialization)
        cannot both derive from the same snapshot and silently revert each
        other — the classic lost update.  A plain :meth:`swap` with a
        pre-built target does not need this; use ``swap_with`` whenever the
        new set is a function of the current one.
        """
        with self._control_lock:
            return self.swap(build(self._plans), timeout=timeout)

    def add_task(
        self,
        task,
        specialized_plan: Optional[EnginePlan] = None,
        timeout: Optional[float] = None,
    ) -> PlanSet:
        """Register a new task on the live runtime (a swap under the hood).

        ``task`` is either a training-side
        :class:`~repro.mime.task_manager.TaskParameters` (snapshotted exactly
        like :func:`~repro.engine.compile_network` does) or a prebuilt
        :class:`~repro.engine.TaskPlan`.  The dense plan's kernels are shared
        with the new snapshot — only the task dictionary grows.
        """
        name = task.name

        def build(current: PlanSet) -> PlanSet:
            if name in current.plan.tasks:
                raise KeyError(f"task '{name}' is already registered")
            new_plan = replace(current.plan, tasks=dict(current.plan.tasks))
            if isinstance(task, TaskPlan):
                new_plan.tasks[name] = task
            else:
                # Snapshots the TaskParameters exactly like compile_network;
                # only the new plan's (fresh) tasks dict grows — the live one
                # is shared with executing workers and never mutated.
                new_plan.add_task(task)
            new_specialized = dict(current.specialized)
            if specialized_plan is not None:
                new_specialized[name] = specialized_plan
            return PlanSet(new_plan, new_specialized)

        return self.swap_with(build, timeout=timeout)

    def remove_task(self, name: str, timeout: Optional[float] = None) -> PlanSet:
        """Unregister ``name`` from the live runtime (a swap under the hood).

        Requests for the task admitted before this call complete normally —
        the swap drains them against the old plans; requests submitted after
        it returns are rejected at admission with :class:`KeyError`.
        """

        def build(current: PlanSet) -> PlanSet:
            if name not in current.plan.tasks:
                raise KeyError(
                    f"unknown task '{name}'; compiled: {current.task_names()}"
                )
            if len(current.plan.tasks) == 1:
                raise ValueError("cannot remove the only task of a serving runtime")
            tasks = {
                key: value for key, value in current.plan.tasks.items() if key != name
            }
            specialized = {
                key: value for key, value in current.specialized.items() if key != name
            }
            return PlanSet(replace(current.plan, tasks=tasks), specialized)

        return self.swap_with(build, timeout=timeout)

    def _apply_swap(self, plans: PlanSet, timeout: Optional[float]) -> None:
        """Backend cutover, called with intake paused and the batcher drained."""
        self._plans = plans

    def _drain_in_flight(self, timeout: Optional[float]) -> None:
        """Extra backend drain beyond the batcher (process backends override)."""

    def current_recorder(self) -> SparsityRecorder:
        """A recorder view covering everything measured so far, fleet-wide.

        The thread backend's workers share :attr:`recorder`, so this is that
        object; the process backend overrides it to merge live worker
        snapshots fetched over the command channel.  The online recalibration
        loop reads survival statistics through this method so it works
        unchanged on either backend.
        """
        return self.recorder

    def _pause_intake(self) -> None:
        """Block new :meth:`submit` calls and wait out the ones in progress."""
        with self._intake_gate:
            self._intake_paused = True
            while self._intake_active:
                self._intake_gate.wait()

    def _resume_intake(self) -> None:
        with self._intake_gate:
            self._intake_paused = False
            self._intake_gate.notify_all()

    # ----------------------------------------------------------------- intake --
    def submit(
        self,
        task: str,
        image: np.ndarray,
        deadline: Optional[float] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServingResult:
        """Admit one ``(C, H, W)`` image for ``task``; returns a future.

        ``deadline`` is an absolute timestamp on the runtime's clock
        (``time.monotonic()`` by default), consulted by deadline-aware
        policies and scored in the metrics.  On a full bounded queue,
        ``block=False`` raises :class:`QueueFullError` immediately, otherwise
        the call waits (up to ``timeout`` seconds).  During a plan hot-swap
        the call blocks briefly while the old plans drain, then validates
        against the new plans — the same ``block``/``timeout`` semantics
        apply at the swap gate, so a non-blocking submit fails fast instead
        of stalling for the drain.
        """
        # The wait budget runs on the runtime's clock: deadlines, batch
        # timestamps and this timeout must share one clock domain (and a
        # ManualClock test must be able to expire the wait).
        give_up = None if timeout is None else self._clock() + timeout
        with self._intake_gate:
            while self._intake_paused:
                if not block:
                    self.metrics.observe_rejection()
                    raise QueueFullError(
                        "intake is paused for a plan swap; retry after the cutover"
                    )
                remaining = None if give_up is None else give_up - self._clock()
                if remaining is not None and remaining <= 0:
                    self.metrics.observe_rejection()
                    raise QueueFullError(
                        f"intake still paused for a plan swap after waiting {timeout}s"
                    )
                self._intake_gate.wait(remaining)
            self._intake_active += 1
        try:
            plans = self._plans
            if task not in plans.plan.tasks:
                raise KeyError(
                    f"unknown task '{task}'; compiled: {plans.task_names()}"
                )
            image = np.asarray(image)
            if image.shape != plans.plan.input_shape:
                raise ValueError(
                    f"expected one image of shape {plans.plan.input_shape}, "
                    f"got {image.shape}"
                )
            # Backend veto point: the process backend's supervisor rejects or
            # sheds here when the fleet is dead or degraded, *before* the
            # request is charged against the batcher's admission bound.
            self._admission_gate(block)
            now = self._clock()
            with self._submit_lock:
                index = self._submitted
                self._submitted += 1
            result = ServingResult(index, task, now, deadline)
            # Copy so callers may reuse their staging buffer after submit().
            request = ServingRequest(
                index,
                task,
                image.copy(),
                now,
                deadline,
                result,
                max_retries=self.max_retries,
            )
            # Whatever the swap gate consumed comes out of the same budget, so
            # the total wait stays bounded by the caller's timeout.
            remaining = (
                None if give_up is None else max(0.0, give_up - self._clock())
            )
            try:
                self._batcher.submit(request, block=block, timeout=remaining)
            except QueueFullError:
                # Only genuine overload counts as a rejection in the report;
                # RuntimeClosedError during shutdown is not a capacity signal.
                self.metrics.observe_rejection()
                raise
            return result
        finally:
            with self._intake_gate:
                self._intake_active -= 1
                if not self._intake_active:
                    self._intake_gate.notify_all()

    def _admission_gate(self, block: bool) -> None:
        """Backend hook run before a validated request reaches the batcher.

        The default accepts everything.  :class:`~repro.serving.sharded.
        ShardedRuntime` overrides it to fail fast when no shard is live
        (:class:`~repro.serving.request.NoLiveShardsError`) and to tighten
        the admission bound while the fleet is degraded, shedding load
        instead of letting submitters hang behind capacity that no longer
        exists.
        """

    def submit_many(
        self, items: Sequence[Tuple[str, np.ndarray]], **kwargs
    ) -> List[ServingResult]:
        """Convenience loop over :meth:`submit` for ``(task, image)`` pairs."""
        return [self.submit(task, image, **kwargs) for task, image in items]

    def pending(self) -> int:
        return self._batcher.pending()

    # ----------------------------------------------------------------- gauges --
    def queue_depths(self) -> Dict[str, int]:
        """Instantaneous queued requests per task (open + ready batches)."""
        return self._batcher.depth_by_task()

    def shard_depths(self) -> Dict[int, int]:
        """Instantaneous in-flight depth per shard.

        The base/thread runtime has no per-shard queues — workers pull from
        the one shared batcher — so this is empty; the process backend
        overrides it with per-shard in-flight batch counts.
        """
        return {}

    # ---------------------------------------------------------------- workers --
    def _worker_loop(self, state) -> None:
        """The shared pull loop: batches flow from the batcher to _execute.

        ``state`` is whatever per-worker context the backend passed when it
        launched the loop (a :class:`~repro.engine.WorkspacePool` for thread
        workers, the router state for the process backend's dispatcher).
        ``task_done`` runs under a ``finally`` so a batch that fails still
        releases the swap drain barrier.
        """
        last_task: Optional[str] = None
        while True:
            batch = self._batcher.next_batch(last_task)
            if batch is None:
                return
            try:
                self._execute(batch, state, last_task)
            finally:
                self._batcher.task_done()
            # Track the routing key, not the raw task: consecutive coalesced
            # batches of one group share all plan state, so they are not a
            # task switch.  For non-coalesced batches the key IS the task.
            last_task = batch.routing_key

    def _complete_batch(
        self,
        requests: Sequence[ServingRequest],
        logits: np.ndarray,
        task: str,
        start: float,
        finish: float,
        switched: bool,
        shard: Optional[int] = None,
        per_task: Optional[Dict[str, int]] = None,
    ) -> None:
        """Resolve one executed batch's futures and record its metrics.

        ``shard`` is the worker index that executed the batch (thread index
        or process shard id); both backends thread it through so per-shard
        completion counters work on either.  ``per_task`` attributes a mixed
        batch's images to each member task instead of charging them all to
        ``task``.
        """
        latencies, queue_waits, deadline_results = [], [], []
        for request, row in zip(requests, logits):
            request.result.set_result(row, start, finish)
            latencies.append(finish - request.arrival_time)
            queue_waits.append(start - request.arrival_time)
            deadline_results.append(request.result.deadline_met)
        self.metrics.observe_batch(
            task,
            latencies,
            queue_waits,
            switched=switched,
            deadline_results=deadline_results,
            shard=shard,
            per_task=per_task,
        )

    def _fail_batch(self, requests: Sequence[ServingRequest], error: BaseException) -> None:
        """Surface an execution error on every future of a failed batch."""
        for request in requests:
            request.result.set_error(error)
        self.metrics.observe_error(len(requests))

    # ---------------------------------------------------------------- reports --
    def report(self) -> ServingReport:
        """Current metrics snapshot (final once :meth:`stop` returned).

        ``task_switches`` counts **per-worker** switches (each worker models
        one accelerator pipeline); :meth:`hardware_report` instead charges
        reloads on the single global interleaved schedule, which alternates
        more under multi-worker load — the two numbers answer different
        questions and are not expected to match.
        """
        dense, effective = self.recorder.mac_totals()
        return self.metrics.report(
            self.policy.name,
            self.workers,
            now=self._clock(),
            backend=self.backend,
            dense_macs=dense,
            effective_macs=effective,
        )

    def reset_stats(self) -> None:
        """Start a fresh measurement window (mirrors the offline engine).

        Clears the metrics *and* the sparsity recorder.  Long-lived runtimes
        should call this periodically: both grow with every served image
        (per-request latency samples, one schedule slot per image) and are
        never trimmed otherwise.
        """
        self.metrics.reset(self._clock() if self._started else None)
        self.recorder.reset()

    def sparsity_profile(self, default_sparsity: float = 0.0):
        """Measured per-task, per-layer sparsity as a simulator-ready profile."""
        return self.recorder.to_profile(default_sparsity=default_sparsity)

    def hardware_report(
        self,
        shapes: Sequence[LayerShape],
        config: ExecutionConfig | None = None,
        simulator: SystolicArraySimulator | None = None,
        conv_only: bool = False,
    ) -> BatchResult:
        """Simulate the *online* schedule this runtime actually executed.

        The recorder covers the runtime's whole lifetime: the interleaved
        order the worker pool produced under load is exactly the schedule the
        systolic-array simulator charges parameter reloads against.
        """
        return recorder_hardware_report(
            self.recorder, shapes, config=config, simulator=simulator, conv_only=conv_only
        )
