"""The thread-backed online serving runtime.

:class:`ServingRuntime` turns a compiled :class:`~repro.engine.EnginePlan`
into a concurrent service: clients ``submit()`` single images from any thread
and receive a :class:`~repro.serving.request.ServingResult` future; a
:class:`~repro.serving.batcher.DynamicBatcher` groups arrivals into per-task
micro-batches (closed on size or ``max_wait``); and a pool of worker threads
executes batches over the **shared, immutable** plan — each worker owns a
private :class:`~repro.engine.WorkspacePool`, so the NumPy GEMMs (which
release the GIL) run genuinely in parallel across workers serving *different*
tasks.  That is the software analogue of the paper's pipelined hardware
scenario, and the measured schedule/sparsity feed the same systolic-array
simulator via :meth:`ServingRuntime.hardware_report`.

Everything except the worker threads themselves lives in
:class:`~repro.serving.base.BaseRuntime`, which this class shares with the
process-backed :class:`~repro.serving.sharded.ShardedRuntime` — same
batcher, same scheduling policies, same metrics and reports, different
parallelism substrate.  Threads scale until the GIL-bound stages (im2col,
masking, batch assembly) saturate one core; past that point, switch to the
sharded backend.

Scheduling is pluggable (:mod:`repro.engine.scheduling`): ``fifo-deadline``
by default, with ``singular``/``pipelined``/``weighted-fair`` available.
Backpressure comes from the batcher's bounded queue (``max_pending``), with
per-submit choice of blocking or immediate rejection.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.engine.plan import WorkspacePool
from repro.engine.scheduling import MicroBatch
from repro.serving.base import BaseRuntime, PlanSet, run_plan_batch
from repro.serving.request import ServingRequest


class ServingRuntime(BaseRuntime):
    """Thread-parallel, dynamically-batched serving over one compiled plan."""

    backend = "thread"

    # --------------------------------------------------------- backend hooks --
    def _launch_workers(self) -> None:
        self._threads: List[threading.Thread] = []
        self._pools: List[WorkspacePool] = []
        for index in range(self.workers):
            pool = WorkspacePool()
            # Worker state carries the index so completed batches report
            # which worker ran them (the thread analogue of a shard id).
            thread = threading.Thread(
                target=self._worker_loop,
                args=((index, pool),),
                name=f"serving-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
            self._pools.append(pool)

    def _apply_swap(self, plans: PlanSet, timeout) -> None:
        """Cut over between micro-batches: one atomic snapshot assignment.

        Workers read the plan set once per batch, the batcher is drained and
        intake is paused, so no batch can straddle the assignment.  Old
        plans' workspace buffers are pruned from the worker pools by kernel
        uid — repeated swaps (the recalibration loop's steady state) would
        otherwise grow every pool without bound.
        """
        self._plans = plans
        # Under coalescing only the dense plan and each group's leader can
        # execute, so non-leader specialized plans' buffers are dead weight —
        # pruning by reachability is what keeps worker pools from scaling
        # with the task count in the many-task regime.
        live = plans.kernel_uids(reachable_only=self.coalesce)
        for pool in self._pools:
            pool.retain(live)

    def _join_workers(self, drain: bool, timeout: Optional[float]) -> None:
        # ``timeout`` bounds the *total* wait; if it elapses with workers
        # still running, stragglers keep completing futures in the background.
        give_up = None if timeout is None else self._clock() + timeout
        for thread in self._threads:
            remaining = None if give_up is None else max(0.0, give_up - self._clock())
            thread.join(remaining)

    def _execute(
        self, batch: MicroBatch, state, last_task: Optional[str]
    ) -> None:
        index, pool = state
        requests: List[ServingRequest] = batch.requests  # type: ignore[assignment]
        images = np.stack([request.image for request in requests])
        start = self._clock()
        # One snapshot read per batch: the whole batch executes against a
        # single consistent plan set even if a swap lands mid-flight.
        plans = self.plans
        plan, task_plans, row_tasks = plans.execution_for(batch)
        try:
            logits = run_plan_batch(
                plan, plans.plan.dynamic, images, batch.task, self.recorder, pool,
                row_tasks=row_tasks, task_plans=task_plans,
            )
        except Exception as error:  # pragma: no cover - defensive: surface, don't die
            self._fail_batch(requests, error)
            return
        finish = self._clock()
        per_task: Optional[dict] = None
        if batch.mixed:
            per_task = {}
            for name in batch.tasks:
                per_task[name] = per_task.get(name, 0) + 1
        self._complete_batch(
            requests,
            logits,
            batch.task,
            start,
            finish,
            # ``last_task`` carries the previous batch's routing key (see
            # BaseRuntime._worker_loop): back-to-back batches of one
            # coalescing group are not a switch.
            switched=last_task is not None and last_task != batch.routing_key,
            shard=index,
            per_task=per_task,
        )
