"""Chaos harness for the process-backed serving fleet.

Fault tolerance that is never exercised is fault tolerance that does not
work.  This module injects the failures the
:class:`~repro.serving.sharded.ShardedRuntime` supervisor is built to
survive — hard crashes, hangs, stragglers and silent heartbeat loss — either
programmatically from tests (:class:`FaultInjector`) or declaratively from
the CLI (``repro serve --chaos "crash:0@2.5,slow:1:4@1"``).

Two delivery paths, matching how real failures arrive:

* :meth:`FaultInjector.crash` kills the worker **from the parent** with a
  real ``SIGKILL`` — the child gets no chance to clean up, exactly like an
  OOM kill or a segfault.  It needs no cooperation from the worker.
* ``hang``/``slow``/``drop_heartbeats`` ride the ordinary command channel as
  ``("fault", kind, arg)`` messages.  Workers only honour them when spawned
  with chaos enabled (the ``chaos=True`` runtime flag or ``REPRO_CHAOS=1``),
  so a production fleet ignores a stray fault message instead of hanging.

Injected faults are *indistinguishable* from organic ones on the supervisor
side: a crash is reaped by process liveness, a hang or dropped heartbeat
flatlines via missed pings, a slow worker turns into a straggler that the
idle-shard work stealing routes around.  That equivalence is the point — the
chaos suite certifies the same code paths production failures take.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "parse_chaos_spec",
]

#: Fault kinds and whether each takes an argument (its meaning):
#: ``crash`` — none; ``hang`` — seconds the worker sleeps mid-loop;
#: ``slow`` — seconds added after every batch; ``drop_heartbeats`` — none.
FAULT_KINDS = {
    "crash": False,
    "hang": True,
    "slow": True,
    "drop_heartbeats": False,
}


class ChaosDisabledError(RuntimeError):
    """The target runtime was not started with chaos injection enabled."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: inject ``kind`` into ``shard`` at ``at`` seconds
    after the schedule starts (``arg`` per :data:`FAULT_KINDS`)."""

    kind: str
    shard: int
    arg: Optional[float] = None
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind '{self.kind}'; known: {sorted(FAULT_KINDS)}"
            )
        if FAULT_KINDS[self.kind] and self.arg is None:
            raise ValueError(f"fault '{self.kind}' requires an argument")
        if self.shard < 0:
            raise ValueError("shard index must be non-negative")
        if self.at < 0:
            raise ValueError("fault offset must be non-negative")


def parse_chaos_spec(spec: str) -> List[FaultEvent]:
    """Parse the CLI chaos DSL: ``kind:shard[:arg]@at`` comma-separated.

    Examples: ``crash:0@2.5`` (SIGKILL shard 0 after 2.5 s),
    ``slow:1:0.05@1`` (add 50 ms per batch on shard 1 after 1 s),
    ``crash:0@1,crash:1@2,drop_heartbeats:2@3``.
    """
    events: List[FaultEvent] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        body, _, at_text = chunk.partition("@")
        parts = body.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad chaos event '{chunk}': expected kind:shard[:arg]@at"
            )
        kind = parts[0].strip()
        try:
            shard = int(parts[1])
        except ValueError:
            raise ValueError(f"bad shard index in chaos event '{chunk}'") from None
        arg = None
        if len(parts) == 3:
            try:
                arg = float(parts[2])
            except ValueError:
                raise ValueError(f"bad argument in chaos event '{chunk}'") from None
        at = 0.0
        if at_text:
            try:
                at = float(at_text)
            except ValueError:
                raise ValueError(f"bad offset in chaos event '{chunk}'") from None
        events.append(FaultEvent(kind=kind, shard=shard, arg=arg, at=at))
    if not events:
        raise ValueError(f"chaos spec '{spec}' contains no events")
    return sorted(events, key=lambda event: event.at)


class FaultInjector:
    """Injects faults into a live :class:`~repro.serving.sharded.ShardedRuntime`.

    The runtime must have been constructed with ``chaos=True`` (or under
    ``REPRO_CHAOS=1``) — worker-side faults are a no-op in plain workers, and
    refusing up front beats silently doing nothing in a test.
    """

    def __init__(self, runtime) -> None:
        if not getattr(runtime, "chaos", False):
            raise ChaosDisabledError(
                "the runtime was not started with chaos=True; worker-side "
                "fault hooks are compiled out (set chaos=True or REPRO_CHAOS=1)"
            )
        self.runtime = runtime

    # ------------------------------------------------------------------ faults --
    def crash(self, shard: int) -> None:
        """SIGKILL ``shard``'s worker process from the parent — no cleanup,
        no goodbye, exactly like the kernel's OOM killer."""
        target = self._shard(shard)
        if target.process is not None and target.process.is_alive():
            target.process.kill()

    def hang(self, shard: int, seconds: float) -> None:
        """Make the worker sleep ``seconds`` inside its command loop — it
        stops answering heartbeats *and* executing, then (if the supervisor
        has not already replaced it) resumes."""
        self._send(shard, "hang", float(seconds))

    def slow(self, shard: int, seconds: float) -> None:
        """Turn the worker into a straggler: ``seconds`` of extra latency
        after every batch it executes, until respawned or told ``slow`` 0."""
        self._send(shard, "slow", float(seconds))

    def drop_heartbeats(self, shard: int) -> None:
        """Keep executing but never answer another ping — a silent partition
        between the worker and the supervisor.  The supervisor must flatline
        and replace it even though work still flows."""
        self._send(shard, "drop_heartbeats", None)

    def inject(self, event: FaultEvent) -> None:
        """Apply one parsed :class:`FaultEvent` now."""
        if event.kind == "crash":
            self.crash(event.shard)
        elif event.kind == "hang":
            self.hang(event.shard, event.arg or 0.0)
        elif event.kind == "slow":
            self.slow(event.shard, event.arg or 0.0)
        else:
            self.drop_heartbeats(event.shard)

    # ----------------------------------------------------------------- helpers --
    def _shard(self, index: int):
        shards = self.runtime._shards
        if not 0 <= index < len(shards):
            raise IndexError(f"shard {index} out of range (fleet of {len(shards)})")
        return shards[index]

    def _send(self, shard: int, kind: str, arg: Optional[float]) -> None:
        target = self._shard(shard)
        if target.dead:
            return
        target.task_queue.put(("fault", kind, arg))


class FaultSchedule:
    """Replays a list of :class:`FaultEvent`\\ s against a runtime on a
    background thread — the CLI's ``--chaos`` driver.

    Offsets are measured from :meth:`start` on ``clock`` (wall clock by
    default).  The thread is daemonic and also stops early via
    :meth:`stop`.
    """

    def __init__(
        self,
        runtime,
        events: Sequence[FaultEvent],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.injector = FaultInjector(runtime)
        self.events = sorted(events, key=lambda event: event.at)
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "FaultSchedule":
        self._thread = threading.Thread(
            target=self._run, name="chaos-schedule", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        epoch = self._clock()
        for event in self.events:
            while not self._stop.is_set():
                remaining = event.at - (self._clock() - epoch)
                if remaining <= 0:
                    break
                self._stop.wait(min(remaining, 0.05))
            if self._stop.is_set():
                return
            try:
                self.injector.inject(event)
            except (IndexError, OSError):
                # The fleet may have shrunk or stopped under us — chaos that
                # arrives after shutdown is simply dropped.
                return
