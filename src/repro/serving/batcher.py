"""Deadline-aware dynamic batching with bounded admission.

The :class:`DynamicBatcher` is the synchronisation heart of the serving
runtime.  Producers (client threads) push :class:`ServingRequest` objects in;
consumer workers pull closed :class:`~repro.engine.scheduling.MicroBatch`
units out.  A per-task *open* batch accumulates until either

* it reaches ``micro_batch`` requests (closed immediately — size trigger), or
* ``max_wait`` seconds elapse since its first request (closed by whichever
  worker wakes first — deadline trigger),

so a lone request never waits longer than ``max_wait`` for co-batching, which
is exactly the latency/throughput knob the benchmark sweeps.

Admission control: with ``max_pending > 0`` at most that many requests may be
waiting (open + ready).  Producers choose per call whether to **block** until
space frees (optionally bounded by a timeout) or be **rejected** immediately
with :class:`QueueFullError` — the classic overload policies.

All methods are thread-safe; one lock guards the whole structure with two
condition queues (``_can_submit`` for producers, ``_work`` for consumers).
"""

from __future__ import annotations

import time
from threading import Condition, Lock
from typing import Callable, Dict, List, Optional

from repro.engine.scheduling import MicroBatch, SchedulingPolicy
from repro.serving.request import QueueFullError, RuntimeClosedError, ServingRequest


class DynamicBatcher:
    """Thread-safe size-or-timeout micro-batcher with a bounded queue."""

    def __init__(
        self,
        micro_batch: int,
        max_wait: float,
        policy: SchedulingPolicy,
        max_pending: int = 0,
        clock: Callable[[], float] = time.monotonic,
        coalesce: Optional[Callable[[str], str]] = None,
    ) -> None:
        if micro_batch <= 0:
            raise ValueError("micro_batch must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if max_pending < 0:
            raise ValueError("max_pending must be non-negative (0 = unbounded)")
        self.micro_batch = micro_batch
        self.max_wait = max_wait
        self.policy = policy
        self.max_pending = max_pending
        #: Optional ``task -> coalescing group`` map.  When set, open batches
        #: bucket by group instead of task, so one micro-batch may carry
        #: requests of several tasks sharing a backbone (cross-task
        #: coalescing); the resulting :class:`MicroBatch` records the group
        #: and per-row tasks.  ``None`` preserves classic per-task batching.
        self.coalesce = coalesce
        self._clock = clock
        self._lock = Lock()
        self._can_submit = Condition(self._lock)
        self._work = Condition(self._lock)
        self._quiet = Condition(self._lock)
        self._open: Dict[str, List[ServingRequest]] = {}
        self._close_at: Dict[str, float] = {}
        self._ready: List[MicroBatch] = []
        self._seq: Dict[str, int] = {}
        self._pending = 0
        self._in_flight = 0
        self._served: Dict[str, int] = {}
        self._closed = False

    # ---------------------------------------------------------------- intake --
    def submit(
        self, request: ServingRequest, block: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Admit one request, or raise an :class:`AdmissionError`.

        ``block=False`` turns a full queue into an immediate
        :class:`QueueFullError`; ``block=True`` waits for space, up to
        ``timeout`` seconds when given.
        """
        with self._lock:
            if self._closed:
                raise RuntimeClosedError("the batcher no longer accepts requests")
            if self.max_pending:
                give_up = None if timeout is None else self._clock() + timeout
                while self._pending >= self.max_pending and not self._closed:
                    if not block:
                        raise QueueFullError(
                            f"queue at capacity ({self.max_pending} pending requests)"
                        )
                    remaining = None if give_up is None else give_up - self._clock()
                    if remaining is not None and remaining <= 0:
                        raise QueueFullError(
                            f"queue still full after waiting {timeout}s"
                        )
                    self._can_submit.wait(remaining)
                if self._closed:
                    raise RuntimeClosedError("the batcher closed while waiting for space")
            key = self.coalesce(request.task) if self.coalesce is not None else request.task
            bucket = self._open.setdefault(key, [])
            if not bucket:
                self._close_at[key] = self._clock() + self.max_wait
            bucket.append(request)
            self._pending += 1
            if len(bucket) >= self.micro_batch:
                self._close_open(key)
            # Wake workers either way: a new ready batch, or a new max-wait
            # timer they must start watching.
            self._work.notify_all()

    def requeue_batch(self, batch: MicroBatch) -> None:
        """Re-admit a previously dispatched batch after its worker died.

        The fault-tolerant re-dispatch path: every member request was already
        accepted (and charged against admission control) on its first pass, so
        this bypasses both the capacity bound and the ``closed`` gate — an
        accepted request must stay executable even while ``stop(drain=True)``
        is draining.  The batch keeps its original composition, which is what
        makes re-execution bit-identical to the first attempt on an immutable
        plan.
        """
        with self._lock:
            self._ready.append(batch)
            self._pending += len(batch)
            self._work.notify_all()

    def pending(self) -> int:
        """Requests admitted but not yet handed to a worker."""
        with self._lock:
            return self._pending

    def served_images(self) -> Dict[str, int]:
        """Images dispatched per task so far (introspection only — policies
        keep their own scheduling state)."""
        with self._lock:
            return dict(self._served)

    def depth_by_task(self) -> Dict[str, int]:
        """Instantaneous queued requests per task (open + ready batches).

        A gauge for the observability stream: unlike :meth:`pending` it says
        *where* the backlog sits, which is what per-task queue-depth
        monitoring needs.
        """
        with self._lock:
            # Buckets may be keyed by coalescing group, so walk the member
            # requests — per-task depth must stay exact either way.
            depths: Dict[str, int] = {}
            for bucket in self._open.values():
                for request in bucket:
                    depths[request.task] = depths.get(request.task, 0) + 1
            for batch in self._ready:
                for name in batch.tasks:
                    depths[name] = depths.get(name, 0) + 1
            return depths

    # ---------------------------------------------------------- lock helpers --
    def _close_open(self, key: str) -> None:
        """Move bucket ``key``'s open batch to the ready list.  Lock held.

        ``key`` is the task name under classic batching, or the coalescing
        group when :attr:`coalesce` is set — then the batch's ``task`` field
        holds the first member's task (a representative) and ``group`` the
        bucket key, so downstream consumers can tell the two apart.
        """
        bucket = self._open.pop(key)
        self._close_at.pop(key, None)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        group = key if self.coalesce is not None else None
        self._ready.append(MicroBatch(bucket[0].task, bucket, seq, group=group))

    def _close_expired(self, now: float) -> None:
        """Close every open batch whose max-wait deadline passed.  Lock held."""
        for task in [t for t, at in self._close_at.items() if at <= now]:
            self._close_open(task)

    # --------------------------------------------------------------- workers --
    def next_batch(self, last_task: Optional[str] = None) -> Optional[MicroBatch]:
        """Block until a batch is ready and return it; ``None`` on shutdown.

        The scheduling policy chooses among the ready batches;
        ``last_task`` is the calling worker's previous task so policies can
        minimise (singular) or maximise (pipelined) task alternation per
        worker.  Returns ``None`` only once the batcher is closed *and*
        drained.
        """
        with self._lock:
            while True:
                now = self._clock()
                self._close_expired(now)
                if self._ready:
                    batch = self.policy.pick(self._ready, last_task)
                    self._ready.remove(batch)
                    self._pending -= len(batch)
                    self._in_flight += 1
                    for name in batch.tasks:
                        self._served[name] = self._served.get(name, 0) + 1
                    self._can_submit.notify_all()
                    return batch
                if self._closed and not self._open:
                    return None
                wait = None
                if self._close_at:
                    wait = max(0.0, min(self._close_at.values()) - now)
                self._work.wait(wait)

    def task_done(self) -> None:
        """Mark one batch returned by :meth:`next_batch` as fully handled.

        Consumers call this after executing (or routing) the batch; it is
        what lets :meth:`quiescent` distinguish "queue empty" from "queue
        empty *and* nothing in a worker's hands" — the barrier the hot-swap
        control plane drains on.
        """
        with self._lock:
            self._in_flight -= 1
            self._quiet.notify_all()

    def quiescent(self, timeout: Optional[float] = None) -> bool:
        """Wait until nothing is pending and no handed-out batch is unfinished.

        Only meaningful while intake is externally paused (new submissions
        would re-arm the condition).  Returns ``False`` on timeout.  The
        *give-up deadline* runs on the injectable clock (so a swap timeout
        shares the runtime's clock domain and ManualClock tests can expire
        it), while the individual waits stay wall-clock chunked: the loop is
        woken by :meth:`task_done`/:meth:`next_batch` notifications, not by
        time passing, and re-checks the deadline at least every 0.25 s.
        """
        give_up = None if timeout is None else self._clock() + timeout
        with self._lock:
            while self._pending or self._in_flight:
                remaining = None if give_up is None else give_up - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._quiet.wait(0.25 if remaining is None else min(0.25, remaining))
            return True

    # -------------------------------------------------------------- shutdown --
    def flush(self) -> None:
        """Close every open batch now, regardless of size."""
        with self._lock:
            for task in list(self._open):
                self._close_open(task)
            self._work.notify_all()

    def close(self) -> None:
        """Stop admitting; already-admitted requests stay executable."""
        with self._lock:
            self._closed = True
            for task in list(self._open):
                self._close_open(task)
            self._work.notify_all()
            self._can_submit.notify_all()

    def drain_cancelled(self) -> List[ServingRequest]:
        """Remove and return every pending request (for ``stop(drain=False)``)."""
        with self._lock:
            for task in list(self._open):
                self._close_open(task)
            cancelled = [request for batch in self._ready for request in batch.requests]
            self._ready.clear()
            self._pending = 0
            self._work.notify_all()
            self._can_submit.notify_all()
            self._quiet.notify_all()
            return cancelled
