"""Online recalibration: measure → detect drift → re-specialize → hot-swap.

PR 3 made specialization a *manual* pipeline: calibrate offline, specialize,
hand the plans to a runtime.  This module closes the loop for a live service.
A :class:`RecalibrationLoop` periodically reads the fleet-wide per-channel
survival the serving runtime measured on **real traffic**
(:meth:`~repro.engine.SparsityRecorder.survival_profile` via
:meth:`~repro.serving.base.BaseRuntime.current_recorder`, which merges live
worker snapshots on the process backend), compares it against the
:class:`~repro.engine.CalibrationProfile` the currently-served plans were
specialized from, and — when the traffic has drifted — re-runs
:func:`~repro.engine.specialize_tasks` on the live profile and hot-swaps the
result into the runtime with zero dropped requests
(:meth:`~repro.serving.base.BaseRuntime.swap`).  Optionally every swap is
also published to a :class:`~repro.artifacts.ModelStore`, so the deployed
history stays reproducible.

Drift is judged two ways, both per (task, layer, channel):

* **rate drift** — the maximum absolute difference between live and baseline
  survival rates (``drift_threshold``);
* **classification flips** — channels whose dead/live verdict at
  ``dead_threshold`` changed, i.e. exactly the channels whose elimination
  status the specializer would decide differently today.

One observability caveat is inherent to serving specialized plans: a channel
the current specialization *eliminated* can never be observed firing again
(its work is simply not executed), so recalibration can tighten a
specialization as channels die but can only widen it for channels that were
kept.  Serve the dense plan for a fraction of traffic — or recalibrate from
a dense shadow runtime — when revival matters.  Survival measured on
compacted plans is mapped back to dense channel coordinates before any
comparison, so profiles stay comparable across swaps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.engine.calibrate import CalibrationProfile
from repro.engine.kernels import autotune_kernel_variants
from repro.engine.specialize import specialize_tasks
from repro.serving.base import PlanSet

__all__ = ["DriftReport", "RecalibrationEvent", "RecalibrationLoop"]


@dataclass(frozen=True)
class DriftReport:
    """How far live survival has moved from the calibration baseline."""

    #: Maximum |live - baseline| survival rate over every compared channel.
    max_rate_delta: float
    #: Channels whose dead/live classification at ``dead_threshold`` flipped.
    flipped_channels: int
    #: Channels compared (shared task/layer pairs with matching widths).
    compared_channels: int
    #: Per-task maximum rate delta, for operator visibility.
    per_task: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class RecalibrationEvent:
    """Outcome of one :meth:`RecalibrationLoop.check_once` pass."""

    checked_at: float
    images_seen: int
    drift: Optional[DriftReport]
    triggered: bool
    swapped: bool
    reason: str
    #: Store version published for this swap (``None`` when not publishing).
    published_version: Optional[str] = None


class RecalibrationLoop:
    """Watch live survival, re-specialize on drift, hot-swap the result.

    ``runtime`` must have been built with a channel-tracking recorder
    (``SparsityRecorder(channel_tracking=True)``) — without per-channel
    counts there is nothing to compare.  ``baseline`` is the profile the
    currently-served specializations came from (e.g. the one shipped in the
    deployed :class:`~repro.artifacts.ModelArtifact`); after every swap the
    live profile that triggered it becomes the new baseline.

    The loop is deliberately conservative: a task is only re-specialized
    once it has seen ``min_images`` images *and* every masked layer has
    measurements, and a swap only happens when drift clears
    ``drift_threshold`` or flips at least ``min_flips`` channel verdicts.
    ``check_once`` is synchronous and side-effect-complete, so tests (and
    operators) can drive the loop without the background thread that
    :meth:`start` runs every ``interval`` seconds.

    Keep ``reset_window=True`` (the default) unless you accept blended
    measurements: after a swap, counts accumulated under the *old*
    specialization describe the old compacted channel axis, and
    :meth:`live_profile` can only map them through the currently-served
    plans' provenance.  The recorder auto-restarts a layer's accumulation
    when its width changes, but a swap that keeps a layer's width while
    changing its live set would blend the two windows without a reset.
    """

    def __init__(
        self,
        runtime,
        baseline: CalibrationProfile,
        *,
        interval: float = 30.0,
        drift_threshold: float = 0.1,
        min_flips: int = 1,
        dead_threshold: float = 0.0,
        min_images: int = 64,
        specialize_kwargs: Optional[Dict[str, object]] = None,
        store=None,
        artifact_name: str = "recalibrated",
        reset_window: bool = True,
        swap_timeout: Optional[float] = 120.0,
        autotune_batch: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        recorder = getattr(runtime, "recorder", None)
        if not getattr(recorder, "channel_tracking", False):
            raise ValueError(
                "recalibration needs per-channel survival: build the runtime "
                "with recorder=SparsityRecorder(channel_tracking=True)"
            )
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= drift_threshold <= 1.0:
            raise ValueError("drift_threshold must lie in [0, 1]")
        self.runtime = runtime
        self.baseline = baseline
        self.interval = interval
        self.drift_threshold = drift_threshold
        self.min_flips = min_flips
        self.dead_threshold = dead_threshold
        self.min_images = min_images
        self.specialize_kwargs = dict(specialize_kwargs) if specialize_kwargs else {}
        self.store = store
        self.artifact_name = artifact_name
        self.reset_window = reset_window
        self.swap_timeout = swap_timeout
        #: Chooser batch size for chooser-tuned deployments (tasks whose
        #: deployed plan carried ``kernel_choices`` are re-tuned on the
        #: re-compacted geometry at swap time; unchanged geometries resolve
        #: from the process timing cache with zero re-timing).
        self.autotune_batch = autotune_batch
        self.events: List[RecalibrationEvent] = []
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -------------------------------------------------------------- measure --
    def live_profile(self) -> CalibrationProfile:
        """Current traffic's survival profile, in dense channel coordinates.

        Tasks served by a compacted specialized plan record survival over the
        compacted channel axis; their counts are scattered back onto the
        dense axis using the plan's ``live_channels`` provenance (eliminated
        channels read as 0.0 survival — they did no work, see the module
        docstring for the observability caveat).
        """
        profile = self.runtime.current_recorder().survival_profile()
        for task, spec_plan in self.runtime.specialized.items():
            live_channels = getattr(spec_plan, "live_channels", None)
            if not live_channels or task not in profile.survival:
                continue
            layers = profile.survival[task]
            for layer, rates in list(layers.items()):
                mask = live_channels.get(layer)
                if mask is None:
                    continue
                live_index = np.flatnonzero(mask)
                dense = np.zeros(mask.shape[0], dtype=float)
                dense[live_index] = np.asarray(rates, dtype=float)[: live_index.size]
                layers[layer] = dense
        return profile

    def drift(
        self,
        live: Optional[CalibrationProfile] = None,
        tasks: Optional[List[str]] = None,
    ) -> DriftReport:
        """Compare ``live`` (measured now when omitted) against the baseline.

        ``tasks`` restricts the comparison; :meth:`check_once` passes only
        the tasks that cleared the ``min_images`` gate, so a barely-served
        task's quantised survival rates cannot trigger fleet-wide swaps on
        sampling noise.
        """
        live = live if live is not None else self.live_profile()
        max_delta = 0.0
        flips = 0
        compared = 0
        per_task: Dict[str, float] = {}
        for task in live.tasks():
            if task not in self.baseline.survival:
                continue
            if tasks is not None and task not in tasks:
                continue
            task_delta = 0.0
            for layer in live.layers(task):
                if layer not in self.baseline.survival[task]:
                    continue
                now = np.asarray(live.rates(task, layer), dtype=float)
                then = np.asarray(self.baseline.rates(task, layer), dtype=float)
                if now.shape != then.shape:
                    continue  # incomparable geometry (e.g. swapped architecture)
                delta = np.abs(now - then)
                task_delta = max(task_delta, float(delta.max())) if delta.size else task_delta
                flips += int(
                    np.count_nonzero(
                        (now > self.dead_threshold) != (then > self.dead_threshold)
                    )
                )
                compared += int(now.size)
            per_task[task] = task_delta
            max_delta = max(max_delta, task_delta)
        return DriftReport(
            max_rate_delta=max_delta,
            flipped_channels=flips,
            compared_channels=compared,
            per_task=per_task,
        )

    def _publish_stream_event(self, event: RecalibrationEvent) -> None:
        """Mirror a drift-measuring check into the runtime's metrics stream.

        Feeds the observability layer: the event lands in the stream's event
        log and its ``max_rate_delta`` becomes the live sparsity-drift gauge
        window snapshots and the Prometheus endpoint report.  Guarded with
        ``getattr`` so the loop keeps working against runtime doubles that
        predate the stream.
        """
        stream = getattr(self.runtime, "stream", None)
        if stream is None or event.drift is None:
            return
        stream.record_event(
            "recalibration",
            detail=event.reason,
            value=event.drift.max_rate_delta,
            at=event.checked_at,
        )

    # ---------------------------------------------------------------- check --
    def _ready_tasks(self, live: CalibrationProfile) -> List[str]:
        """Tasks with enough traffic and full masked-layer coverage."""
        plan = self.runtime.plan
        needed = set(plan.masked_layer_names())
        ready = []
        for task in plan.task_names():
            if live.num_images.get(task, 0) < self.min_images:
                continue
            if task in live.survival and needed.issubset(live.survival[task]):
                ready.append(task)
        return ready

    def check_once(self) -> RecalibrationEvent:
        """One measure→compare→(maybe) re-specialize→(maybe) swap pass."""
        with self._lock:
            now = self._clock()
            live = self.live_profile()
            images_seen = sum(live.num_images.values())
            ready = self._ready_tasks(live)
            if not ready:
                event = RecalibrationEvent(
                    checked_at=now,
                    images_seen=images_seen,
                    drift=None,
                    triggered=False,
                    swapped=False,
                    reason=(
                        f"insufficient traffic: no task has {self.min_images} images "
                        "with full masked-layer coverage yet"
                    ),
                )
                self.events.append(event)
                return event
            drift = self.drift(live, tasks=ready)
            triggered = (
                drift.max_rate_delta >= self.drift_threshold
                or drift.flipped_channels >= self.min_flips
            )
            if not triggered:
                event = RecalibrationEvent(
                    checked_at=now,
                    images_seen=images_seen,
                    drift=drift,
                    triggered=False,
                    swapped=False,
                    reason=(
                        f"within tolerance: max rate delta {drift.max_rate_delta:.3f} "
                        f"< {self.drift_threshold}, {drift.flipped_channels} flips"
                    ),
                )
                self.events.append(event)
                self._publish_stream_event(event)
                return event
            version, publish_error = self._respecialize_and_swap(live, ready)
            reason = (
                f"drift {drift.max_rate_delta:.3f} / {drift.flipped_channels} "
                f"flipped channels over {len(ready)} task(s): re-specialized "
                "and hot-swapped"
            )
            if publish_error is not None:
                reason += f" (store publish failed: {publish_error!r})"
            event = RecalibrationEvent(
                checked_at=now,
                images_seen=images_seen,
                drift=drift,
                triggered=True,
                swapped=True,
                reason=reason,
                published_version=version,
            )
            self.events.append(event)
            self._publish_stream_event(event)
            return event

    def _respecialize_and_swap(
        self, live: CalibrationProfile, tasks: List[str]
    ) -> tuple:
        """Specialize ``tasks`` from ``live``, swap, roll the baseline, publish.

        Returns ``(published_version, publish_error)``.  Once the swap has
        succeeded the remaining steps must not unwind it: the measurement
        window is reset immediately (so the next drift comparison cannot
        blend old- and new-specialization counts), and a store-publish
        failure is captured and reported on the event instead of raised —
        the swap happened, and the record must say so.
        """
        def build(current: PlanSet) -> PlanSet:
            specialized = dict(current.specialized)
            kwargs = dict(self.specialize_kwargs)
            if "compact_reduction" not in kwargs:
                # Preserve the deployed artifact's compaction mode (a
                # bit-exact deployment must stay bit-exact across swaps).
                deployed = next(iter(specialized.values()), None)
                if deployed is not None and hasattr(deployed, "compact_reduction"):
                    kwargs["compact_reduction"] = deployed.compact_reduction
            fresh = specialize_tasks(
                current.plan,
                profile=live,
                tasks=tasks,
                dead_threshold=self.dead_threshold,
                **kwargs,
            )
            # Re-specialization resets kernel variants (new geometry).  A
            # deployed plan that was chooser-tuned gets the chooser re-run on
            # the *re-compacted* geometry rather than a blind replay of
            # choices measured on the old shapes: the process-level timing
            # cache makes this a pure lookup when the compacted widths did
            # not change (zero re-timing — tuned once, not per deploy), and
            # only genuinely new shapes pay for fresh measurements.
            for task, spec in fresh.items():
                deployed = specialized.get(task)
                choices = getattr(deployed, "kernel_choices", None)
                if choices:
                    autotune_kernel_variants(spec, batch=self.autotune_batch, seed=0)
            specialized.update(fresh)
            return PlanSet(current.plan, specialized)

        # swap_with holds the runtime's control lock across read + specialize
        # + swap, so a concurrent operator add_task/remove_task/swap cannot
        # interleave and be silently reverted by this derivation.
        plans = self.runtime.swap_with(build, timeout=self.swap_timeout)
        plan, specialized = plans.plan, plans.specialized
        # Roll the baseline per task: only the re-specialized tasks now serve
        # plans derived from `live` — a task that stayed on its old
        # specialization keeps its old baseline, so its drift is still
        # measured against the profile its plans actually came from.
        survival = dict(self.baseline.survival)
        num_images = dict(self.baseline.num_images)
        for task in tasks:
            survival[task] = live.survival[task]
            num_images[task] = live.num_images.get(task, 0)
        self.baseline = CalibrationProfile(survival=survival, num_images=num_images)
        if self.reset_window:
            # Fresh measurement window so the next drift comparison reflects
            # traffic served *by* the new plans, not a blend.
            self.runtime.reset_stats()
        version: Optional[str] = None
        publish_error: Optional[BaseException] = None
        if self.store is not None:
            from repro.artifacts import ModelArtifact

            try:
                artifact = ModelArtifact.from_plans(
                    self.artifact_name,
                    plan,
                    specialized,
                    calibration=live,
                    metadata={
                        "source": "online-recalibration",
                        "images_seen": sum(live.num_images.values()),
                        "tasks": list(tasks),
                    },
                )
                version = self.store.publish(artifact)
            except Exception as error:
                publish_error = error
        return version, publish_error

    # ----------------------------------------------------------------- loop --
    def start(self) -> "RecalibrationLoop":
        """Run :meth:`check_once` every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="serving-recalibration", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background loop (the last check, if any, completes)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "RecalibrationLoop":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.check_once()
            except Exception as error:  # keep the loop alive on transient failures
                self.events.append(
                    RecalibrationEvent(
                        checked_at=self._clock(),
                        images_seen=0,
                        drift=None,
                        triggered=False,
                        swapped=False,
                        reason=f"check failed: {error!r}",
                    )
                )

    # ------------------------------------------------------------- reporting --
    @property
    def last_event(self) -> Optional[RecalibrationEvent]:
        return self.events[-1] if self.events else None

    def swaps(self) -> int:
        """How many hot-swaps this loop has performed."""
        return sum(1 for event in self.events if event.swapped)

    def summary(self) -> str:
        """One line per recorded event, operator-facing."""
        lines = []
        for event in self.events:
            mark = "swap" if event.swapped else ("drift" if event.triggered else "ok")
            lines.append(f"[{mark}] t={event.checked_at:.2f} {event.reason}")
        return "\n".join(lines) if lines else "(no recalibration checks yet)"
