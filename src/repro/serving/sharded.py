"""Process-sharded serving: one plan, N supervised worker processes, rings.

The thread backend (:class:`~repro.serving.runtime.ServingRuntime`) scales
until the GIL-bound stages — im2col assembly, threshold masking, batch
stacking — saturate one core; the BLAS GEMMs release the GIL but everything
around them serialises.  :class:`ShardedRuntime` removes that ceiling by
running the workers as spawned **processes**:

* **Spawn-safe plan transport** — each worker rebuilds its
  :class:`~repro.engine.EnginePlan` (and any per-task specialized plans) from
  a picklable :class:`~repro.engine.PlanSetSpec` shipped once at startup,
  rather than pickling a live plan whose workspace pool and kernel uids are
  process-local by contract.
* **Shared-memory rings** — per worker, a fixed-slot input ring and output
  ring backed by :class:`multiprocessing.shared_memory.SharedMemory`.  The
  parent writes a micro-batch's images straight into a free input slot and
  sends only a tiny descriptor through the control queue; the worker runs the
  plan and writes logits into the matching output slot.  Activations never
  pass through pickle.
* **Task-affinity routing with work stealing** — a dispatcher thread pulls
  closed micro-batches from the same :class:`~repro.serving.batcher.
  DynamicBatcher` the thread backend uses and routes each batch to its
  task's home shard (stable hash), so a task's weights stay hot in one
  worker's caches; when the home shard is busy and another shard sits idle,
  the idle shard steals the batch instead.
* **Merged accounting** — every worker keeps a private
  :class:`~repro.engine.SparsityRecorder` and ships its snapshot home at
  shutdown; the parent folds them into one recorder, so
  :meth:`~repro.serving.base.BaseRuntime.hardware_report`, the sparsity
  profile and the effective-MAC totals in the final
  :class:`~repro.serving.metrics.ServingReport` cover the whole fleet.

**Supervision.**  Worker processes die — OOM kills, segfaults in native
kernels, machine hiccups — and a serving fleet must absorb that without
dropping accepted work.  A supervisor (a monitor thread ticking every
``heartbeat_interval`` seconds, plus the same logic run opportunistically
from the shutdown path) provides three guarantees:

* **Crash and flatline detection** — every tick polls process liveness *and*
  pings each worker down its ordered command channel.  A worker that is
  alive but silent (hung in a native call, or dropping heartbeats) for
  ``flatline_after`` consecutive ticks is declared flatlined, counted in the
  report, killed and treated as dead.  Detection does not require traffic:
  an idle fleet notices a crashed shard within one heartbeat interval.
* **Re-dispatch with a retry budget** — micro-batches in flight on a dead
  shard are re-queued *whole* (same composition, same immutable plans, so
  re-execution is bit-identical) after an exponential backoff on the
  runtime's injectable clock.  Each request carries ``attempts``/
  ``max_retries``; budget exhaustion fails its future with
  :class:`~repro.serving.request.RetryBudgetExceededError`, an unmeetable
  deadline with :class:`~repro.serving.request.DeadlineExpiredError`.
  Accepted requests therefore either complete with correct logits or fail
  with an explicit fault-attributed error — never silently vanish.
* **Respawn at the current generation** — dead shards are relaunched from
  the picklable specs of the *committed* plan set.  Restarts compose with
  the hot-swap control plane: a shard that dies mid-swap aborts that swap
  fleet-wide (no shard ever serves plans the others do not), and its
  replacement rejoins on whatever generation is committed when it comes up,
  catching up via an ordinary swap message if a commit landed while it was
  booting.

While the fleet is **degraded** (fewer live shards than configured), the
admission gate sheds load instead of queueing blind: with a bounded queue,
the bound tightens proportionally to the live fraction
(:class:`~repro.serving.request.QueueFullError`, counted as ``shed``); with
every shard dead and no restart possible, ``submit`` fails fast with
:class:`~repro.serving.request.NoLiveShardsError` instead of blocking on a
queue nobody will ever drain.

``stop(timeout=...)`` semantics differ from the thread backend in one way:
shared-memory rings cannot outlive the runtime, so when the timeout elapses
with workers still busy the stragglers are **terminated** and their inflight
requests fail, rather than completing in the background.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
import zlib
from multiprocessing import connection as mp_connection
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.plan import EnginePlan, WorkspacePool
from repro.engine.planspec import PlanSetSpec
from repro.engine.scheduling import MicroBatch
from repro.engine.stats import SparsityRecorder
from repro.serving.base import BaseRuntime, PlanSet, run_plan_batch
from repro.serving.request import (
    DeadlineExpiredError,
    NoLiveShardsError,
    QueueFullError,
    RequestCancelledError,
    RetryBudgetExceededError,
    ServingRequest,
)

__all__ = ["ShardedRuntime"]


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    Before 3.13 (``track=False``), an attaching process registers the segment
    with the resource tracker, which then unlinks it when *this* process
    exits — yanking the ring out from under the parent that owns it (and
    double-unregistering when the parent later unlinks for real).  Ownership
    stays with the parent: it created the segment, it unlinks it, so the
    attach here must leave no tracker record at all.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:  # pragma: no cover - interpreter-version dependent
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _skip_shared_memory(resource_name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original_register(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _shard_worker_main(
    worker_id: int,
    set_spec: PlanSetSpec,
    generation: int,
    in_name: str,
    out_name: str,
    in_slot_bytes: int,
    out_slot_bytes: int,
    input_shape: Tuple[int, int, int],
    dtype_name: str,
    channel_tracking: bool,
    chaos: bool,
    task_queue,
    result_conn,
) -> None:
    """Entry point of one spawned shard worker.

    Builds private plans from the shipped specs (fresh kernels, empty
    workspace pool — nothing is inherited from the parent), then serves
    descriptors until the ``None`` sentinel arrives, finally shipping its
    recorder snapshot home.  Control messages ride the same ordered queue as
    the batch descriptors: ``"reset"`` starts a fresh stats window,
    ``("snapshot", token)`` ships a live recorder snapshot home,
    ``("ping", token)`` is answered with a ``("pong", ...)`` heartbeat, and
    ``("swap", generation, set_spec)`` rebuilds the worker's plans in place —
    every descriptor enqueued before the swap has already executed against
    the old plans by the time it is processed, which is the per-shard half of
    the hot-swap ordering guarantee.

    ``generation`` identifies the plan snapshot this worker was built from;
    it rides the readiness ack so a worker respawned while a swap was
    committing can be caught up by the parent.  ``chaos=True`` arms the
    ``("fault", kind, arg)`` hooks used by :mod:`repro.serving.faults`; a
    plain worker ignores fault messages entirely.
    """
    try:
        plan, specialized = set_spec.build_all()
        in_shm = _attach_shm(in_name)
        out_shm = _attach_shm(out_name)
    except Exception as error:  # pragma: no cover - startup failure path
        result_conn.send(("fatal", worker_id, repr(error)))
        return
    dtype = np.dtype(dtype_name)
    pool = WorkspacePool()
    recorder = SparsityRecorder(channel_tracking=channel_tracking)
    #: generation -> (plan, specialized) built but not yet committed.
    pending_swaps: Dict[int, Tuple[EnginePlan, Dict[str, EnginePlan]]] = {}
    # Chaos state (armed only when the fleet was started with chaos=True).
    slow_penalty = 0.0
    drop_pings = False
    result_conn.send(("ready", worker_id, generation))
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            if message == "reset":
                # reset_stats() marker: ordered with the batch descriptors,
                # so the worker's window boundary matches dispatch order.
                recorder.reset()
                continue
            if isinstance(message[0], str):
                kind = message[0]
                if kind == "ping":
                    # Heartbeat: ordered behind whatever work is queued, so a
                    # prompt pong proves the command loop is actually turning.
                    if not drop_pings:
                        result_conn.send(("pong", worker_id, message[1]))
                elif kind == "snapshot":
                    result_conn.send(
                        ("snapshot", worker_id, message[1], recorder.snapshot())
                    )
                elif kind == "fault":
                    # Chaos hooks (repro.serving.faults).  Ignored unless the
                    # runtime armed them, so a stray fault message cannot take
                    # down a production worker.
                    _, fault_kind, arg = message
                    if chaos:
                        if fault_kind == "crash":
                            os.kill(os.getpid(), signal.SIGKILL)
                        elif fault_kind == "hang":
                            time.sleep(float(arg or 0.0))
                        elif fault_kind == "slow":
                            slow_penalty = float(arg or 0.0)
                        elif fault_kind == "drop_heartbeats":
                            drop_pings = True
                elif kind == "swap":
                    # Phase 1 of the two-phase swap: build the new plans but
                    # keep serving the old ones.  Installation waits for the
                    # parent's commit, which it only sends once *every* shard
                    # built successfully — a failed build on any shard aborts
                    # the whole fleet's swap, so shards can never disagree on
                    # which plans serve.
                    _, swap_generation, new_set_spec = message
                    try:
                        pending_swaps[swap_generation] = new_set_spec.build_all()
                    except Exception as error:
                        result_conn.send(
                            ("swap_failed", worker_id, swap_generation, repr(error))
                        )
                    else:
                        result_conn.send(("swap_built", worker_id, swap_generation))
                elif kind == "swap_commit":
                    staged = pending_swaps.pop(message[1], None)
                    if staged is not None:
                        plan, specialized = staged
                        # Fresh pool: the old plans' kernels (and their
                        # workspace uids) are gone for good.
                        pool = WorkspacePool()
                elif kind == "swap_abort":
                    pending_swaps.pop(message[1], None)
                continue
            # Batch descriptor: ``row_tasks`` is None for classic single-task
            # batches and the per-row task tuple for coalesced ones;
            # ``exec_task`` names the plan that executes (the coalescing
            # group's leader — for non-coalesced batches it equals ``task``).
            slot, task, n, row_tasks, exec_task = message
            images = np.ndarray(
                (n,) + tuple(input_shape),
                dtype=dtype,
                buffer=in_shm.buf,
                offset=slot * in_slot_bytes,
            )
            started = time.perf_counter()
            try:
                exec_plan = specialized.get(exec_task, plan)
                task_plans = None
                if row_tasks is not None and exec_plan is not plan:
                    # Specialized-group batch: the leader's kernels mask with
                    # each member's own compacted thresholds/head.
                    task_plans = {
                        name: specialized.get(name, plan).tasks[name]
                        for name in set(row_tasks)
                    }
                logits = run_plan_batch(
                    exec_plan, plan.dynamic, images, task, recorder, pool,
                    row_tasks=row_tasks, task_plans=task_plans,
                )
            except Exception as error:
                result_conn.send(("error", worker_id, slot, repr(error)))
                continue
            classes = logits.shape[1]
            out = np.ndarray(
                (n, classes), dtype=dtype, buffer=out_shm.buf, offset=slot * out_slot_bytes
            )
            out[:] = logits
            if slow_penalty:
                # Chaos straggler: correct results, pathological latency.
                time.sleep(slow_penalty)
            service = time.perf_counter() - started
            result_conn.send(("done", worker_id, slot, n, classes, service))
    finally:
        try:
            result_conn.send(("stats", worker_id, recorder.snapshot()))
        except (BrokenPipeError, OSError):  # parent already tore down
            pass
        in_shm.close()
        out_shm.close()


class _Shard:
    """Parent-side handle on one worker process and its rings.

    The handle survives its worker: on death the process/queue fields are
    replaced by the respawn path while the shared-memory rings (parent-owned)
    carry over.  ``generation`` is the plan snapshot the *current* worker
    serves, ``restarts`` how many times this slot has been respawned, and
    ``broken`` marks a slot whose replacement failed to boot (no further
    respawn attempts — a deterministic startup failure would loop forever).

    ``result_rx`` is the parent end of this worker's *private* result pipe.
    Results deliberately do not share one queue across the fleet: a
    ``multiprocessing.Queue`` guards its pipe with a shared write lock, and a
    worker SIGKILLed mid-``put`` dies holding it — wedging every surviving
    writer (pongs, readiness acks, results) and turning one crash into a
    fleet-wide hang.  One single-writer pipe per worker means a crash can
    corrupt at most its own channel, which dies with it.
    """

    __slots__ = (
        "index",
        "process",
        "task_queue",
        "result_rx",
        "in_shm",
        "out_shm",
        "free_slots",
        "inflight",
        "last_task",
        "dead",
        "generation",
        "needs_respawn",
        "broken",
        "restarts",
        "missed_pings",
        "ping_outstanding",
    )

    def __init__(self, index: int, ring_slots: int) -> None:
        self.index = index
        self.process = None
        self.task_queue = None
        self.result_rx = None
        self.in_shm: Optional[shared_memory.SharedMemory] = None
        self.out_shm: Optional[shared_memory.SharedMemory] = None
        self.free_slots: List[int] = list(range(ring_slots))
        self.inflight = 0
        self.last_task: Optional[str] = None
        self.dead = False
        self.generation = 0
        self.needs_respawn = False
        self.broken = False
        self.restarts = 0
        self.missed_pings = 0
        self.ping_outstanding: Optional[int] = None


class ShardedRuntime(BaseRuntime):
    """Process-parallel serving over spawn-safe copies of one compiled plan.

    Construction mirrors :class:`~repro.serving.ServingRuntime`; the extra
    knobs are ``mp_context`` (``"spawn"`` by default — the only start method
    that is safe everywhere; ``"fork"``/``"forkserver"`` are accepted where
    the platform offers them), ``ring_slots`` (micro-batches in flight per
    worker before the dispatcher backpressures) and ``start_timeout``
    (seconds to wait for every spawned worker to finish rebuilding its plan).

    Supervision knobs (see the module docstring for semantics):

    * ``heartbeat_interval`` — seconds between supervisor ticks; ``None``
      disables the monitor thread entirely, leaving supervision to explicit
      :meth:`_supervise_once` calls (deterministic tests on a manual clock).
    * ``flatline_after`` — consecutive unanswered-heartbeat ticks before an
      alive-but-silent worker is declared flatlined and replaced.  Its
      product with ``heartbeat_interval`` must exceed the worst-case service
      time of one micro-batch, or a merely slow worker gets shot.
    * ``restart`` / ``max_restarts`` — whether (and how many times in total)
      dead shards are respawned.
    * ``retry_backoff`` — base of the per-request exponential re-dispatch
      backoff (``retry_backoff * 2**(attempts-1)`` seconds on the injectable
      clock).  The per-request budget itself is ``max_retries`` on
      :class:`~repro.serving.base.BaseRuntime`.
    * ``chaos`` — arm the worker-side fault hooks for
      :class:`~repro.serving.faults.FaultInjector` (also armed by the
      ``REPRO_CHAOS=1`` environment variable).  Off by default.
    """

    backend = "process"

    def __init__(
        self,
        plan: EnginePlan,
        *,
        mp_context: str = "spawn",
        ring_slots: int = 4,
        start_timeout: float = 120.0,
        heartbeat_interval: Optional[float] = 0.25,
        flatline_after: int = 8,
        restart: bool = True,
        max_restarts: Optional[int] = None,
        retry_backoff: float = 0.05,
        chaos: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(plan, **kwargs)
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive (or None)")
        if flatline_after <= 0:
            raise ValueError("flatline_after must be positive")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        self._mp_context = get_context(mp_context)
        self._ring_slots = ring_slots
        self._start_timeout = start_timeout
        self._heartbeat_interval = heartbeat_interval
        self._flatline_after = flatline_after
        self._restart = restart
        self._max_restarts = max_restarts
        self._retry_backoff = retry_backoff
        self.chaos = bool(chaos) or os.environ.get("REPRO_CHAOS", "") not in ("", "0")
        itemsize = np.dtype(plan.dtype).itemsize
        per_image = int(np.prod(plan.input_shape))
        self._in_slot_bytes = self.micro_batch * per_image * itemsize
        self._max_classes = max(task.num_classes for task in plan.tasks.values())
        self._out_slot_bytes = self.micro_batch * self._max_classes * itemsize
        self._shards: List[_Shard] = []
        self._route_lock = threading.Lock()
        self._slot_freed = threading.Condition(self._route_lock)
        #: (worker_id, slot) -> (micro-batch, dispatch_time, switched).  The
        #: whole batch is kept so a shard death can re-queue it intact.
        self._inflight: Dict[Tuple[int, int], Tuple[MicroBatch, float, bool]] = {}
        #: (due_time, batch) re-dispatch entries, due on the injectable clock.
        self._retry_queue: List[Tuple[float, MicroBatch]] = []
        self._total_restarts = 0
        self._stats_pending: set = set()
        self._collector_done = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._supervise_lock = threading.Lock()
        self._stopping = False
        self._ping_tokens = itertools.count(1)
        # Committed plan snapshot in spec form: what a respawned shard is
        # rebuilt from.  Written under the route lock at launch and at swap
        # commit, read under it by the respawn path.
        self._current_set_spec: Optional[PlanSetSpec] = None
        self._current_generation = 0
        # Control-plane state: swap readiness acks and live snapshot probes
        # arriving on the result pipes, keyed by generation/token.
        self._control_cv = threading.Condition()
        self._swap_generations = itertools.count(1)
        self._swap_acks: Dict[int, Dict[int, Optional[str]]] = {}
        self._probe_tokens = itertools.count(1)
        self._probe_results: Dict[int, Dict[int, dict]] = {}

    # --------------------------------------------------------- backend hooks --
    def _launch_workers(self) -> None:
        set_spec = PlanSetSpec.capture(self.plan, self.specialized)
        with self._route_lock:
            self._current_set_spec = set_spec
            self._current_generation = 0
        self._stats_pending = set(range(self.workers))
        for index in range(self.workers):
            shard = _Shard(index, self._ring_slots)
            shard.in_shm = shared_memory.SharedMemory(
                create=True, size=self._ring_slots * self._in_slot_bytes
            )
            shard.out_shm = shared_memory.SharedMemory(
                create=True, size=self._ring_slots * self._out_slot_bytes
            )
            self._shards.append(shard)
            self._spawn_worker(shard, set_spec, 0)
        self._await_ready()
        self._collector = threading.Thread(
            target=self._collector_loop, name="serving-shard-collector", daemon=True
        )
        self._collector.start()
        self._dispatcher = threading.Thread(
            target=self._worker_loop, args=(None,), name="serving-shard-dispatcher", daemon=True
        )
        self._dispatcher.start()
        if self._heartbeat_interval is not None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="serving-shard-supervisor", daemon=True
            )
            self._monitor.start()

    def _spawn_worker(self, shard: _Shard, set_spec: PlanSetSpec, generation: int) -> None:
        """(Re)launch ``shard``'s worker process on ``set_spec``.

        The shared-memory rings carry over (parent-owned, still mapped); the
        command queue and the result pipe are always fresh — a dead worker
        may have left half-consumed descriptors in its old queue (stale
        descriptors replayed into a replacement would corrupt the slot
        accounting) and a half-written frame in its old pipe.
        """
        shard.task_queue = self._mp_context.Queue()
        result_rx, result_tx = self._mp_context.Pipe(duplex=False)
        shard.result_rx = result_rx
        shard.process = self._mp_context.Process(
            target=_shard_worker_main,
            name=f"serving-shard-{shard.index}",
            args=(
                shard.index,
                set_spec,
                generation,
                shard.in_shm.name,
                shard.out_shm.name,
                self._in_slot_bytes,
                self._out_slot_bytes,
                tuple(self.plan.input_shape),
                np.dtype(self.plan.dtype).name,
                getattr(self.recorder, "channel_tracking", False),
                self.chaos,
                shard.task_queue,
                result_tx,
            ),
            daemon=True,
        )
        shard.process.start()
        # Close the parent's copy of the send end: once the worker dies, its
        # pipe hits EOF instead of staying silently half-open.
        result_tx.close()

    def _poll_results(self, timeout: float) -> List[tuple]:
        """Drain every readable worker result pipe (at most one message each).

        The fleet's results arrive on per-worker pipes rather than one shared
        queue so that a SIGKILLed worker cannot poison a shared write lock
        for the survivors (see :class:`_Shard`).  A pipe that hits EOF or a
        torn frame — its worker died, possibly mid-``send`` — is retired
        here; the supervisor's reaper handles the death itself via process
        liveness, so nothing else needs to happen on this path.
        """
        with self._route_lock:
            conns = {
                shard.result_rx: shard
                for shard in self._shards
                if shard.result_rx is not None
            }
        if not conns:
            time.sleep(timeout)
            return []
        try:
            readable = mp_connection.wait(list(conns), timeout)
        except OSError:  # a pipe vanished mid-wait (teardown race)
            return []
        messages: List[tuple] = []
        for conn in readable:
            shard = conns[conn]
            try:
                messages.append(conn.recv())
            except (EOFError, OSError):
                with self._route_lock:
                    if shard.result_rx is conn:
                        shard.result_rx = None
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        return messages

    def _await_ready(self) -> None:
        """Block until every worker rebuilt its plan (so reported throughput
        measures serving, not interpreter spawn + NumPy import time).

        Deliberately wall-clock: this bounds real interpreter spawn time, and
        a manually-clocked runtime must still be able to start.
        """
        deadline = time.monotonic() + self._start_timeout
        waiting = set(range(self.workers))
        while waiting:
            for message in self._poll_results(0.25):
                kind = message[0]
                if kind == "ready":
                    waiting.discard(message[1])
                    self._shards[message[1]].generation = message[2]
                elif kind == "fatal":
                    self._teardown_processes(force=True)
                    raise RuntimeError(
                        f"shard worker {message[1]} failed to start: {message[2]}"
                    )
            for shard in self._shards:
                if shard.index in waiting and not shard.process.is_alive():
                    self._teardown_processes(force=True)
                    raise RuntimeError(
                        f"shard worker {shard.index} died during startup "
                        f"(exitcode {shard.process.exitcode})"
                    )
            if time.monotonic() > deadline:
                self._teardown_processes(force=True)
                raise RuntimeError(
                    f"shard workers not ready within {self._start_timeout}s"
                )

    # ----------------------------------------------------------------- routing --
    def _home_shard(self, task: str) -> int:
        """Stable task→shard affinity (keeps a task's weights cache-hot)."""
        return zlib.crc32(task.encode("utf-8")) % len(self._shards)

    def _pick_shard(self, task: str) -> Optional[_Shard]:
        """Home shard unless it is busy and someone else is idle.  Lock held."""
        live = [shard for shard in self._shards if not shard.dead]
        if not live:
            return None
        home = self._shards[self._home_shard(task)]
        if home.dead:
            # Re-home deterministically among the survivors.
            home = live[self._home_shard(task) % len(live)]
        if home.inflight == 0 and home.free_slots:
            return home
        idle = [shard for shard in live if shard.inflight == 0 and shard.free_slots]
        if idle:
            # Work stealing: the home shard is busy and these are not.
            return idle[0]
        return home

    def live_shards(self) -> int:
        """How many shard workers are currently accepting work."""
        with self._route_lock:
            return sum(1 for shard in self._shards if not shard.dead)

    def _worker_loop(self, state) -> None:
        """Dispatcher loop: like the base pull loop, but it must outlive the
        batcher's drained state while re-dispatch work is still possible.

        ``next_batch`` returns ``None`` once the batcher is closed and empty,
        yet a shard death can re-queue batches *after* that point (from the
        retry queue, or from the in-flight table of the dying shard).  The
        dispatcher therefore only exits when the batcher is drained **and**
        nothing is in flight or awaiting retry.
        """
        last_task: Optional[str] = None
        while True:
            batch = self._batcher.next_batch(last_task)
            if batch is None:
                with self._route_lock:
                    outstanding = bool(self._inflight) or bool(self._retry_queue)
                if not outstanding:
                    return
                time.sleep(0.01)
                continue
            try:
                self._execute(batch, state, last_task)
            finally:
                self._batcher.task_done()
            # Routing key, not raw task: consecutive batches of one
            # coalescing group share plan state and are not a switch.
            last_task = batch.routing_key

    def _execute(self, batch: MicroBatch, state, last_task: Optional[str]) -> None:
        """Route one closed micro-batch to a shard (dispatcher thread)."""
        requests: List[ServingRequest] = batch.requests  # type: ignore[assignment]
        plans = self.plans
        if batch.group is not None:
            row_tasks: Optional[tuple] = batch.tasks
            try:
                exec_task = plans.group_leader(batch.group)
            except KeyError:  # group map changed under us (swap drains first,
                exec_task = batch.task  # but stay safe): fall back per-task
                row_tasks = None
        else:
            row_tasks = None
            exec_task = batch.task
        with self._route_lock:
            while True:
                shard = self._pick_shard(batch.routing_key)
                if shard is None:
                    break
                if shard.free_slots:
                    slot = shard.free_slots.pop()
                    break
                # Chosen shard's ring is full: wait for the collector to free
                # a slot (or mark a shard dead), then re-route.
                self._slot_freed.wait(0.25)
            if shard is not None and shard.in_shm is not None:
                switched = (
                    shard.last_task is not None and shard.last_task != batch.routing_key
                )
                shard.last_task = batch.routing_key
                shard.inflight += 1
                dispatch_time = self._clock()
                self._inflight[(shard.index, slot)] = (batch, dispatch_time, switched)
                # Ring write under the lock: a timed-out stop() tears rings
                # down under the same lock, so the segment cannot vanish
                # mid-copy.  The copy is one micro-batch — microseconds.
                view = np.ndarray(
                    (len(requests),) + tuple(self.plan.input_shape),
                    dtype=self.plan.dtype,
                    buffer=shard.in_shm.buf,
                    offset=slot * self._in_slot_bytes,
                )
                for row, request in enumerate(requests):
                    view[row] = request.image  # cast to the plan dtype lands in the ring
                del view
                shard.task_queue.put(
                    (slot, batch.task, len(requests), row_tasks, exec_task)
                )
                return
            restartable = self._restart_capacity_locked()
        if restartable:
            # The whole fleet is momentarily dark but a respawn is coming:
            # park the batch in the retry queue (no attempt consumed — it was
            # never dispatched) instead of failing accepted work.
            self._requeue_or_fail(batch, "no live shard worker", dispatched=False)
        else:
            self._fail_batch(
                requests,
                NoLiveShardsError(
                    "no live shard worker to execute the batch and restarts "
                    "are disabled or exhausted"
                ),
            )

    # ----------------------------------------------------------- fault handling --
    def _restart_capacity_locked(self) -> bool:
        """Whether any future respawn is possible.  Route lock held."""
        if self._stopping or not self._restart:
            return False
        if self._max_restarts is not None and self._total_restarts >= self._max_restarts:
            return False
        return any(not shard.broken for shard in self._shards)

    def _handle_shard_death(self, shard: _Shard, cause: str) -> None:
        """Mark ``shard`` dead and re-dispatch (or fail) its in-flight work."""
        with self._route_lock:
            if shard.dead:
                return
            shard.dead = True
            shard.needs_respawn = True
            shard.missed_pings = 0
            shard.ping_outstanding = None
            stranded = [key for key in self._inflight if key[0] == shard.index]
            batches = [self._inflight.pop(key) for key in stranded]
            # Wake the dispatcher's slot wait and any drain loop: routing
            # decisions that included this shard are stale now.
            self._slot_freed.notify_all()
        self._stats_pending.discard(shard.index)
        # Once the dispatcher is gone nobody can execute a retry, so late
        # deaths during shutdown fail their work instead of parking it.
        retryable = not (
            self._stopping
            and (self._dispatcher is None or not self._dispatcher.is_alive())
        )
        reason = f"shard worker {shard.index} {cause}"
        for batch, _, _ in batches:
            if retryable:
                self._requeue_or_fail(batch, reason)
            else:
                self._fail_batch(batch.requests, RuntimeError(reason))

    def _requeue_or_fail(self, batch: MicroBatch, cause: str, dispatched: bool = True) -> None:
        """Re-queue ``batch`` after a failed dispatch, enforcing the budget.

        ``dispatched=True`` charges one attempt against every member request
        (the batch actually reached a shard that then died); ``False`` means
        the fleet was dark and no dispatch happened, so only the deadline can
        fail a request here.  Survivors are re-queued **as one batch** with
        the original composition — the property that makes re-execution
        bit-identical — and become due after an exponential backoff on the
        runtime's injectable clock.  Requests over budget fail with
        :class:`RetryBudgetExceededError`, requests whose deadline cannot be
        met even by the earliest retry with :class:`DeadlineExpiredError`.
        """
        now = self._clock()
        survivors: List[ServingRequest] = []
        over_budget: List[ServingRequest] = []
        expired: List[ServingRequest] = []
        for request in batch.requests:
            if dispatched:
                request.attempts += 1
            delay = self._retry_backoff * (2 ** max(0, request.attempts - 1))
            if request.attempts > request.max_retries:
                over_budget.append(request)
            elif request.deadline is not None and now + delay >= request.deadline:
                expired.append(request)
            else:
                survivors.append(request)
        if over_budget:
            attempts = over_budget[0].attempts
            self._fail_batch(
                over_budget,
                RetryBudgetExceededError(
                    f"request failed on {attempts} dispatch attempt(s) "
                    f"(max_retries={over_budget[0].max_retries}): {cause}"
                ),
            )
        if expired:
            self._fail_batch(
                expired,
                DeadlineExpiredError(
                    f"deadline unreachable by the earliest possible retry: {cause}"
                ),
            )
        if survivors:
            delay = self._retry_backoff * (2 ** max(0, survivors[0].attempts - 1))
            retry = (
                batch
                if len(survivors) == len(batch.requests)
                else MicroBatch(batch.task, survivors, batch.seq)
            )
            with self._route_lock:
                self._retry_queue.append((now + delay, retry))
            if dispatched:
                self.metrics.observe_redispatch(len(survivors))

    def _pump_retries(self, force: bool = False) -> None:
        """Move due retry-queue entries back into the batcher.

        The batcher is re-entered outside the route lock (its own lock
        suffices and the dispatcher takes the two in the opposite order).
        ``force=True`` ignores the backoff — used by drains, where finishing
        beats pacing.
        """
        now = self._clock()
        due: List[MicroBatch] = []
        with self._route_lock:
            keep: List[Tuple[float, MicroBatch]] = []
            for due_at, batch in self._retry_queue:
                if force or due_at <= now:
                    due.append(batch)
                else:
                    keep.append((due_at, batch))
            self._retry_queue = keep
        for batch in due:
            self._batcher.requeue_batch(batch)

    def _fail_retry_queue(self, error: BaseException) -> None:
        """Permanently fail everything still awaiting re-dispatch."""
        with self._route_lock:
            parked = [batch for _, batch in self._retry_queue]
            self._retry_queue = []
        for batch in parked:
            self._fail_batch(batch.requests, error)

    def _respawn_dead_shards(self) -> None:
        """Relaunch every dead shard at the committed plan generation."""
        for shard in self._shards:
            with self._route_lock:
                if not (shard.dead and shard.needs_respawn and not shard.broken):
                    continue
                if not self._restart_capacity_locked():
                    continue
                shard.needs_respawn = False
                shard.restarts += 1
                self._total_restarts += 1
                set_spec = self._current_set_spec
                generation = self._current_generation
            if shard.process is not None:
                shard.process.join(timeout=1.0)
            if shard.task_queue is not None:
                # The old queue may hold descriptors the dead worker never
                # consumed; they were already re-dispatched, so the queue is
                # garbage — release its feeder thread without flushing.
                shard.task_queue.cancel_join_thread()
                shard.task_queue.close()
                shard.task_queue = None
            self._spawn_worker(shard, set_spec, generation)
            self.metrics.observe_restart()
            self.stream.record_event(
                "restart", detail=f"shard {shard.index} respawned (restart #{shard.restarts})"
            )
            # The shard stays dead (unroutable) until its readiness ack
            # arrives on its result pipe; the collector reactivates it.

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self._heartbeat_interval):
            self._supervise_once()

    def _supervise_once(self) -> None:
        """One supervisor tick: reap, heartbeat, re-dispatch, respawn.

        Runs from the monitor thread every ``heartbeat_interval`` seconds and
        opportunistically from the shutdown path; with
        ``heartbeat_interval=None`` tests drive it explicitly, which makes
        every fault-tolerance state transition single-steppable on a manual
        clock.  Serialised by its own lock so overlapping callers cannot
        double-handle one death.
        """
        with self._supervise_lock:
            if not self._started:
                return
            # 1. Reap crashed workers — needs no traffic, so an idle fleet
            #    notices a dead shard within one tick.
            for shard in self._shards:
                if shard.dead or shard.process is None:
                    continue
                if not shard.process.is_alive():
                    self._handle_shard_death(
                        shard, f"died (exitcode {shard.process.exitcode})"
                    )
            # 2. Heartbeats: one outstanding ping per shard; a worker that
            #    answers nothing for flatline_after consecutive ticks is
            #    alive-but-gone (hung syscall, dropped heartbeats) and gets
            #    killed so the crash path above takes over cleanly.
            if not self._stopping:
                for shard in self._shards:
                    flatlined = False
                    with self._route_lock:
                        if shard.dead or shard.task_queue is None:
                            continue
                        if shard.ping_outstanding is not None:
                            shard.missed_pings += 1
                            flatlined = shard.missed_pings >= self._flatline_after
                        else:
                            token = next(self._ping_tokens)
                            shard.ping_outstanding = token
                            shard.task_queue.put(("ping", token))
                    if flatlined:
                        self.metrics.observe_flatline()
                        missed = shard.missed_pings
                        self.stream.record_event(
                            "flatline",
                            detail=f"shard {shard.index}: {missed} unanswered heartbeats",
                            value=float(missed),
                        )
                        if shard.process is not None and shard.process.is_alive():
                            shard.process.kill()
                            shard.process.join(5.0)
                        self._handle_shard_death(
                            shard, f"flatlined ({missed} unanswered heartbeats)"
                        )
            # 3. Re-dispatch retries whose backoff elapsed.
            self._pump_retries()
            # 4. Replace the fallen.
            if not self._stopping:
                self._respawn_dead_shards()

    # ----------------------------------------------------------- admission gate --
    def _admission_gate(self, block: bool) -> None:
        """Degradation-aware admission (runs inside :meth:`submit`).

        A fleet with zero live shards and no possible respawn fails fast —
        blocking a submitter on a queue nobody will drain converts a worker
        fault into a client hang.  A *degraded* fleet with a bounded queue
        tightens the bound to the live fraction of capacity and sheds the
        excess: the queue the operator sized for N workers would otherwise
        quietly become an N×-deep latency bomb in front of the survivors.
        """
        if not self._started or self._stopped:
            return
        with self._route_lock:
            live = sum(1 for shard in self._shards if not shard.dead)
            restartable = self._restart_capacity_locked()
            total = len(self._shards)
        if live == 0 and not restartable:
            raise NoLiveShardsError(
                "no live shards: every worker is dead and restarts are "
                "disabled or exhausted"
            )
        if live < total and self._batcher.max_pending:
            bound = max(1, self._batcher.max_pending * live // total)
            if self._batcher.pending() >= bound:
                self.metrics.observe_shed()
                raise QueueFullError(
                    f"degraded fleet ({live}/{total} shards live): shedding "
                    f"load beyond {bound} pending requests"
                )

    def shard_depths(self) -> Dict[int, int]:
        """Instantaneous in-flight micro-batches per shard (gauge).

        Dead shards report ``-1`` so a scrape distinguishes "idle" from
        "down" — the respawn path flips them back once the readiness ack
        lands.
        """
        if not self._started:
            return {}
        with self._route_lock:
            return {
                shard.index: (-1 if shard.dead else shard.inflight)
                for shard in self._shards
            }

    # --------------------------------------------------------------- collector --
    def _collector_loop(self) -> None:
        # The loop must survive a fully-dead fleet (stats_pending empty) so
        # it can process the readiness acks of respawned workers; it only
        # exits once shutdown began *and* every worker's final stats arrived.
        while self._stats_pending or not self._stopping:
            messages = self._poll_results(0.25)
            if not messages:
                if self._stopping:
                    # The monitor is (or is about to be) gone: drop the stats
                    # expectation of workers that died without reporting, or
                    # this loop never meets its exit condition.
                    for shard in self._shards:
                        if (
                            shard.index in self._stats_pending
                            and not shard.dead
                            and shard.process is not None
                            and not shard.process.is_alive()
                        ):
                            self._handle_shard_death(
                                shard, f"died (exitcode {shard.process.exitcode})"
                            )
                continue
            for message in messages:
                self._handle_result(message)
        self._collector_done.set()

    def _handle_result(self, message: tuple) -> None:
        kind = message[0]
        if kind == "done":
            _, worker_id, slot, n, classes, service = message
            self._finish_batch(worker_id, slot, n, classes, service)
        elif kind == "error":
            _, worker_id, slot, error_repr = message
            self._abort_batch(worker_id, slot, RuntimeError(error_repr))
        elif kind == "pong":
            _, worker_id, token = message
            with self._route_lock:
                shard = self._shards[worker_id]
                if not shard.dead and shard.ping_outstanding == token:
                    shard.ping_outstanding = None
                    shard.missed_pings = 0
        elif kind == "ready":
            self._reactivate_shard(message[1], message[2])
        elif kind == "fatal":
            # A *respawned* worker failed to boot (startup fatals during
            # launch are consumed by _await_ready).  Deterministic boot
            # failures would respawn-loop forever, so the slot is retired.
            with self._route_lock:
                self._shards[message[1]].broken = True
            self._stats_pending.discard(message[1])
        elif kind == "stats":
            _, worker_id, snapshot = message
            self.recorder.merge_snapshot(snapshot)
            self._stats_pending.discard(worker_id)
        elif kind in ("swap_built", "swap_failed"):
            _, worker_id, generation = message[:3]
            failure = message[3] if kind == "swap_failed" else None
            with self._control_cv:
                # Only record acks someone is still waiting for: a reply
                # landing after the waiter's timeout cleanup must not
                # recreate (and permanently leak) the entry.
                acks = self._swap_acks.get(generation)
                if acks is not None:
                    acks[worker_id] = failure
                    self._control_cv.notify_all()
        elif kind == "snapshot":
            _, worker_id, token, snapshot = message
            with self._control_cv:
                results = self._probe_results.get(token)
                if results is not None:
                    results[worker_id] = snapshot
                    self._control_cv.notify_all()

    def _reactivate_shard(self, worker_id: int, generation: int) -> None:
        """A respawned worker came up: route to it again (collector thread).

        If a swap committed while the worker was booting, its plans are one
        or more generations stale; an ordinary swap + immediate commit down
        its (empty) command queue catches it up before any batch descriptor
        can be enqueued behind them — the dispatcher only sees the shard as
        routable after this method flips ``dead`` under the route lock.
        """
        shard = self._shards[worker_id]
        if self._stopping:
            # Too late to serve: let it drain straight to its stats message.
            with self._route_lock:
                queue = shard.task_queue
            if queue is not None:
                self._stats_pending.add(worker_id)
                try:
                    queue.put(None)
                except (ValueError, OSError):  # closed by a racing teardown
                    self._stats_pending.discard(worker_id)
            return
        with self._route_lock:
            shard.generation = generation
            if generation != self._current_generation:
                shard.task_queue.put(
                    ("swap", self._current_generation, self._current_set_spec)
                )
                shard.task_queue.put(("swap_commit", self._current_generation))
                shard.generation = self._current_generation
            shard.free_slots = list(range(self._ring_slots))
            shard.inflight = 0
            shard.last_task = None
            shard.missed_pings = 0
            shard.ping_outstanding = None
            shard.dead = False
            self._stats_pending.add(worker_id)
            self._slot_freed.notify_all()

    def _finish_batch(self, worker_id: int, slot: int, n: int, classes: int, service: float) -> None:
        shard = self._shards[worker_id]
        finish = self._clock()
        # The ring read happens under the route lock so a timed-out stop()
        # cannot unlink the segment mid-copy (teardown takes the same lock).
        with self._route_lock:
            entry = self._inflight.pop((worker_id, slot), None)
            if entry is None or shard.out_shm is None:
                return  # already failed/re-dispatched by the supervisor
            batch, dispatch_time, switched = entry
            out = np.ndarray(
                (n, classes),
                dtype=self.plan.dtype,
                buffer=shard.out_shm.buf,
                offset=slot * self._out_slot_bytes,
            )
            logits = np.array(out)  # copy out before the slot is recycled
            shard.free_slots.append(slot)
            shard.inflight -= 1
            self._slot_freed.notify_all()
        start = max(dispatch_time, finish - service)
        per_task: Optional[Dict[str, int]] = None
        if batch.mixed:
            per_task = {}
            for name in batch.tasks:
                per_task[name] = per_task.get(name, 0) + 1
        self._complete_batch(
            batch.requests,
            logits,
            batch.task,
            start,
            finish,
            switched=switched,
            shard=worker_id,
            per_task=per_task,
        )

    def _abort_batch(self, worker_id: int, slot: int, error: BaseException) -> None:
        shard = self._shards[worker_id]
        with self._route_lock:
            entry = self._inflight.pop((worker_id, slot), None)
            if entry is None:
                return
            batch, _, _ = entry
            shard.free_slots.append(slot)
            shard.inflight -= 1
            self._slot_freed.notify_all()
        # An execution error is not a fault: the worker is healthy and the
        # same batch would fail the same way again, so no retry.
        self._fail_batch(batch.requests, error)

    # ------------------------------------------------------------ control plane --
    def _wait_control(self, predicate, timeout: Optional[float], describe):
        """Wait on the control condition until ``predicate()`` returns non-None.

        The single deadline-arithmetic loop behind every control-plane
        acknowledgement wait (swap acks, stats probes).  ``predicate`` runs
        under the condition lock and may raise to abort the wait;
        ``describe()`` renders the :class:`TimeoutError` message.

        The give-up deadline runs on the runtime's injectable clock; the
        individual waits stay wall-clock chunked (they are woken by acks,
        not by time) and re-check the deadline at least every 0.25 s.
        """
        give_up = None if timeout is None else self._clock() + timeout
        with self._control_cv:
            while True:
                result = predicate()
                if result is not None:
                    return result
                remaining = None if give_up is None else give_up - self._clock()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(describe())
                self._control_cv.wait(
                    0.25 if remaining is None else min(0.25, remaining)
                )

    def _validate_swap(self, plans: PlanSet) -> None:
        """Input/dtype checks plus the ring-geometry bound of this backend."""
        super()._validate_swap(plans)
        widest = max(task.num_classes for task in plans.plan.tasks.values())
        if widest > self._max_classes:
            raise ValueError(
                f"cannot swap: task head width {widest} exceeds the output-ring "
                f"slot geometry ({self._max_classes} classes) this fleet was "
                "sized for at start()"
            )

    def _drain_in_flight(self, timeout: Optional[float]) -> None:
        """Wait until every dispatched *and parked* batch has come home.

        Called with intake paused and the batcher quiescent, so no new
        request can appear; the collector empties :attr:`_inflight` as the
        workers finish against the old plans.  Batches parked for re-dispatch
        are admitted work too — they are pumped immediately (finishing the
        drain beats honouring backoff) and must complete before the cutover.

        The give-up deadline runs on the runtime's injectable clock so the
        swap timeout it serves stays in one clock domain end to end.
        """
        give_up = None if timeout is None else self._clock() + timeout
        while True:
            self._pump_retries(force=True)
            with self._route_lock:
                if not self._inflight and not self._retry_queue:
                    return
                if (
                    all(shard.dead for shard in self._shards)
                    and not self._restart_capacity_locked()
                ):
                    return  # teardown already failed everything in flight
                remaining = None if give_up is None else give_up - self._clock()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"in-flight batches did not drain within {timeout}s; "
                        "the old plans are still serving"
                    )
                self._slot_freed.wait(0.25 if remaining is None else min(0.25, remaining))

    def _apply_swap(self, plans: PlanSet, timeout: Optional[float]) -> None:
        """Two-phase cutover: every shard builds, then all commit — or none.

        Phase 1 ships the rebuild specs down each shard's ordered command
        channel (processed strictly after every batch descriptor enqueued
        before it — the queues are empty anyway after
        :meth:`_drain_in_flight`); workers build the new plans but keep
        serving the old ones, acking success or failure.  Only when **every**
        live shard has built does the parent send the commit and update its
        own plan set; on any build failure, ack timeout, or a target shard
        **dying mid-swap** it sends an abort instead and raises, so the fleet
        can never split between old and new plans — shards agree with each
        other and with the intake side in every outcome.  A shard whose death
        aborted the swap is respawned by the supervisor on the *committed*
        (old) generation, exactly like any other crash; a shard that comes
        up while a later swap is committing is caught up by the post-commit
        generation scan below.
        """
        generation = next(self._swap_generations)
        set_spec = PlanSetSpec.capture(plans.plan, plans.specialized)
        with self._control_cv:
            # Registered before the first message can be answered; the
            # collector drops acks for generations nobody waits on.
            self._swap_acks[generation] = {}
        with self._route_lock:
            targets = [shard for shard in self._shards if not shard.dead]
            for shard in targets:
                shard.task_queue.put(("swap", generation, set_spec))
        if not targets:
            self._swap_acks.pop(generation, None)
            raise RuntimeError("no live shard worker to swap plans on")

        def abort() -> None:
            with self._route_lock:
                for shard in targets:
                    if not shard.dead and shard.task_queue is not None:
                        shard.task_queue.put(("swap_abort", generation))

        still_waiting: List[int] = []

        def all_built():
            acks = self._swap_acks.get(generation, {})
            failures = {
                worker: error for worker, error in acks.items() if error is not None
            }
            if failures:
                raise RuntimeError(
                    "plan swap failed in shard worker(s) "
                    + ", ".join(f"{w}: {e}" for w, e in sorted(failures.items()))
                    + " — the swap was aborted fleet-wide; the old plans "
                    "keep serving everywhere"
                )
            lost = [
                shard.index
                for shard in targets
                if shard.index not in acks
                and (
                    shard.dead
                    or shard.process is None
                    or not shard.process.is_alive()
                )
            ]
            if lost:
                raise RuntimeError(
                    f"shard worker(s) {lost} died mid-swap — the swap was "
                    "aborted fleet-wide; the old plans keep serving "
                    "everywhere and the replacement rejoins on the committed "
                    "generation"
                )
            still_waiting[:] = [
                shard.index for shard in targets if shard.index not in acks
            ]
            return True if not still_waiting else None

        try:
            self._wait_control(
                all_built,
                timeout,
                lambda: (
                    f"shard workers {still_waiting} did not acknowledge the swap "
                    f"within {timeout}s — the swap was aborted fleet-wide; "
                    "the old plans keep serving everywhere"
                ),
            )
        except BaseException:
            abort()
            raise
        finally:
            self._swap_acks.pop(generation, None)
        # Phase 2: every shard is staged; commit messages are ordered before
        # any batch descriptor dispatched after intake resumes, so a request
        # admitted against the new plan set always executes on it.  The
        # committed snapshot becomes what respawns rebuild from, and any
        # shard that reactivated mid-swap (not in targets) is caught up here
        # before the dispatcher can route to it with stale plans.
        with self._route_lock:
            for shard in targets:
                if not shard.dead and shard.task_queue is not None:
                    shard.task_queue.put(("swap_commit", generation))
                    shard.generation = generation
            self._plans = plans
            self._current_set_spec = set_spec
            self._current_generation = generation
            for shard in self._shards:
                if (
                    not shard.dead
                    and shard.task_queue is not None
                    and shard.generation != generation
                ):
                    shard.task_queue.put(("swap", generation, set_spec))
                    shard.task_queue.put(("swap_commit", generation))
                    shard.generation = generation

    def current_recorder(self, timeout: float = 30.0) -> SparsityRecorder:
        """A merged live view of every worker's recorder plus the parent's own.

        Sends a snapshot probe down each shard's ordered command channel and
        folds the replies (plus whatever the parent recorder already merged
        from dead workers) into a **fresh** recorder — the parent's recorder
        itself is left untouched, so the final merge at ``stop()`` cannot
        double count.
        """
        if not self._started or self._stopped:
            return self.recorder
        token = next(self._probe_tokens)
        with self._control_cv:
            # Registered before the first probe can be answered; the
            # collector drops replies for tokens nobody waits on.
            self._probe_results[token] = {}
        with self._route_lock:
            targets = [shard for shard in self._shards if not shard.dead]
            for shard in targets:
                shard.task_queue.put(("snapshot", token))
        merged = SparsityRecorder(
            channel_tracking=getattr(self.recorder, "channel_tracking", False)
        )
        merged.merge_snapshot(self.recorder.snapshot())
        still_waiting: List[int] = []

        def all_answered():
            results = self._probe_results.get(token, {})
            still_waiting[:] = [
                shard.index
                for shard in targets
                if shard.index not in results
                and not shard.dead
                and shard.process is not None
                and shard.process.is_alive()
            ]
            return dict(results) if not still_waiting else None

        try:
            results = self._wait_control(
                all_answered,
                timeout,
                lambda: f"shard workers {still_waiting} did not answer the stats probe",
            )
        finally:
            self._probe_results.pop(token, None)
        for snapshot in results.values():
            merged.merge_snapshot(snapshot)
        return merged

    # ----------------------------------------------------------------- stats --
    def reset_stats(self) -> None:
        """Start a fresh measurement window across the whole fleet.

        Clears the parent's metrics/recorder and sends each worker a reset
        marker through its control queue, so worker-side recorders (merged
        into the parent at ``stop()``) drop everything dispatched before the
        reset.  The marker is ordered with the batch descriptors: batches
        dispatched before the reset land in the old window even if they are
        still executing when this returns — the same in-progress blur the
        thread backend's reset has.
        """
        super().reset_stats()
        if self._started and not self._stopped:
            with self._route_lock:
                for shard in self._shards:
                    if not shard.dead and shard.task_queue is not None:
                        shard.task_queue.put("reset")

    # ---------------------------------------------------------------- shutdown --
    def _join_workers(self, drain: bool, timeout: Optional[float]) -> None:
        # Deliberately wall-clock: teardown must stay bounded even when the
        # runtime's injectable clock is a ManualClock nobody advances.
        give_up = None if timeout is None else time.monotonic() + timeout

        def remaining(default: Optional[float] = None) -> Optional[float]:
            if give_up is None:
                return default
            return max(0.0, give_up - time.monotonic())

        # 0. No more respawns: a worker spawned during shutdown would race
        #    the teardown for its rings.  Re-dispatch keeps working while the
        #    dispatcher drains — accepted requests still complete on the
        #    surviving shards.
        self._stopping = True
        if not drain:
            self._fail_retry_queue(
                RequestCancelledError("request cancelled by stop(drain=False)")
            )
        # 1. The dispatcher drains the batcher (closed by stop()) plus any
        #    re-queued batches, then exits.  Supervision keeps ticking
        #    underneath it even when the monitor thread is disabled.
        if self._dispatcher is not None:
            while self._dispatcher.is_alive():
                wait = remaining()
                if wait is not None and wait <= 0:
                    break
                self._supervise_once()
                self._dispatcher.join(0.05)
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(remaining(5.0))
        # Nothing can execute a retry any more.
        self._fail_retry_queue(
            RequestCancelledError("request undeliverable: runtime stopped")
            if not drain
            else NoLiveShardsError(
                "request could not be re-dispatched before the runtime stopped"
            )
        )
        # 2. Sentinels let each worker finish its queue, report stats, exit.
        #    Every queue gets one — including shards still flagged dead: a
        #    respawn that is mid-boot when stop() lands has a live process
        #    waiting on a fresh queue, and its readiness ack may arrive after
        #    the collector already drained the last tracked stats snapshot.
        #    Without a parked sentinel that worker would block on its queue
        #    forever and the join below would never return.
        with self._route_lock:
            for shard in self._shards:
                if shard.task_queue is not None:
                    try:
                        shard.task_queue.put(None)
                    except (ValueError, OSError):  # racing teardown closed it
                        pass
        # 3. The collector exits once every worker's stats snapshot arrived.
        self._collector_done.wait(remaining())
        stragglers = [
            shard
            for shard in self._shards
            if shard.process is not None and shard.process.is_alive()
        ]
        # By now every tracked worker has exited (its stats arrived); anything
        # still alive is mid-exit or a booting respawn draining to its parked
        # sentinel — both bounded, so cap the wait and let the forced teardown
        # below terminate a worker that is truly wedged.
        for shard in stragglers:
            shard.process.join(remaining(30.0))
        self._teardown_processes(force=True)
        if self._collector is not None:
            self._collector.join(remaining(1.0))

    def _teardown_processes(self, force: bool) -> None:
        """Terminate stragglers, fail their futures, release the rings.

        Marks every shard dead under the route lock and wakes the
        dispatcher's slot-wait loop: after a timed-out ``stop()`` the
        dispatcher may still be blocked waiting for a free slot, and it must
        observe a fleet with no live shard so the batch it is holding (and
        everything still queued) fails fast instead of hanging its futures.
        """
        self._stopping = True
        self._monitor_stop.set()
        for shard in self._shards:
            if shard.process is not None and shard.process.is_alive():
                if not force:
                    continue
                shard.process.terminate()
                shard.process.join(5.0)
            with self._route_lock:
                shard.dead = True
                shard.needs_respawn = False
                stranded = [key for key in self._inflight if key[0] == shard.index]
                batches = [self._inflight.pop(key) for key in stranded]
                for shm in (shard.in_shm, shard.out_shm):
                    if shm is None:
                        continue
                    try:
                        shm.close()
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover - already gone
                        pass
                shard.in_shm = shard.out_shm = None
                self._slot_freed.notify_all()
            for batch, _, _ in batches:
                self._fail_batch(
                    batch.requests,
                    RuntimeError(f"shard worker {shard.index} terminated at stop()"),
                )
            if shard.task_queue is not None:
                shard.task_queue.close()
                shard.task_queue = None
            if shard.result_rx is not None:
                try:
                    shard.result_rx.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                shard.result_rx = None
        self._fail_retry_queue(
            RequestCancelledError("request undeliverable: runtime torn down")
        )
        self._stats_pending = set()
        self._collector_done.set()
