"""Process-sharded serving: one plan, N worker processes, zero-copy rings.

The thread backend (:class:`~repro.serving.runtime.ServingRuntime`) scales
until the GIL-bound stages — im2col assembly, threshold masking, batch
stacking — saturate one core; the BLAS GEMMs release the GIL but everything
around them serialises.  :class:`ShardedRuntime` removes that ceiling by
running the workers as spawned **processes**:

* **Spawn-safe plan transport** — each worker rebuilds its
  :class:`~repro.engine.EnginePlan` (and any per-task specialized plans) from
  a picklable :class:`~repro.engine.PlanSpec` shipped once at startup, rather
  than pickling a live plan whose workspace pool and kernel uids are
  process-local by contract.
* **Shared-memory rings** — per worker, a fixed-slot input ring and output
  ring backed by :class:`multiprocessing.shared_memory.SharedMemory`.  The
  parent writes a micro-batch's images straight into a free input slot and
  sends only a tiny descriptor through the control queue; the worker runs the
  plan and writes logits into the matching output slot.  Activations never
  pass through pickle.
* **Task-affinity routing with work stealing** — a dispatcher thread pulls
  closed micro-batches from the same :class:`~repro.serving.batcher.
  DynamicBatcher` the thread backend uses and routes each batch to its
  task's home shard (stable hash), so a task's weights stay hot in one
  worker's caches; when the home shard is busy and another shard sits idle,
  the idle shard steals the batch instead.
* **Merged accounting** — every worker keeps a private
  :class:`~repro.engine.SparsityRecorder` and ships its snapshot home at
  shutdown; the parent folds them into one recorder, so
  :meth:`~repro.serving.base.BaseRuntime.hardware_report`, the sparsity
  profile and the effective-MAC totals in the final
  :class:`~repro.serving.metrics.ServingReport` cover the whole fleet.

``stop(timeout=...)`` semantics differ from the thread backend in one way:
shared-memory rings cannot outlive the runtime, so when the timeout elapses
with workers still busy the stragglers are **terminated** and their inflight
requests fail, rather than completing in the background.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
import zlib
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.plan import EnginePlan, WorkspacePool
from repro.engine.planspec import PlanSpec
from repro.engine.scheduling import MicroBatch
from repro.engine.stats import SparsityRecorder
from repro.serving.base import BaseRuntime, PlanSet, run_plan_batch
from repro.serving.request import ServingRequest

__all__ = ["ShardedRuntime"]


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it for cleanup.

    Before 3.13 (``track=False``), an attaching process registers the segment
    with the resource tracker, which then unlinks it when *this* process
    exits — yanking the ring out from under the parent that owns it (and
    double-unregistering when the parent later unlinks for real).  Ownership
    stays with the parent: it created the segment, it unlinks it, so the
    attach here must leave no tracker record at all.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:  # pragma: no cover - interpreter-version dependent
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _skip_shared_memory(resource_name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original_register(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _shard_worker_main(
    worker_id: int,
    plan_spec: PlanSpec,
    specialized_specs: Dict[str, PlanSpec],
    in_name: str,
    out_name: str,
    in_slot_bytes: int,
    out_slot_bytes: int,
    input_shape: Tuple[int, int, int],
    dtype_name: str,
    channel_tracking: bool,
    task_queue,
    result_queue,
) -> None:
    """Entry point of one spawned shard worker.

    Builds private plans from the shipped specs (fresh kernels, empty
    workspace pool — nothing is inherited from the parent), then serves
    descriptors until the ``None`` sentinel arrives, finally shipping its
    recorder snapshot home.  Control messages ride the same ordered queue as
    the batch descriptors: ``"reset"`` starts a fresh stats window,
    ``("snapshot", token)`` ships a live recorder snapshot home, and
    ``("swap", generation, plan_spec, specialized_specs)`` rebuilds the
    worker's plans in place — every descriptor enqueued before the swap has
    already executed against the old plans by the time it is processed,
    which is the per-shard half of the hot-swap ordering guarantee.
    """
    try:
        plan = plan_spec.build()
        specialized = {name: spec.build() for name, spec in specialized_specs.items()}
        in_shm = _attach_shm(in_name)
        out_shm = _attach_shm(out_name)
    except Exception as error:  # pragma: no cover - startup failure path
        result_queue.put(("fatal", worker_id, repr(error)))
        return
    dtype = np.dtype(dtype_name)
    pool = WorkspacePool()
    recorder = SparsityRecorder(channel_tracking=channel_tracking)
    #: generation -> (plan, specialized) built but not yet committed.
    pending_swaps: Dict[int, Tuple[EnginePlan, Dict[str, EnginePlan]]] = {}
    result_queue.put(("ready", worker_id))
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            if message == "reset":
                # reset_stats() marker: ordered with the batch descriptors,
                # so the worker's window boundary matches dispatch order.
                recorder.reset()
                continue
            if isinstance(message[0], str):
                kind = message[0]
                if kind == "snapshot":
                    result_queue.put(
                        ("snapshot", worker_id, message[1], recorder.snapshot())
                    )
                elif kind == "swap":
                    # Phase 1 of the two-phase swap: build the new plans but
                    # keep serving the old ones.  Installation waits for the
                    # parent's commit, which it only sends once *every* shard
                    # built successfully — a failed build on any shard aborts
                    # the whole fleet's swap, so shards can never disagree on
                    # which plans serve.
                    _, generation, new_plan_spec, new_specialized_specs = message
                    try:
                        pending_swaps[generation] = (
                            new_plan_spec.build(),
                            {
                                name: spec.build()
                                for name, spec in new_specialized_specs.items()
                            },
                        )
                    except Exception as error:
                        result_queue.put(
                            ("swap_failed", worker_id, generation, repr(error))
                        )
                    else:
                        result_queue.put(("swap_built", worker_id, generation))
                elif kind == "swap_commit":
                    staged = pending_swaps.pop(message[1], None)
                    if staged is not None:
                        plan, specialized = staged
                        # Fresh pool: the old plans' kernels (and their
                        # workspace uids) are gone for good.
                        pool = WorkspacePool()
                elif kind == "swap_abort":
                    pending_swaps.pop(message[1], None)
                continue
            slot, task, n = message
            images = np.ndarray(
                (n,) + tuple(input_shape),
                dtype=dtype,
                buffer=in_shm.buf,
                offset=slot * in_slot_bytes,
            )
            started = time.perf_counter()
            try:
                exec_plan = specialized.get(task, plan)
                logits = run_plan_batch(exec_plan, plan.dynamic, images, task, recorder, pool)
            except Exception as error:
                result_queue.put(("error", worker_id, slot, repr(error)))
                continue
            classes = logits.shape[1]
            out = np.ndarray(
                (n, classes), dtype=dtype, buffer=out_shm.buf, offset=slot * out_slot_bytes
            )
            out[:] = logits
            service = time.perf_counter() - started
            result_queue.put(("done", worker_id, slot, n, classes, service))
    finally:
        result_queue.put(("stats", worker_id, recorder.snapshot()))
        in_shm.close()
        out_shm.close()


class _Shard:
    """Parent-side handle on one worker process and its rings."""

    __slots__ = (
        "index",
        "process",
        "task_queue",
        "in_shm",
        "out_shm",
        "free_slots",
        "inflight",
        "last_task",
        "dead",
    )

    def __init__(self, index: int, ring_slots: int) -> None:
        self.index = index
        self.process = None
        self.task_queue = None
        self.in_shm: Optional[shared_memory.SharedMemory] = None
        self.out_shm: Optional[shared_memory.SharedMemory] = None
        self.free_slots: List[int] = list(range(ring_slots))
        self.inflight = 0
        self.last_task: Optional[str] = None
        self.dead = False


class ShardedRuntime(BaseRuntime):
    """Process-parallel serving over spawn-safe copies of one compiled plan.

    Construction mirrors :class:`~repro.serving.ServingRuntime`; the extra
    knobs are ``mp_context`` (``"spawn"`` by default — the only start method
    that is safe everywhere; ``"fork"``/``"forkserver"`` are accepted where
    the platform offers them), ``ring_slots`` (micro-batches in flight per
    worker before the dispatcher backpressures) and ``start_timeout``
    (seconds to wait for every spawned worker to finish rebuilding its plan).
    """

    backend = "process"

    def __init__(
        self,
        plan: EnginePlan,
        *,
        mp_context: str = "spawn",
        ring_slots: int = 4,
        start_timeout: float = 120.0,
        **kwargs,
    ) -> None:
        super().__init__(plan, **kwargs)
        if ring_slots <= 0:
            raise ValueError("ring_slots must be positive")
        self._mp_context = get_context(mp_context)
        self._ring_slots = ring_slots
        self._start_timeout = start_timeout
        itemsize = np.dtype(plan.dtype).itemsize
        per_image = int(np.prod(plan.input_shape))
        self._in_slot_bytes = self.micro_batch * per_image * itemsize
        self._max_classes = max(task.num_classes for task in plan.tasks.values())
        self._out_slot_bytes = self.micro_batch * self._max_classes * itemsize
        self._shards: List[_Shard] = []
        self._result_queue = None
        self._route_lock = threading.Lock()
        self._slot_freed = threading.Condition(self._route_lock)
        #: (worker_id, slot) -> (requests, dispatch_time, switched)
        self._inflight: Dict[Tuple[int, int], Tuple[List[ServingRequest], float, bool]] = {}
        self._stats_pending: set = set()
        self._collector_done = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None
        # Control-plane state: swap readiness acks and live snapshot probes
        # arriving on the result queue, keyed by generation/token.
        self._control_cv = threading.Condition()
        self._swap_generations = itertools.count(1)
        self._swap_acks: Dict[int, Dict[int, Optional[str]]] = {}
        self._probe_tokens = itertools.count(1)
        self._probe_results: Dict[int, Dict[int, dict]] = {}

    # --------------------------------------------------------- backend hooks --
    def _launch_workers(self) -> None:
        plan_spec = PlanSpec.from_plan(self.plan)
        specialized_specs = {
            name: PlanSpec.from_plan(spec) for name, spec in self.specialized.items()
        }
        ctx = self._mp_context
        self._result_queue = ctx.Queue()
        self._stats_pending = set(range(self.workers))
        for index in range(self.workers):
            shard = _Shard(index, self._ring_slots)
            shard.in_shm = shared_memory.SharedMemory(
                create=True, size=self._ring_slots * self._in_slot_bytes
            )
            shard.out_shm = shared_memory.SharedMemory(
                create=True, size=self._ring_slots * self._out_slot_bytes
            )
            shard.task_queue = ctx.Queue()
            shard.process = ctx.Process(
                target=_shard_worker_main,
                name=f"serving-shard-{index}",
                args=(
                    index,
                    plan_spec,
                    specialized_specs,
                    shard.in_shm.name,
                    shard.out_shm.name,
                    self._in_slot_bytes,
                    self._out_slot_bytes,
                    tuple(self.plan.input_shape),
                    np.dtype(self.plan.dtype).name,
                    getattr(self.recorder, "channel_tracking", False),
                    shard.task_queue,
                    self._result_queue,
                ),
                daemon=True,
            )
            shard.process.start()
            self._shards.append(shard)
        self._await_ready()
        self._collector = threading.Thread(
            target=self._collector_loop, name="serving-shard-collector", daemon=True
        )
        self._collector.start()
        self._dispatcher = threading.Thread(
            target=self._worker_loop, args=(None,), name="serving-shard-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def _await_ready(self) -> None:
        """Block until every worker rebuilt its plan (so reported throughput
        measures serving, not interpreter spawn + NumPy import time)."""
        deadline = time.monotonic() + self._start_timeout
        waiting = set(range(self.workers))
        while waiting:
            try:
                message = self._result_queue.get(timeout=0.25)
            except queue_module.Empty:
                message = None
            if message is not None:
                kind = message[0]
                if kind == "ready":
                    waiting.discard(message[1])
                    continue
                if kind == "fatal":
                    self._teardown_processes(force=True)
                    raise RuntimeError(
                        f"shard worker {message[1]} failed to start: {message[2]}"
                    )
            for shard in self._shards:
                if shard.index in waiting and not shard.process.is_alive():
                    self._teardown_processes(force=True)
                    raise RuntimeError(
                        f"shard worker {shard.index} died during startup "
                        f"(exitcode {shard.process.exitcode})"
                    )
            if time.monotonic() > deadline:
                self._teardown_processes(force=True)
                raise RuntimeError(
                    f"shard workers not ready within {self._start_timeout}s"
                )

    # ----------------------------------------------------------------- routing --
    def _home_shard(self, task: str) -> int:
        """Stable task→shard affinity (keeps a task's weights cache-hot)."""
        return zlib.crc32(task.encode("utf-8")) % len(self._shards)

    def _pick_shard(self, task: str) -> Optional[_Shard]:
        """Home shard unless it is busy and someone else is idle.  Lock held."""
        live = [shard for shard in self._shards if not shard.dead]
        if not live:
            return None
        home = self._shards[self._home_shard(task)]
        if home.dead:
            # Re-home deterministically among the survivors.
            home = live[self._home_shard(task) % len(live)]
        if home.inflight == 0 and home.free_slots:
            return home
        idle = [shard for shard in live if shard.inflight == 0 and shard.free_slots]
        if idle:
            # Work stealing: the home shard is busy and these are not.
            return idle[0]
        return home

    def _execute(self, batch: MicroBatch, state, last_task: Optional[str]) -> None:
        """Route one closed micro-batch to a shard (dispatcher thread)."""
        requests: List[ServingRequest] = batch.requests  # type: ignore[assignment]
        with self._route_lock:
            while True:
                shard = self._pick_shard(batch.task)
                if shard is None:
                    break
                if shard.free_slots:
                    slot = shard.free_slots.pop()
                    break
                # Chosen shard's ring is full: wait for the collector to free
                # a slot (or mark a shard dead), then re-route.
                self._slot_freed.wait(0.25)
            if shard is not None and shard.in_shm is not None:
                switched = shard.last_task is not None and shard.last_task != batch.task
                shard.last_task = batch.task
                shard.inflight += 1
                dispatch_time = self._clock()
                self._inflight[(shard.index, slot)] = (requests, dispatch_time, switched)
                # Ring write under the lock: a timed-out stop() tears rings
                # down under the same lock, so the segment cannot vanish
                # mid-copy.  The copy is one micro-batch — microseconds.
                view = np.ndarray(
                    (len(requests),) + tuple(self.plan.input_shape),
                    dtype=self.plan.dtype,
                    buffer=shard.in_shm.buf,
                    offset=slot * self._in_slot_bytes,
                )
                for row, request in enumerate(requests):
                    view[row] = request.image  # cast to the plan dtype lands in the ring
                del view
                shard.task_queue.put((slot, batch.task, len(requests)))
                return
        self._fail_batch(
            requests, RuntimeError("no live shard worker to execute the batch")
        )

    # --------------------------------------------------------------- collector --
    def _collector_loop(self) -> None:
        while self._stats_pending:
            try:
                message = self._result_queue.get(timeout=0.25)
            except queue_module.Empty:
                self._reap_dead_shards()
                continue
            kind = message[0]
            if kind == "done":
                _, worker_id, slot, n, classes, service = message
                self._finish_batch(worker_id, slot, n, classes, service)
            elif kind == "error":
                _, worker_id, slot, error_repr = message
                self._abort_batch(worker_id, slot, RuntimeError(error_repr))
            elif kind == "stats":
                _, worker_id, snapshot = message
                self.recorder.merge_snapshot(snapshot)
                self._stats_pending.discard(worker_id)
            elif kind in ("swap_built", "swap_failed"):
                _, worker_id, generation = message[:3]
                failure = message[3] if kind == "swap_failed" else None
                with self._control_cv:
                    # Only record acks someone is still waiting for: a reply
                    # landing after the waiter's timeout cleanup must not
                    # recreate (and permanently leak) the entry.
                    acks = self._swap_acks.get(generation)
                    if acks is not None:
                        acks[worker_id] = failure
                        self._control_cv.notify_all()
            elif kind == "snapshot":
                _, worker_id, token, snapshot = message
                with self._control_cv:
                    results = self._probe_results.get(token)
                    if results is not None:
                        results[worker_id] = snapshot
                        self._control_cv.notify_all()
        self._collector_done.set()

    def _finish_batch(self, worker_id: int, slot: int, n: int, classes: int, service: float) -> None:
        shard = self._shards[worker_id]
        finish = self._clock()
        # The ring read happens under the route lock so a timed-out stop()
        # cannot unlink the segment mid-copy (teardown takes the same lock).
        with self._route_lock:
            entry = self._inflight.pop((worker_id, slot), None)
            if entry is None or shard.out_shm is None:
                return  # already failed by teardown/reaper
            requests, dispatch_time, switched = entry
            out = np.ndarray(
                (n, classes),
                dtype=self.plan.dtype,
                buffer=shard.out_shm.buf,
                offset=slot * self._out_slot_bytes,
            )
            logits = np.array(out)  # copy out before the slot is recycled
            shard.free_slots.append(slot)
            shard.inflight -= 1
            self._slot_freed.notify_all()
        start = max(dispatch_time, finish - service)
        self._complete_batch(
            requests, logits, requests[0].task, start, finish, switched=switched
        )

    def _abort_batch(self, worker_id: int, slot: int, error: BaseException) -> None:
        shard = self._shards[worker_id]
        with self._route_lock:
            entry = self._inflight.pop((worker_id, slot), None)
            if entry is None:
                return
            requests, _, _ = entry
            shard.free_slots.append(slot)
            shard.inflight -= 1
            self._slot_freed.notify_all()
        self._fail_batch(requests, error)

    def _reap_dead_shards(self) -> None:
        """Fail the inflight work of any worker that died without reporting."""
        for shard in self._shards:
            if shard.dead or shard.process is None or shard.process.is_alive():
                continue
            if shard.index not in self._stats_pending:
                continue  # exited cleanly after its stats message
            with self._route_lock:
                shard.dead = True
                stranded = [
                    key for key in self._inflight if key[0] == shard.index
                ]
                batches = [self._inflight.pop(key) for key in stranded]
                self._slot_freed.notify_all()
            self._stats_pending.discard(shard.index)
            for requests, _, _ in batches:
                self._fail_batch(
                    requests,
                    RuntimeError(
                        f"shard worker {shard.index} died "
                        f"(exitcode {shard.process.exitcode})"
                    ),
                )

    # ------------------------------------------------------------ control plane --
    def _wait_control(self, predicate, timeout: Optional[float], describe):
        """Wait on the control condition until ``predicate()`` returns non-None.

        The single deadline-arithmetic loop behind every control-plane
        acknowledgement wait (swap acks, stats probes).  ``predicate`` runs
        under the condition lock and may raise to abort the wait;
        ``describe()`` renders the :class:`TimeoutError` message.
        """
        give_up = None if timeout is None else time.monotonic() + timeout
        with self._control_cv:
            while True:
                result = predicate()
                if result is not None:
                    return result
                remaining = None if give_up is None else give_up - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(describe())
                self._control_cv.wait(
                    0.25 if remaining is None else min(0.25, remaining)
                )

    def _validate_swap(self, plans: PlanSet) -> None:
        """Input/dtype checks plus the ring-geometry bound of this backend."""
        super()._validate_swap(plans)
        widest = max(task.num_classes for task in plans.plan.tasks.values())
        if widest > self._max_classes:
            raise ValueError(
                f"cannot swap: task head width {widest} exceeds the output-ring "
                f"slot geometry ({self._max_classes} classes) this fleet was "
                "sized for at start()"
            )

    def _drain_in_flight(self, timeout: Optional[float]) -> None:
        """Wait until every batch dispatched to a shard has come home.

        Called with intake paused and the batcher quiescent, so no new
        descriptor can appear; the collector empties :attr:`_inflight` as the
        workers finish against the old plans.
        """
        give_up = None if timeout is None else time.monotonic() + timeout
        with self._slot_freed:
            while self._inflight:
                if all(shard.dead for shard in self._shards):
                    return  # teardown already failed everything in flight
                remaining = None if give_up is None else give_up - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"in-flight batches did not drain within {timeout}s; "
                        "the old plans are still serving"
                    )
                self._slot_freed.wait(0.25 if remaining is None else min(0.25, remaining))

    def _apply_swap(self, plans: PlanSet, timeout: Optional[float]) -> None:
        """Two-phase cutover: every shard builds, then all commit — or none.

        Phase 1 ships the rebuild specs down each shard's ordered command
        channel (processed strictly after every batch descriptor enqueued
        before it — the queues are empty anyway after
        :meth:`_drain_in_flight`); workers build the new plans but keep
        serving the old ones, acking success or failure.  Only when **every**
        live shard has built does the parent send the commit and update its
        own plan set; on any build failure or ack timeout it sends an abort
        instead and raises, so the fleet can never split between old and new
        plans — shards agree with each other and with the intake side in
        every outcome.
        """
        generation = next(self._swap_generations)
        plan_spec = PlanSpec.from_plan(plans.plan)
        specialized_specs = {
            name: PlanSpec.from_plan(spec) for name, spec in plans.specialized.items()
        }
        with self._control_cv:
            # Registered before the first message can be answered; the
            # collector drops acks for generations nobody waits on.
            self._swap_acks[generation] = {}
        with self._route_lock:
            targets = [shard for shard in self._shards if not shard.dead]
            for shard in targets:
                shard.task_queue.put(("swap", generation, plan_spec, specialized_specs))
        if not targets:
            self._swap_acks.pop(generation, None)
            raise RuntimeError("no live shard worker to swap plans on")

        def abort() -> None:
            with self._route_lock:
                for shard in targets:
                    if not shard.dead and shard.task_queue is not None:
                        shard.task_queue.put(("swap_abort", generation))

        still_waiting: List[int] = []

        def all_built():
            acks = self._swap_acks.get(generation, {})
            failures = {
                worker: error for worker, error in acks.items() if error is not None
            }
            if failures:
                raise RuntimeError(
                    "plan swap failed in shard worker(s) "
                    + ", ".join(f"{w}: {e}" for w, e in sorted(failures.items()))
                    + " — the swap was aborted fleet-wide; the old plans "
                    "keep serving everywhere"
                )
            still_waiting[:] = [
                shard.index
                for shard in targets
                if shard.index not in acks
                and not shard.dead
                and shard.process is not None
                and shard.process.is_alive()
            ]
            return True if not still_waiting else None

        try:
            self._wait_control(
                all_built,
                timeout,
                lambda: (
                    f"shard workers {still_waiting} did not acknowledge the swap "
                    f"within {timeout}s — the swap was aborted fleet-wide; "
                    "the old plans keep serving everywhere"
                ),
            )
        except BaseException:
            abort()
            raise
        finally:
            self._swap_acks.pop(generation, None)
        # Phase 2: every shard is staged; commit messages are ordered before
        # any batch descriptor dispatched after intake resumes, so a request
        # admitted against the new plan set always executes on it.
        with self._route_lock:
            for shard in targets:
                if not shard.dead and shard.task_queue is not None:
                    shard.task_queue.put(("swap_commit", generation))
        self._plans = plans

    def current_recorder(self, timeout: float = 30.0) -> SparsityRecorder:
        """A merged live view of every worker's recorder plus the parent's own.

        Sends a snapshot probe down each shard's ordered command channel and
        folds the replies (plus whatever the parent recorder already merged
        from dead workers) into a **fresh** recorder — the parent's recorder
        itself is left untouched, so the final merge at ``stop()`` cannot
        double count.
        """
        if not self._started or self._stopped:
            return self.recorder
        token = next(self._probe_tokens)
        with self._control_cv:
            # Registered before the first probe can be answered; the
            # collector drops replies for tokens nobody waits on.
            self._probe_results[token] = {}
        with self._route_lock:
            targets = [shard for shard in self._shards if not shard.dead]
            for shard in targets:
                shard.task_queue.put(("snapshot", token))
        merged = SparsityRecorder(
            channel_tracking=getattr(self.recorder, "channel_tracking", False)
        )
        merged.merge_snapshot(self.recorder.snapshot())
        still_waiting: List[int] = []

        def all_answered():
            results = self._probe_results.get(token, {})
            still_waiting[:] = [
                shard.index
                for shard in targets
                if shard.index not in results
                and not shard.dead
                and shard.process is not None
                and shard.process.is_alive()
            ]
            return dict(results) if not still_waiting else None

        try:
            results = self._wait_control(
                all_answered,
                timeout,
                lambda: f"shard workers {still_waiting} did not answer the stats probe",
            )
        finally:
            self._probe_results.pop(token, None)
        for snapshot in results.values():
            merged.merge_snapshot(snapshot)
        return merged

    # ----------------------------------------------------------------- stats --
    def reset_stats(self) -> None:
        """Start a fresh measurement window across the whole fleet.

        Clears the parent's metrics/recorder and sends each worker a reset
        marker through its control queue, so worker-side recorders (merged
        into the parent at ``stop()``) drop everything dispatched before the
        reset.  The marker is ordered with the batch descriptors: batches
        dispatched before the reset land in the old window even if they are
        still executing when this returns — the same in-progress blur the
        thread backend's reset has.
        """
        super().reset_stats()
        if self._started and not self._stopped:
            for shard in self._shards:
                if not shard.dead and shard.task_queue is not None:
                    shard.task_queue.put("reset")

    # ---------------------------------------------------------------- shutdown --
    def _join_workers(self, drain: bool, timeout: Optional[float]) -> None:
        give_up = None if timeout is None else time.monotonic() + timeout

        def remaining(default: Optional[float] = None) -> Optional[float]:
            if give_up is None:
                return default
            return max(0.0, give_up - time.monotonic())

        # 1. The dispatcher drains the batcher (closed by stop()) and exits.
        if self._dispatcher is not None:
            self._dispatcher.join(remaining())
        # 2. Sentinels let each worker finish its queue, report stats, exit.
        for shard in self._shards:
            if not shard.dead:
                shard.task_queue.put(None)
        # 3. The collector exits once every worker's stats snapshot arrived.
        self._collector_done.wait(remaining())
        stragglers = [
            shard
            for shard in self._shards
            if shard.process is not None and shard.process.is_alive()
        ]
        for shard in stragglers:
            shard.process.join(remaining())
        self._teardown_processes(force=True)
        if self._collector is not None:
            self._collector.join(remaining(1.0))

    def _teardown_processes(self, force: bool) -> None:
        """Terminate stragglers, fail their futures, release the rings.

        Marks every shard dead under the route lock and wakes the
        dispatcher's slot-wait loop: after a timed-out ``stop()`` the
        dispatcher may still be blocked waiting for a free slot, and it must
        observe a fleet with no live shard so the batch it is holding (and
        everything still queued) fails fast instead of hanging its futures.
        """
        for shard in self._shards:
            if shard.process is not None and shard.process.is_alive():
                if not force:
                    continue
                shard.process.terminate()
                shard.process.join(5.0)
            with self._route_lock:
                shard.dead = True
                stranded = [key for key in self._inflight if key[0] == shard.index]
                batches = [self._inflight.pop(key) for key in stranded]
                for shm in (shard.in_shm, shard.out_shm):
                    if shm is None:
                        continue
                    try:
                        shm.close()
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover - already gone
                        pass
                shard.in_shm = shard.out_shm = None
                self._slot_freed.notify_all()
            for requests, _, _ in batches:
                self._fail_batch(
                    requests, RuntimeError(f"shard worker {shard.index} terminated at stop()")
                )
            if shard.task_queue is not None:
                shard.task_queue.close()
                shard.task_queue = None
        self._stats_pending = set()
        self._collector_done.set()
