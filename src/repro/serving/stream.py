"""Live observability for a serving runtime: windows, events, Prometheus.

Three pieces compose here:

* :class:`MetricsEvent` — one discrete, timestamped control-plane event
  (plan swap, recalibration, worker restart, flatline alert).
* :class:`MetricsStream` — owns the rolling reporting window over a
  :class:`~repro.serving.metrics.ServingMetrics` accumulator (``poll()``
  closes a window whenever the runtime clock crosses the interval, so
  windowing is deterministic under ``ManualClock``), keeps the bounded
  event log, and renders everything as Prometheus text exposition.
* :class:`MetricsServer` — a stdlib ``http.server`` daemon thread serving
  ``GET /metrics`` from a stream (``repro serve --metrics-port``).

The stream never resets the underlying accumulator: windows are computed
as deltas against a rolling baseline, so the end-of-run
:class:`~repro.serving.metrics.ServingReport` still covers the whole run
and the window deltas sum to it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from .metrics import ServingMetrics, ServingReport, WindowSnapshot, _clean_nan

__all__ = ["MetricsEvent", "MetricsStream", "MetricsServer"]


@dataclass(frozen=True)
class MetricsEvent:
    """One discrete runtime event, stamped on the runtime clock.

    ``kind`` is a short machine token (``"swap"``, ``"recalibration"``,
    ``"restart"``, ``"flatline"``); ``detail`` is free-form context and
    ``value`` an optional scalar (e.g. the drift magnitude that triggered a
    recalibration).
    """

    kind: str
    at: float
    detail: str = ""
    value: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return _clean_nan(asdict(self))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{value:.9g}"


class MetricsStream:
    """Windowed snapshots + event log over one runtime's metrics.

    Everything is dependency-injected so the stream stays backend-agnostic
    and unit-testable without a runtime: ``clock`` is the runtime's
    injectable clock, ``queue_depths``/``shard_depths`` are zero-argument
    gauge callables sampled at window close, and ``report`` produces the
    cumulative :class:`ServingReport` the Prometheus exposition is built
    from.
    """

    def __init__(
        self,
        metrics: ServingMetrics,
        clock: Callable[[], float],
        interval: float = 1.0,
        history: int = 120,
        queue_depths: Optional[Callable[[], Mapping[str, int]]] = None,
        shard_depths: Optional[Callable[[], Mapping[int, int]]] = None,
        report: Optional[Callable[[], ServingReport]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"window interval must be positive, got {interval}")
        if history < 1:
            raise ValueError(f"window history must be >= 1, got {history}")
        self._metrics = metrics
        self._clock = clock
        self._interval = float(interval)
        self._queue_depths = queue_depths
        self._shard_depths = shard_depths
        self._report = report
        self._lock = threading.Lock()
        self._windows: Deque[WindowSnapshot] = deque(maxlen=history)
        self._events: Deque[MetricsEvent] = deque(maxlen=max(16, 4 * history))
        self._event_counts: Dict[str, int] = {}
        self._last_drift: Optional[float] = None
        # Arm the first window at construction so window boundaries are a
        # pure function of the injected clock (deterministic under
        # ManualClock: construct at t, first window closes at t+interval).
        self._next_due = clock() + self._interval
        self._poller: Optional[threading.Thread] = None
        self._poller_stop = threading.Event()

    # ---------------------------------------------------------------- events --
    @property
    def interval(self) -> float:
        return self._interval

    def record_event(
        self,
        kind: str,
        detail: str = "",
        value: Optional[float] = None,
        at: Optional[float] = None,
    ) -> MetricsEvent:
        """Append one event to the log (bounded; oldest events fall off)."""
        event = MetricsEvent(
            kind=kind,
            at=self._clock() if at is None else at,
            detail=detail,
            value=value,
        )
        with self._lock:
            self._events.append(event)
            self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
            if kind == "recalibration" and value is not None:
                self._last_drift = value
        return event

    def events(self) -> List[MetricsEvent]:
        with self._lock:
            return list(self._events)

    def event_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._event_counts)

    # --------------------------------------------------------------- windows --
    def poll(self, now: Optional[float] = None) -> Optional[WindowSnapshot]:
        """Close the current window iff the interval has elapsed.

        Returns the freshly closed :class:`WindowSnapshot`, or ``None`` when
        the window is still open.  A stall longer than one interval yields a
        single wide window (the deltas stay exact), not a burst of empties.
        """
        now = self._clock() if now is None else now
        with self._lock:
            if now < self._next_due:
                return None
            self._next_due = now + self._interval
        return self.force_window(now)

    def force_window(self, now: Optional[float] = None) -> WindowSnapshot:
        """Close the window unconditionally (end-of-run flush, tests)."""
        now = self._clock() if now is None else now
        # Sample gauges outside self._lock: they take runtime/batcher locks.
        queue_depth = dict(self._queue_depths()) if self._queue_depths else {}
        shard_depth = dict(self._shard_depths()) if self._shard_depths else {}
        with self._lock:
            drift = self._last_drift
        snapshot = self._metrics.window_report(
            now=now,
            queue_depth=queue_depth,
            shard_depth=shard_depth,
            drift=drift,
        )
        with self._lock:
            self._windows.append(snapshot)
        return snapshot

    def windows(self) -> List[WindowSnapshot]:
        with self._lock:
            return list(self._windows)

    def last_window(self) -> Optional[WindowSnapshot]:
        with self._lock:
            return self._windows[-1] if self._windows else None

    # ------------------------------------------------------ background poller --
    def start(self) -> None:
        """Start a daemon thread calling :meth:`poll` until :meth:`stop`.

        The thread sleeps on the wall clock (there is nothing else to sleep
        on) but closes windows on the *runtime* clock via ``poll()``, so a
        manually-clocked runtime simply never closes a window from here.
        """
        if self._poller is not None:
            return
        self._poller_stop.clear()
        pace = min(self._interval / 4.0, 0.25)

        def _run() -> None:
            while not self._poller_stop.wait(pace):
                self.poll()

        self._poller = threading.Thread(target=_run, name="metrics-stream-poll", daemon=True)
        self._poller.start()

    def stop(self) -> None:
        if self._poller is None:
            return
        self._poller_stop.set()
        self._poller.join(timeout=5.0)
        self._poller = None

    # ------------------------------------------------------------- prometheus --
    def prometheus_text(self) -> str:
        """Render the full metrics family in Prometheus text exposition."""
        report = self._report() if self._report is not None else None
        queue_depth = dict(self._queue_depths()) if self._queue_depths else {}
        shard_depth = dict(self._shard_depths()) if self._shard_depths else {}
        with self._lock:
            last = self._windows[-1] if self._windows else None
            counts = dict(self._event_counts)
            drift = self._last_drift

        lines: List[str] = []

        def emit(
            name: str,
            mtype: str,
            help_text: str,
            samples: List[Tuple[Dict[str, str], float]],
        ) -> None:
            samples = [
                (labels, value)
                for labels, value in samples
                if not (isinstance(value, float) and value != value)  # NaN: no sample
            ]
            if not samples:
                return
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")
            for labels, value in samples:
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
                    )
                    lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{name} {_format_value(value)}")

        if report is not None:
            base = {"backend": report.backend, "policy": report.policy}
            emit("repro_serving_info", "gauge", "Static runtime identity labels.", [(base, 1)])
            emit("repro_serving_workers", "gauge", "Configured worker count.", [({}, report.workers)])
            emit(
                "repro_serving_uptime_seconds",
                "gauge",
                "Measured duration of the current run.",
                [({}, report.duration)],
            )
            for name, value, help_text in (
                ("completed", report.completed, "Requests completed since start."),
                ("rejected", report.rejected, "Requests rejected at admission."),
                ("errors", report.errors, "Requests failed with an error."),
                ("cancelled", report.cancelled, "Requests cancelled."),
                ("batches", report.num_batches, "Micro-batches executed."),
                ("task_switches", report.task_switches, "Per-worker task switches."),
                ("shed", report.shed, "Requests shed by degraded-mode admission."),
                ("redispatched", report.redispatched, "Requests re-queued after a shard death."),
                ("restarts", report.restarts, "Worker processes respawned."),
                ("flatline_alerts", report.flatline_alerts, "Shards declared unresponsive."),
                ("deadline_misses", report.deadline_misses, "Deadlined requests that missed."),
                ("deadlines", report.deadline_total, "Deadlined requests observed."),
            ):
                emit(f"repro_serving_{name}_total", "counter", help_text, [({}, value)])
            emit(
                "repro_serving_completed_per_task_total",
                "counter",
                "Requests completed, by task.",
                [({"task": task}, count) for task, count in sorted(report.per_task.items())],
            )
            emit(
                "repro_serving_completed_per_shard_total",
                "counter",
                "Requests completed, by shard.",
                [({"shard": str(s)}, count) for s, count in sorted(report.per_shard.items())],
            )
            emit(
                "repro_serving_latency_seconds",
                "summary",
                "End-to-end request latency quantiles over the full run.",
                [
                    ({"quantile": "0.5"}, report.latency.p50),
                    ({"quantile": "0.95"}, report.latency.p95),
                    ({"quantile": "0.99"}, report.latency.p99),
                ],
            )

        emit(
            "repro_serving_queue_depth",
            "gauge",
            "Requests queued (open + ready), by task.",
            [({"task": task}, depth) for task, depth in sorted(queue_depth.items())],
        )
        emit(
            "repro_serving_shard_queue_depth",
            "gauge",
            "Micro-batches in flight, by shard (-1 marks a dead shard).",
            [({"shard": str(s)}, depth) for s, depth in sorted(shard_depth.items())],
        )
        emit(
            "repro_serving_events_total",
            "counter",
            "Control-plane events recorded, by kind.",
            [({"kind": kind}, count) for kind, count in sorted(counts.items())],
        )
        if drift is not None:
            emit(
                "repro_serving_sparsity_drift",
                "gauge",
                "Last measured max per-channel survival-rate delta.",
                [({}, drift)],
            )
        if last is not None:
            emit(
                "repro_serving_window_index",
                "gauge",
                "Index of the last closed reporting window.",
                [({}, last.index)],
            )
            emit(
                "repro_serving_window_completed",
                "gauge",
                "Requests completed within the last closed window.",
                [({}, last.completed)],
            )
            emit(
                "repro_serving_window_throughput",
                "gauge",
                "Images/sec over the last closed window.",
                [({}, last.throughput)],
            )
            emit(
                "repro_serving_window_deadline_miss_rate",
                "gauge",
                "Deadline-miss burn rate over the last closed window.",
                [({}, last.miss_rate)],
            )
        return "\n".join(lines) + "\n"


class _MetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    stream: MetricsStream


class _MetricsHandler(BaseHTTPRequestHandler):
    server: _MetricsHTTPServer

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/metrics"):
            body = self.server.stream.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "only /metrics is served here")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay quiet


class MetricsServer:
    """Prometheus text endpoint over one :class:`MetricsStream`.

    A ``ThreadingHTTPServer`` on a daemon thread: ``port=0`` binds an
    ephemeral port (tests), :attr:`port`/:attr:`url` report where it
    landed.  Usable as a context manager.
    """

    def __init__(self, stream: MetricsStream, host: str = "127.0.0.1", port: int = 0) -> None:
        self._httpd = _MetricsHTTPServer((host, port), _MetricsHandler)
        self._httpd.stream = stream
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
