"""Online multi-task serving runtime over the compiled engine.

Where :class:`~repro.engine.MultiTaskEngine` drains a known request set
offline, this package serves *live* traffic: concurrent clients submit single
images and get futures back, a deadline-aware dynamic batcher forms per-task
micro-batches (closed on size or max-wait), a pluggable
:class:`~repro.engine.scheduling.SchedulingPolicy` orders them, and a pool of
worker threads executes them in parallel over one immutable
:class:`~repro.engine.EnginePlan` — each worker with its own
:class:`~repro.engine.WorkspacePool`, so mixed-task traffic exercises exactly
the pipelined task switching the paper optimises.  Measured schedules and
sparsity flow into the systolic-array simulator unchanged.

Quick start::

    runtime = ServingRuntime(plan, policy="fifo-deadline", workers=4,
                             micro_batch=8, max_wait=0.005, max_pending=256)
    with runtime:
        futures = [runtime.submit(task, image) for task, image in traffic]
        logits = [future.result() for future in futures]
    print(runtime.report().summary())
"""

from repro.serving.base import BaseRuntime, PlanSet, run_plan_batch
from repro.serving.batcher import DynamicBatcher
from repro.serving.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    parse_chaos_spec,
)
from repro.serving.loadgen import Arrival, LoadGenerator, ManualClock
from repro.serving.metrics import (
    LatencyDigest,
    ServingMetrics,
    ServingReport,
    WindowSnapshot,
    percentile,
)
from repro.serving.recalibrate import DriftReport, RecalibrationEvent, RecalibrationLoop
from repro.serving.stream import MetricsEvent, MetricsServer, MetricsStream
from repro.serving.request import (
    AdmissionError,
    DeadlineExpiredError,
    NoLiveShardsError,
    QueueFullError,
    RedispatchError,
    RequestCancelledError,
    RetryBudgetExceededError,
    RuntimeClosedError,
    ServingRequest,
    ServingResult,
)
from repro.serving.runtime import ServingRuntime
from repro.serving.sharded import ShardedRuntime

#: Serving backend registry shared by the CLI and the benchmarks: the thread
#: backend parallelises inside this process, the process backend shards the
#: plan across spawned workers (see :mod:`repro.serving.sharded`).
BACKENDS = {
    ServingRuntime.backend: ServingRuntime,
    ShardedRuntime.backend: ShardedRuntime,
}

__all__ = [
    "BACKENDS",
    "BaseRuntime",
    "PlanSet",
    "run_plan_batch",
    "DynamicBatcher",
    "Arrival",
    "LoadGenerator",
    "ManualClock",
    "LatencyDigest",
    "ServingMetrics",
    "ServingReport",
    "WindowSnapshot",
    "MetricsEvent",
    "MetricsServer",
    "MetricsStream",
    "percentile",
    "DriftReport",
    "RecalibrationEvent",
    "RecalibrationLoop",
    "AdmissionError",
    "DeadlineExpiredError",
    "NoLiveShardsError",
    "QueueFullError",
    "RedispatchError",
    "RequestCancelledError",
    "RetryBudgetExceededError",
    "RuntimeClosedError",
    "ServingRequest",
    "ServingResult",
    "ServingRuntime",
    "ShardedRuntime",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "parse_chaos_spec",
]
