"""Synthetic online traffic: Poisson arrivals over a configurable task mix.

A :class:`LoadGenerator` produces a deterministic (seeded) arrival trace —
inter-arrival gaps drawn from an exponential distribution, task picked from a
weighted mix — and can *replay* it against a live
:class:`~repro.serving.ServingRuntime`, sleeping until each arrival's
timestamp before submitting.  Four canonical scenarios cover the evaluation:

* **uniform** — every task equally likely at a constant rate;
* **skewed** — one hot task takes ``hot_fraction`` of the traffic (the
  realistic "one dominant tenant" case for weighted-fair scheduling);
* **zipf** — task popularity follows a power law (``1/rank^alpha``), the
  long-tail many-task mix the cross-task coalescing path is built for;
* **bursty** — each ``burst_period`` splits into a high phase at
  ``burst_factor``× the nominal rate followed by a low phase at
  1/``burst_factor``× (each lasting ``burst_period/2`` seconds), which
  stresses the dynamic batcher's size-vs-max-wait trade-off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.serving.base import BaseRuntime
from repro.serving.request import AdmissionError, ServingResult

ImageSource = Union[Dict[str, np.ndarray], Callable[[str, int], np.ndarray]]


class ManualClock:
    """A settable, thread-safe clock for deterministic timing tests.

    Drop-in for ``time.monotonic`` wherever a clock is injectable (the
    batcher, the runtimes, :meth:`LoadGenerator.replay`): reading it returns
    the last value set, so latency/queue-wait/deadline arithmetic becomes
    exact instead of wall-clock-dependent.  Note that a *running* runtime's
    workers still sleep real seconds between re-checks of the batcher's
    max-wait timer — advancing the clock changes what those re-checks
    observe, not how long they sleep.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += seconds
            return self._now


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when it arrives and which task it belongs to."""

    time: float
    task: str


class LoadGenerator:
    """Seeded Poisson arrival process over a weighted task mix."""

    def __init__(
        self,
        tasks: Sequence[str],
        rate: float,
        mix: Optional[Sequence[float]] = None,
        seed: int = 0,
        burst_factor: float = 1.0,
        burst_period: float = 0.0,
    ) -> None:
        if not tasks:
            raise ValueError("at least one task is required")
        if rate <= 0:
            raise ValueError("rate must be positive (requests/second)")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1 (1 = no bursts)")
        if burst_factor > 1.0 and burst_period <= 0:
            raise ValueError("bursty traffic needs a positive burst_period")
        self.tasks = list(tasks)
        self.rate = rate
        if mix is None:
            self.mix = [1.0 / len(self.tasks)] * len(self.tasks)
        else:
            if len(mix) != len(self.tasks) or any(m < 0 for m in mix) or sum(mix) <= 0:
                raise ValueError("mix must be non-negative weights, one per task")
            total = float(sum(mix))
            self.mix = [m / total for m in mix]
        self.seed = seed
        self.burst_factor = burst_factor
        self.burst_period = burst_period

    # ------------------------------------------------------------- scenarios --
    @classmethod
    def uniform(cls, tasks: Sequence[str], rate: float, seed: int = 0) -> "LoadGenerator":
        """Constant-rate Poisson traffic, all tasks equally likely."""
        return cls(tasks, rate, seed=seed)

    @classmethod
    def skewed(
        cls, tasks: Sequence[str], rate: float, hot_fraction: float = 0.8, seed: int = 0
    ) -> "LoadGenerator":
        """One hot task receives ``hot_fraction`` of the traffic."""
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must lie strictly between 0 and 1")
        if len(tasks) == 1:
            return cls(tasks, rate, seed=seed)
        cold = (1.0 - hot_fraction) / (len(tasks) - 1)
        return cls(tasks, rate, mix=[hot_fraction] + [cold] * (len(tasks) - 1), seed=seed)

    @classmethod
    def zipf(
        cls, tasks: Sequence[str], rate: float, alpha: float = 1.1, seed: int = 0
    ) -> "LoadGenerator":
        """Long-tail many-task traffic: task *k* (by list position) weighted
        ``1/(k+1)**alpha``.

        The canonical mix for the 50–200-task coalescing regime: a few tasks
        dominate, but the tail is wide enough that per-task batches of the
        cold tasks close on ``max_wait`` with one or two rows — exactly the
        fragmentation cross-task coalescing repairs.  Deterministic under a
        fixed ``seed`` like every other scenario.
        """
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        weights = [1.0 / (rank + 1) ** alpha for rank in range(len(tasks))]
        return cls(tasks, rate, mix=weights, seed=seed)

    @classmethod
    def bursty(
        cls,
        tasks: Sequence[str],
        rate: float,
        burst_factor: float = 4.0,
        burst_period: float = 0.2,
        seed: int = 0,
    ) -> "LoadGenerator":
        """On/off traffic: ``burst_period/2`` at ``burst_factor``x the rate,
        then ``burst_period/2`` at ``1/burst_factor``x, repeating."""
        return cls(
            tasks, rate, seed=seed, burst_factor=burst_factor, burst_period=burst_period
        )

    # ----------------------------------------------------------------- trace --
    def _rate_at(self, now: float) -> float:
        if self.burst_factor == 1.0:
            return self.rate
        phase = (now % self.burst_period) / self.burst_period
        return self.rate * (self.burst_factor if phase < 0.5 else 1.0 / self.burst_factor)

    def trace(self, num_requests: int) -> List[Arrival]:
        """A deterministic arrival schedule starting at t=0.

        Repeated calls return the identical trace (the RNG is reseeded), so a
        benchmark can replay the same workload across policies and worker
        counts.
        """
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self.seed)
        arrivals: List[Arrival] = []
        now = 0.0
        for _ in range(num_requests):
            now += float(rng.exponential(1.0 / self._rate_at(now)))
            task = self.tasks[int(rng.choice(len(self.tasks), p=self.mix))]
            arrivals.append(Arrival(now, task))
        return arrivals

    # ---------------------------------------------------------------- replay --
    def replay(
        self,
        runtime: BaseRuntime,
        images: ImageSource,
        num_requests: int,
        time_scale: float = 1.0,
        deadline_slack: Optional[float] = None,
        block: bool = True,
        trace: Optional[Sequence[Arrival]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> List[Optional[ServingResult]]:
        """Submit the trace against ``runtime`` in (scaled) real time.

        ``images`` is either ``{task: (N, C, H, W) pool}`` (requests cycle
        through the pool) or a callable ``(task, request_number) -> image``.
        ``time_scale=0`` submits everything immediately (offline drain);
        ``deadline_slack`` attaches ``arrival + slack`` deadlines.  Rejected
        requests (bounded queue, ``block=False``) yield ``None`` entries.

        All timestamps — pacing and deadlines — are taken on the *runtime's*
        injectable clock, so a test driving a fake clock sees deadlines and
        arrival pacing in the same deterministic time base the runtime
        measures latency in.  ``sleep`` is injectable for the same reason
        (pacing a fake clock should not busy-wait real seconds).
        """
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        clock = runtime.clock
        arrivals = list(trace) if trace is not None else self.trace(num_requests)
        counters: Dict[str, int] = {}
        results: List[Optional[ServingResult]] = []
        start = clock()
        for arrival in arrivals:
            if time_scale > 0:
                delay = start + arrival.time * time_scale - clock()
                if delay > 0:
                    sleep(delay)
            number = counters.get(arrival.task, 0)
            counters[arrival.task] = number + 1
            if callable(images):
                image = images(arrival.task, number)
            else:
                pool = images[arrival.task]
                image = pool[number % len(pool)]
            deadline = (
                clock() + deadline_slack if deadline_slack is not None else None
            )
            try:
                results.append(
                    runtime.submit(arrival.task, image, deadline=deadline, block=block)
                )
            except AdmissionError:
                results.append(None)
        return results
