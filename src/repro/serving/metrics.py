"""Thread-safe serving metrics: latency percentiles, throughput, switches.

Workers report one :meth:`ServingMetrics.observe_batch` per executed
micro-batch; the runtime snapshots everything into an immutable
:class:`ServingReport` whose :meth:`ServingReport.summary` renders the
operator-facing text block the CLI and benchmarks print.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.utils.ratios import fraction_saved


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (``pct`` in [0, 100]) of ``values``."""
    if not values:
        return math.nan
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _fmt_ms(seconds: float) -> str:
    """Milliseconds with one decimal, or ``-`` for the NaN empty-run sentinel."""
    if math.isnan(seconds):
        return "-"
    return f"{1e3 * seconds:.1f}"


def _clean_nan(value):
    """Recursively map every NaN float to ``None`` (NaN is not valid JSON)."""
    if isinstance(value, float) and math.isnan(value):
        return None
    if isinstance(value, dict):
        return {key: _clean_nan(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean_nan(item) for item in value]
    return value


@dataclass(frozen=True)
class LatencyDigest:
    """p50/p95/p99/mean/max over one latency population, in seconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencyDigest":
        if not values:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )


@dataclass(frozen=True)
class ServingReport:
    """Immutable snapshot of one serving run's operational metrics.

    ``task_switches`` is the sum of *per-worker* switches — each worker is
    treated as its own accelerator pipeline, so a batch only counts as a
    switch against the same worker's previous batch.  The global interleaved
    schedule (what ``hardware_report`` charges threshold reloads against)
    alternates more under multi-worker load.
    """

    policy: str
    workers: int
    duration: float
    completed: int
    rejected: int
    errors: int
    cancelled: int
    num_batches: int
    task_switches: int
    latency: LatencyDigest
    queue_wait: LatencyDigest
    per_task: Dict[str, int] = field(default_factory=dict)
    #: Completed images per shard/worker index.  Populated once the worker
    #: result path reports shard identity (both backends do); empty for
    #: reports predating a batch completion.
    per_shard: Dict[int, int] = field(default_factory=dict)
    deadline_misses: int = 0
    deadline_total: int = 0
    #: Which worker implementation produced this report: ``"thread"`` for the
    #: in-process :class:`~repro.serving.ServingRuntime`, ``"process"`` for
    #: the :class:`~repro.serving.ShardedRuntime` process fleet.
    backend: str = "thread"
    #: Engine-side MAC accounting merged over every worker (threads share one
    #: recorder; processes ship snapshots home at shutdown).  ``dense_macs``
    #: is what an unspecialized dense plan would have executed,
    #: ``effective_macs`` what the fleet actually did.
    dense_macs: int = 0
    effective_macs: int = 0
    #: Fault-tolerance counters (only the process backend's supervisor moves
    #: them): worker respawns, requests re-queued after a shard death,
    #: requests shed by degraded-mode admission control, and shards declared
    #: flatlined (alive but unresponsive to heartbeats).
    restarts: int = 0
    redispatched: int = 0
    shed: int = 0
    flatline_alerts: int = 0

    @property
    def throughput(self) -> float:
        """Completed images per second over the measured window."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return self.completed / self.num_batches

    def mac_reduction(self) -> float:
        """Fraction of dense MACs the fleet avoided (0.0 without measurements)."""
        return fraction_saved(self.dense_macs, self.effective_macs)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form of the report, JSON-ready.

        Derived figures (throughput, mean batch size, MAC reduction) are
        included next to the raw counters so trajectory files are directly
        plottable, and every NaN anywhere in the payload (empty-run latency
        sentinels, whichever sub-dict they live in) is mapped to ``None`` —
        ``NaN`` is not valid JSON.
        """
        payload = _clean_nan(asdict(self))
        payload["throughput"] = self.throughput
        payload["mean_batch_size"] = self.mean_batch_size
        payload["mac_reduction"] = self.mac_reduction()
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable report (what ``serve-bench --json`` appends)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"policy={self.policy} backend={self.backend} workers={self.workers}: "
            f"{self.completed} images in {self.duration:.3f}s "
            f"({self.throughput:,.1f} images/sec)",
            f"  batches: {self.num_batches} (mean size {self.mean_batch_size:.1f}), "
            f"task switches: {self.task_switches}",
            f"  latency  p50/p95/p99: {_fmt_ms(self.latency.p50)} / "
            f"{_fmt_ms(self.latency.p95)} / {_fmt_ms(self.latency.p99)} ms "
            f"(max {_fmt_ms(self.latency.max)} ms)",
            f"  queue wait p50/p95: {_fmt_ms(self.queue_wait.p50)} / "
            f"{_fmt_ms(self.queue_wait.p95)} ms",
        ]
        if self.rejected or self.errors or self.cancelled:
            lines.append(
                f"  rejected: {self.rejected}, errors: {self.errors}, "
                f"cancelled: {self.cancelled}"
            )
        if self.restarts or self.redispatched or self.shed or self.flatline_alerts:
            lines.append(
                f"  fault tolerance: restarts: {self.restarts}, "
                f"redispatched: {self.redispatched}, shed: {self.shed}, "
                f"flatline alerts: {self.flatline_alerts}"
            )
        if self.deadline_total:
            met = self.deadline_total - self.deadline_misses
            lines.append(f"  deadlines met: {met}/{self.deadline_total}")
        if self.dense_macs:
            lines.append(
                f"  effective MACs: {self.effective_macs:,} / {self.dense_macs:,} dense "
                f"({100.0 * self.mac_reduction():.1f}% saved)"
            )
        if self.per_task:
            # At many-task scale (100+ tasks) a full per-task line is
            # unreadable, so the summary shows the top tasks by volume and
            # aggregates the long tail; ``to_dict()``/``to_json()`` always
            # carry the complete per-task map.
            top_k = 10
            by_volume = sorted(self.per_task.items(), key=lambda kv: (-kv[1], kv[0]))
            shown = sorted(by_volume[:top_k])
            mix = ", ".join(f"{task}: {count}" for task, count in shown)
            rest = by_volume[top_k:]
            if rest:
                remainder = sum(count for _, count in rest)
                mix += f", … and {len(rest)} more tasks: {remainder} images"
            lines.append(f"  per-task images: {mix}")
        if self.per_shard:
            mix = ", ".join(
                f"shard {shard}: {count}" for shard, count in sorted(self.per_shard.items())
            )
            lines.append(f"  per-shard images: {mix}")
        return "\n".join(lines)


@dataclass(frozen=True)
class WindowSnapshot:
    """Delta metrics over one reporting window of a live runtime.

    Counters are *deltas against the previous window* (the cumulative totals
    stay untouched in :class:`ServingMetrics`, so the final
    :class:`ServingReport` still covers the whole run and the window deltas
    sum to it).  Gauges (``queue_depth``, ``shard_depth``) and the sparsity
    ``drift`` reading are instantaneous values sampled at window close.
    """

    index: int
    start: float
    end: float
    completed: int
    rejected: int
    errors: int
    cancelled: int
    num_batches: int
    shed: int
    redispatched: int
    restarts: int
    flatline_alerts: int
    deadline_misses: int
    deadline_total: int
    latency: LatencyDigest
    queue_wait: LatencyDigest
    per_task: Dict[str, int] = field(default_factory=dict)
    per_shard: Dict[int, int] = field(default_factory=dict)
    #: Instantaneous queue depth per task (open + ready requests) at window
    #: close; supplied by the runtime, absent when sampled standalone.
    queue_depth: Dict[str, int] = field(default_factory=dict)
    #: Instantaneous in-flight depth per shard at window close (process
    #: backend; the thread backend has no per-shard queues).
    shard_depth: Dict[int, int] = field(default_factory=dict)
    #: Max per-channel survival-rate delta vs the deployed calibration
    #: profile, as last measured by the recalibration loop (None until one
    #: reading exists).
    drift: Optional[float] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def throughput(self) -> float:
        """Completed images per second within this window."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def miss_rate(self) -> float:
        """Deadline-miss burn rate over this window (0.0 with no deadlines)."""
        if self.deadline_total == 0:
            return 0.0
        return self.deadline_misses / self.deadline_total

    def to_dict(self) -> Dict[str, object]:
        payload = _clean_nan(asdict(self))
        payload["duration"] = self.duration
        payload["throughput"] = self.throughput
        payload["miss_rate"] = self.miss_rate
        return payload


class ServingMetrics:
    """Mutable, lock-guarded accumulator behind :class:`ServingReport`.

    ``clock`` is taken at construction so every report is measured on one
    clock domain: the runtime passes its injectable clock down, and a
    mid-run :meth:`report` without an explicit ``now`` reads that clock
    instead of silently collapsing the window to zero.
    """

    #: Cumulative counters a window snapshot reports as deltas.  The window
    #: baseline is a plain dict of these names so adding a counter here keeps
    #: :meth:`window_report` in sync automatically.
    _WINDOW_COUNTERS = (
        "_rejected",
        "_errors",
        "_cancelled",
        "_num_batches",
        "_shed",
        "_redispatched",
        "_restarts",
        "_flatline_alerts",
        "_deadline_misses",
        "_deadline_total",
    )

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._per_task: Dict[str, int] = {}
        self._per_shard: Dict[int, int] = {}
        self._num_batches = 0
        self._task_switches = 0
        self._rejected = 0
        self._errors = 0
        self._cancelled = 0
        self._deadline_misses = 0
        self._deadline_total = 0
        self._restarts = 0
        self._redispatched = 0
        self._shed = 0
        self._flatline_alerts = 0
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._reset_window_baseline()

    def _reset_window_baseline(self) -> None:
        """Re-anchor window deltas at the current cumulative totals.

        Caller holds ``self._lock`` (or is ``__init__``).
        """
        self._window_index = 0
        self._window_started_at: Optional[float] = None
        self._window_base = {name: getattr(self, name) for name in self._WINDOW_COUNTERS}
        self._window_latency_offset = len(self._latencies)
        self._window_queue_offset = len(self._queue_waits)
        self._window_per_task = dict(self._per_task)
        self._window_per_shard = dict(self._per_shard)

    # ------------------------------------------------------------ lifecycle --
    def mark_start(self, now: float) -> None:
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            if self._window_started_at is None:
                self._window_started_at = now

    def mark_stop(self, now: float) -> None:
        with self._lock:
            self._stopped_at = now

    def reset(self, now: Optional[float] = None) -> None:
        """Drop every sample and restart the measurement window at ``now``.

        The per-request latency lists grow unboundedly on an always-on
        runtime; callers owning a long-lived service reset between reporting
        windows.
        """
        with self._lock:
            self._latencies.clear()
            self._queue_waits.clear()
            self._per_task.clear()
            self._per_shard.clear()
            self._num_batches = 0
            self._task_switches = 0
            self._rejected = 0
            self._errors = 0
            self._cancelled = 0
            self._deadline_misses = 0
            self._deadline_total = 0
            self._restarts = 0
            self._redispatched = 0
            self._shed = 0
            self._flatline_alerts = 0
            self._started_at = now
            self._stopped_at = None
            self._reset_window_baseline()
            self._window_started_at = now

    # ------------------------------------------------------------- recording --
    def observe_batch(
        self,
        task: str,
        latencies: Sequence[float],
        queue_waits: Sequence[float],
        switched: bool,
        deadline_results: Sequence[Optional[bool]] = (),
        shard: Optional[int] = None,
        per_task: Optional[Dict[str, int]] = None,
    ) -> None:
        """Record one executed batch.

        ``per_task`` (set for coalesced mixed-task batches) attributes the
        batch's images to each member task by its own row count instead of
        charging them all to the representative ``task``; the batch still
        counts once for batch/switch accounting.
        """
        with self._lock:
            self._latencies.extend(latencies)
            self._queue_waits.extend(queue_waits)
            if per_task:
                for name, count in per_task.items():
                    self._per_task[name] = self._per_task.get(name, 0) + count
            else:
                self._per_task[task] = self._per_task.get(task, 0) + len(latencies)
            if shard is not None:
                self._per_shard[shard] = self._per_shard.get(shard, 0) + len(latencies)
            self._num_batches += 1
            if switched:
                self._task_switches += 1
            for met in deadline_results:
                if met is None:
                    continue
                self._deadline_total += 1
                if not met:
                    self._deadline_misses += 1

    def observe_rejection(self, count: int = 1) -> None:
        with self._lock:
            self._rejected += count

    def observe_error(self, count: int = 1) -> None:
        with self._lock:
            self._errors += count

    def observe_cancelled(self, count: int = 1) -> None:
        with self._lock:
            self._cancelled += count

    def observe_restart(self, count: int = 1) -> None:
        with self._lock:
            self._restarts += count

    def observe_redispatch(self, count: int = 1) -> None:
        with self._lock:
            self._redispatched += count

    def observe_shed(self, count: int = 1) -> None:
        with self._lock:
            self._shed += count

    def observe_flatline(self, count: int = 1) -> None:
        with self._lock:
            self._flatline_alerts += count

    # --------------------------------------------------------------- queries --
    def completed(self) -> int:
        with self._lock:
            return len(self._latencies)

    def report(
        self,
        policy: str,
        workers: int,
        now: Optional[float] = None,
        backend: str = "thread",
        dense_macs: int = 0,
        effective_macs: int = 0,
    ) -> ServingReport:
        """Snapshot the counters into an immutable report.

        The measurement window is always explicit: a stopped run measures
        start→stop; a live run measures start→``now`` when the caller
        supplies a reading, else start→``self._clock()``.  A mid-run report
        can therefore never silently read duration (and throughput) 0.0.
        """
        with self._lock:
            if self._started_at is None:
                duration = 0.0
            else:
                if self._stopped_at is not None:
                    end = self._stopped_at
                elif now is not None:
                    end = now
                else:
                    end = self._clock()
                duration = max(0.0, end - self._started_at)
            return ServingReport(
                policy=policy,
                workers=workers,
                duration=duration,
                completed=len(self._latencies),
                rejected=self._rejected,
                errors=self._errors,
                cancelled=self._cancelled,
                num_batches=self._num_batches,
                task_switches=self._task_switches,
                latency=LatencyDigest.of(self._latencies),
                queue_wait=LatencyDigest.of(self._queue_waits),
                per_task=dict(self._per_task),
                per_shard=dict(self._per_shard),
                deadline_misses=self._deadline_misses,
                deadline_total=self._deadline_total,
                backend=backend,
                dense_macs=dense_macs,
                effective_macs=effective_macs,
                restarts=self._restarts,
                redispatched=self._redispatched,
                shed=self._shed,
                flatline_alerts=self._flatline_alerts,
            )

    def window_report(
        self,
        now: Optional[float] = None,
        queue_depth: Optional[Mapping[str, int]] = None,
        shard_depth: Optional[Mapping[int, int]] = None,
        drift: Optional[float] = None,
    ) -> WindowSnapshot:
        """Close the current window and return its delta snapshot.

        The snapshot covers everything observed since the previous
        ``window_report`` (or since :meth:`mark_start` for the first window);
        the baseline then rolls forward, so consecutive snapshots partition
        the run and their ``completed`` deltas sum to the cumulative
        :meth:`report` total.  Gauges are passed in by the runtime because
        queue depth lives in the batcher/shards, not here.
        """
        with self._lock:
            end = self._clock() if now is None else now
            start = self._window_started_at
            if start is None:
                start = self._started_at if self._started_at is not None else end
            latencies = self._latencies[self._window_latency_offset:]
            queue_waits = self._queue_waits[self._window_queue_offset:]
            per_task = {
                task: count - self._window_per_task.get(task, 0)
                for task, count in self._per_task.items()
                if count != self._window_per_task.get(task, 0)
            }
            per_shard = {
                shard: count - self._window_per_shard.get(shard, 0)
                for shard, count in self._per_shard.items()
                if count != self._window_per_shard.get(shard, 0)
            }
            base = self._window_base
            snapshot = WindowSnapshot(
                index=self._window_index,
                start=start,
                end=end,
                completed=len(latencies),
                rejected=self._rejected - base["_rejected"],
                errors=self._errors - base["_errors"],
                cancelled=self._cancelled - base["_cancelled"],
                num_batches=self._num_batches - base["_num_batches"],
                shed=self._shed - base["_shed"],
                redispatched=self._redispatched - base["_redispatched"],
                restarts=self._restarts - base["_restarts"],
                flatline_alerts=self._flatline_alerts - base["_flatline_alerts"],
                deadline_misses=self._deadline_misses - base["_deadline_misses"],
                deadline_total=self._deadline_total - base["_deadline_total"],
                latency=LatencyDigest.of(latencies),
                queue_wait=LatencyDigest.of(queue_waits),
                per_task=per_task,
                per_shard=per_shard,
                queue_depth=dict(queue_depth or {}),
                shard_depth=dict(shard_depth or {}),
                drift=drift,
            )
            index = self._window_index
            self._reset_window_baseline()
            self._window_index = index + 1
            self._window_started_at = end
            return snapshot
