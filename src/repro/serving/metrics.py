"""Thread-safe serving metrics: latency percentiles, throughput, switches.

Workers report one :meth:`ServingMetrics.observe_batch` per executed
micro-batch; the runtime snapshots everything into an immutable
:class:`ServingReport` whose :meth:`ServingReport.summary` renders the
operator-facing text block the CLI and benchmarks print.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.utils.ratios import fraction_saved


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (``pct`` in [0, 100]) of ``values``."""
    if not values:
        return math.nan
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyDigest:
    """p50/p95/p99/mean/max over one latency population, in seconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencyDigest":
        if not values:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )


@dataclass(frozen=True)
class ServingReport:
    """Immutable snapshot of one serving run's operational metrics.

    ``task_switches`` is the sum of *per-worker* switches — each worker is
    treated as its own accelerator pipeline, so a batch only counts as a
    switch against the same worker's previous batch.  The global interleaved
    schedule (what ``hardware_report`` charges threshold reloads against)
    alternates more under multi-worker load.
    """

    policy: str
    workers: int
    duration: float
    completed: int
    rejected: int
    errors: int
    cancelled: int
    num_batches: int
    task_switches: int
    latency: LatencyDigest
    queue_wait: LatencyDigest
    per_task: Dict[str, int] = field(default_factory=dict)
    deadline_misses: int = 0
    deadline_total: int = 0
    #: Which worker implementation produced this report: ``"thread"`` for the
    #: in-process :class:`~repro.serving.ServingRuntime`, ``"process"`` for
    #: the :class:`~repro.serving.ShardedRuntime` process fleet.
    backend: str = "thread"
    #: Engine-side MAC accounting merged over every worker (threads share one
    #: recorder; processes ship snapshots home at shutdown).  ``dense_macs``
    #: is what an unspecialized dense plan would have executed,
    #: ``effective_macs`` what the fleet actually did.
    dense_macs: int = 0
    effective_macs: int = 0
    #: Fault-tolerance counters (only the process backend's supervisor moves
    #: them): worker respawns, requests re-queued after a shard death,
    #: requests shed by degraded-mode admission control, and shards declared
    #: flatlined (alive but unresponsive to heartbeats).
    restarts: int = 0
    redispatched: int = 0
    shed: int = 0
    flatline_alerts: int = 0

    @property
    def throughput(self) -> float:
        """Completed images per second over the measured window."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_batch_size(self) -> float:
        if self.num_batches == 0:
            return 0.0
        return self.completed / self.num_batches

    def mac_reduction(self) -> float:
        """Fraction of dense MACs the fleet avoided (0.0 without measurements)."""
        return fraction_saved(self.dense_macs, self.effective_macs)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form of the report, JSON-ready.

        Derived figures (throughput, mean batch size, MAC reduction) are
        included next to the raw counters so trajectory files are directly
        plottable, and NaN latencies (empty runs) are mapped to ``None`` —
        ``NaN`` is not valid JSON.
        """

        def _clean(value):
            if isinstance(value, float) and math.isnan(value):
                return None
            return value

        payload = {key: value for key, value in asdict(self).items()}
        payload["latency"] = {k: _clean(v) for k, v in payload["latency"].items()}
        payload["queue_wait"] = {k: _clean(v) for k, v in payload["queue_wait"].items()}
        payload["throughput"] = self.throughput
        payload["mean_batch_size"] = self.mean_batch_size
        payload["mac_reduction"] = self.mac_reduction()
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable report (what ``serve-bench --json`` appends)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"policy={self.policy} backend={self.backend} workers={self.workers}: "
            f"{self.completed} images in {self.duration:.3f}s "
            f"({self.throughput:,.1f} images/sec)",
            f"  batches: {self.num_batches} (mean size {self.mean_batch_size:.1f}), "
            f"task switches: {self.task_switches}",
            f"  latency  p50/p95/p99: {1e3 * self.latency.p50:.1f} / "
            f"{1e3 * self.latency.p95:.1f} / {1e3 * self.latency.p99:.1f} ms "
            f"(max {1e3 * self.latency.max:.1f} ms)",
            f"  queue wait p50/p95: {1e3 * self.queue_wait.p50:.1f} / "
            f"{1e3 * self.queue_wait.p95:.1f} ms",
        ]
        if self.rejected or self.errors or self.cancelled:
            lines.append(
                f"  rejected: {self.rejected}, errors: {self.errors}, "
                f"cancelled: {self.cancelled}"
            )
        if self.restarts or self.redispatched or self.shed or self.flatline_alerts:
            lines.append(
                f"  fault tolerance: restarts: {self.restarts}, "
                f"redispatched: {self.redispatched}, shed: {self.shed}, "
                f"flatline alerts: {self.flatline_alerts}"
            )
        if self.deadline_total:
            met = self.deadline_total - self.deadline_misses
            lines.append(f"  deadlines met: {met}/{self.deadline_total}")
        if self.dense_macs:
            lines.append(
                f"  effective MACs: {self.effective_macs:,} / {self.dense_macs:,} dense "
                f"({100.0 * self.mac_reduction():.1f}% saved)"
            )
        if self.per_task:
            mix = ", ".join(f"{task}: {count}" for task, count in sorted(self.per_task.items()))
            lines.append(f"  per-task images: {mix}")
        return "\n".join(lines)


class ServingMetrics:
    """Mutable, lock-guarded accumulator behind :class:`ServingReport`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._per_task: Dict[str, int] = {}
        self._num_batches = 0
        self._task_switches = 0
        self._rejected = 0
        self._errors = 0
        self._cancelled = 0
        self._deadline_misses = 0
        self._deadline_total = 0
        self._restarts = 0
        self._redispatched = 0
        self._shed = 0
        self._flatline_alerts = 0
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # ------------------------------------------------------------ lifecycle --
    def mark_start(self, now: float) -> None:
        with self._lock:
            if self._started_at is None:
                self._started_at = now

    def mark_stop(self, now: float) -> None:
        with self._lock:
            self._stopped_at = now

    def reset(self, now: Optional[float] = None) -> None:
        """Drop every sample and restart the measurement window at ``now``.

        The per-request latency lists grow unboundedly on an always-on
        runtime; callers owning a long-lived service reset between reporting
        windows.
        """
        with self._lock:
            self._latencies.clear()
            self._queue_waits.clear()
            self._per_task.clear()
            self._num_batches = 0
            self._task_switches = 0
            self._rejected = 0
            self._errors = 0
            self._cancelled = 0
            self._deadline_misses = 0
            self._deadline_total = 0
            self._restarts = 0
            self._redispatched = 0
            self._shed = 0
            self._flatline_alerts = 0
            self._started_at = now
            self._stopped_at = None

    # ------------------------------------------------------------- recording --
    def observe_batch(
        self,
        task: str,
        latencies: Sequence[float],
        queue_waits: Sequence[float],
        switched: bool,
        deadline_results: Sequence[Optional[bool]] = (),
    ) -> None:
        with self._lock:
            self._latencies.extend(latencies)
            self._queue_waits.extend(queue_waits)
            self._per_task[task] = self._per_task.get(task, 0) + len(latencies)
            self._num_batches += 1
            if switched:
                self._task_switches += 1
            for met in deadline_results:
                if met is None:
                    continue
                self._deadline_total += 1
                if not met:
                    self._deadline_misses += 1

    def observe_rejection(self, count: int = 1) -> None:
        with self._lock:
            self._rejected += count

    def observe_error(self, count: int = 1) -> None:
        with self._lock:
            self._errors += count

    def observe_cancelled(self, count: int = 1) -> None:
        with self._lock:
            self._cancelled += count

    def observe_restart(self, count: int = 1) -> None:
        with self._lock:
            self._restarts += count

    def observe_redispatch(self, count: int = 1) -> None:
        with self._lock:
            self._redispatched += count

    def observe_shed(self, count: int = 1) -> None:
        with self._lock:
            self._shed += count

    def observe_flatline(self, count: int = 1) -> None:
        with self._lock:
            self._flatline_alerts += count

    # --------------------------------------------------------------- queries --
    def completed(self) -> int:
        with self._lock:
            return len(self._latencies)

    def report(
        self,
        policy: str,
        workers: int,
        now: Optional[float] = None,
        backend: str = "thread",
        dense_macs: int = 0,
        effective_macs: int = 0,
    ) -> ServingReport:
        """Snapshot the counters into an immutable report."""
        with self._lock:
            if self._started_at is None:
                duration = 0.0
            else:
                end = self._stopped_at if self._stopped_at is not None else now
                duration = max(0.0, (end if end is not None else self._started_at) - self._started_at)
            return ServingReport(
                policy=policy,
                workers=workers,
                duration=duration,
                completed=len(self._latencies),
                rejected=self._rejected,
                errors=self._errors,
                cancelled=self._cancelled,
                num_batches=self._num_batches,
                task_switches=self._task_switches,
                latency=LatencyDigest.of(self._latencies),
                queue_wait=LatencyDigest.of(self._queue_waits),
                per_task=dict(self._per_task),
                deadline_misses=self._deadline_misses,
                deadline_total=self._deadline_total,
                backend=backend,
                dense_macs=dense_macs,
                effective_macs=effective_macs,
                restarts=self._restarts,
                redispatched=self._redispatched,
                shed=self._shed,
                flatline_alerts=self._flatline_alerts,
            )
