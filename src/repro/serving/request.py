"""Request/response types and admission-control errors for online serving.

A client ``submit()`` returns a :class:`ServingResult` — a small future that a
worker thread later completes with the logits and execution timestamps.  The
request travelling through the batcher is a :class:`ServingRequest`, which is
structurally compatible with :class:`~repro.engine.scheduling.InferenceRequest`
(``index``/``task``/``image``/``arrival_time``/``deadline``) so the shared
scheduling policies can rank serving micro-batches directly.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np


class AdmissionError(RuntimeError):
    """Base class for requests refused at the door."""


class QueueFullError(AdmissionError):
    """The bounded request queue is at capacity and the caller chose not to wait."""


class RuntimeClosedError(AdmissionError):
    """The runtime no longer accepts requests (stopped or stopping)."""


class RequestCancelledError(RuntimeError):
    """The request was dropped before execution (``stop(drain=False)``)."""


class NoLiveShardsError(RuntimeError):
    """Every worker of the fleet is dead and no restart is possible.

    Raised immediately at :meth:`~repro.serving.base.BaseRuntime.submit`
    (instead of silently enqueueing into a queue nobody drains) and as the
    permanent failure of re-dispatched requests that ran out of targets.
    """


class RedispatchError(RuntimeError):
    """Base class for the permanent failures of the fault-tolerant re-dispatch
    path: the request was *accepted* and re-queued after a shard death, but
    could not be completed within its retry budget or deadline."""


class RetryBudgetExceededError(RedispatchError):
    """The request failed on ``max_retries + 1`` distinct dispatch attempts."""


class DeadlineExpiredError(RedispatchError):
    """The request's deadline passed (or cannot be met even by the earliest
    possible retry) while it was waiting for re-dispatch."""


class ServingResult:
    """Future for one submitted image.

    Timestamps are on the runtime's clock (``time.monotonic()`` by default):
    ``arrival_time`` at admission, ``start_time`` when the executing worker
    launched the micro-batch, ``finish_time`` when the logits were ready.
    """

    __slots__ = (
        "index",
        "task",
        "arrival_time",
        "deadline",
        "start_time",
        "finish_time",
        "_event",
        "_logits",
        "_error",
    )

    def __init__(
        self, index: int, task: str, arrival_time: float, deadline: Optional[float] = None
    ) -> None:
        self.index = index
        self.task = task
        self.arrival_time = arrival_time
        self.deadline = deadline
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self._event = threading.Event()
        self._logits: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------- producer --
    def set_result(self, logits: np.ndarray, start_time: float, finish_time: float) -> None:
        self._logits = logits
        self.start_time = start_time
        self.finish_time = finish_time
        self._event.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    # ------------------------------------------------------------- consumer --
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the logits are ready (or raise the execution error)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.index} ({self.task}) not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._logits is not None
        return self._logits

    @property
    def latency(self) -> Optional[float]:
        """End-to-end seconds from admission to logits, once done."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent batching/queueing before execution started."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the logits were ready by the deadline (None if no deadline)."""
        if self.deadline is None or self.finish_time is None:
            return None
        return self.finish_time <= self.deadline


class ServingRequest:
    """One admitted image on its way through the batcher.

    Duck-typed against :class:`~repro.engine.scheduling.InferenceRequest` so
    :class:`~repro.engine.scheduling.MicroBatch` and the policies accept it.

    ``attempts``/``max_retries`` are the fault-tolerance budget: ``attempts``
    counts dispatches that ended in a shard death (0 while nothing has
    failed), and a request is permanently failed with
    :class:`RetryBudgetExceededError` once ``attempts`` would exceed
    ``max_retries``.  The thread backend never retries, so both stay at their
    defaults there.
    """

    __slots__ = (
        "index",
        "task",
        "image",
        "arrival_time",
        "deadline",
        "result",
        "attempts",
        "max_retries",
    )

    def __init__(
        self,
        index: int,
        task: str,
        image: np.ndarray,
        arrival_time: float,
        deadline: Optional[float],
        result: ServingResult,
        max_retries: int = 0,
    ) -> None:
        self.index = index
        self.task = task
        self.image = image
        self.arrival_time = arrival_time
        self.deadline = deadline
        self.result = result
        self.attempts = 0
        self.max_retries = max_retries
