"""Conventional transfer learning: per-task full-weight fine-tuning.

This is the paper's baseline (Table III): starting from the parent weights,
every child task gets its own complete copy of the network whose weights are
all fine-tuned on that task.  The result is ``n`` full weight sets
(``W_child-1 ... W_child-n``) that must all live in DRAM, which is exactly the
memory overhead MIME eliminates.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.models.vgg import VGG
from repro.datasets.base import DataLoader
from repro.datasets.tasks import TaskSpec
from repro.baselines.trainer import SupervisedTrainer, SupervisedHistory
from repro.utils.rng import new_rng


def clone_vgg(model: VGG, num_classes: int | None = None, rng: np.random.Generator | None = None) -> VGG:
    """Deep-copy a VGG: same architecture, copied weights, optionally a new head.

    When ``num_classes`` differs from the source model's, the final classifier
    layer is re-initialised for the new class count (standard transfer-learning
    practice), and every other parameter is copied verbatim.
    """
    rng = rng if rng is not None else new_rng()
    clone = VGG(
        model.config,
        num_classes=model.num_classes,
        in_channels=model.in_channels,
        input_size=model.input_size,
        width_multiplier=model.width_multiplier,
        batch_norm=model.batch_norm,
        classifier_hidden=_hidden_sizes(model),
        rng=rng,
    )
    clone.load_state_dict(model.state_dict())
    if num_classes is not None and num_classes != model.num_classes:
        clone.replace_classifier_head(num_classes, rng=rng)
    clone.unfreeze()
    return clone


def _hidden_sizes(model: VGG) -> tuple[int, ...]:
    """Recover the classifier hidden sizes of an existing VGG."""
    from repro.nn import Linear

    linears = [layer for layer in model.classifier if isinstance(layer, Linear)]
    return tuple(layer.out_features for layer in linears[:-1])


def train_parent(
    model: VGG,
    task: TaskSpec,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 1e-3,
    rng: np.random.Generator | None = None,
    verbose: bool = False,
) -> Tuple[SupervisedHistory, float]:
    """Train the parent backbone on the parent task.

    Returns the training history and the parent's test accuracy (the analogue
    of the paper's "VGG16 with ImageNet, 73.36 % test accuracy").
    """
    rng = rng if rng is not None else new_rng()
    trainer = SupervisedTrainer(model, lr=lr, optimizer="adam")
    loader = DataLoader(task.train, batch_size=batch_size, shuffle=True, rng=rng)
    history = trainer.fit(loader, epochs=epochs, verbose=verbose)
    _, test_accuracy = trainer.evaluate(DataLoader(task.test, batch_size=batch_size))
    return history, test_accuracy


def finetune_child(
    parent: VGG,
    task: TaskSpec,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 1e-3,
    rng: np.random.Generator | None = None,
    verbose: bool = False,
) -> Tuple[VGG, SupervisedHistory, float]:
    """Conventional transfer learning of one child task.

    Clones the parent, swaps the classification head for the child's class
    count, fine-tunes *all* weights, and returns
    ``(child_model, history, test_accuracy)``.
    """
    rng = rng if rng is not None else new_rng()
    child = clone_vgg(parent, num_classes=task.num_classes, rng=rng)
    trainer = SupervisedTrainer(child, lr=lr, optimizer="adam")
    loader = DataLoader(task.train, batch_size=batch_size, shuffle=True, rng=rng)
    history = trainer.fit(loader, epochs=epochs, verbose=verbose)
    _, test_accuracy = trainer.evaluate(DataLoader(task.test, batch_size=batch_size))
    return child, history, test_accuracy


def train_from_scratch(
    model: VGG,
    task: TaskSpec,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 1e-3,
    rng: np.random.Generator | None = None,
    verbose: bool = False,
) -> Tuple[SupervisedHistory, float]:
    """Train a freshly initialised model directly on a child task.

    Included for ablations: the paper's baselines are obtained "by normally
    training the VGG16 DNN on three child datasets", which (depending on
    reading) is either fine-tuning or from-scratch training; both are provided.
    """
    rng = rng if rng is not None else new_rng()
    trainer = SupervisedTrainer(model, lr=lr, optimizer="adam")
    loader = DataLoader(task.train, batch_size=batch_size, shuffle=True, rng=rng)
    history = trainer.fit(loader, epochs=epochs, verbose=verbose)
    _, test_accuracy = trainer.evaluate(DataLoader(task.test, batch_size=batch_size))
    return history, test_accuracy
