"""Pruning at initialisation to a target layerwise weight sparsity.

Figure 8 of the paper compares MIME against conventional multi-task inference
with *highly compressed* models: VGG16 child models with 90 % layerwise weight
sparsity, "generated via pruning at initialization followed by training to
near iso-accuracy".  Two criteria are provided:

* **SNIP** (Lee et al., 2019): keep the weights with the largest connection
  saliency ``|g * w|`` measured on one (or a few) mini-batches at init.
* **Magnitude**: keep the weights with the largest ``|w|`` at init.

Pruning is layerwise — each weight tensor is pruned to the same target
sparsity — because the paper specifies "90 % layerwise weight-sparsity", and
because the hardware model reasons about per-layer weight volumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.nn import CrossEntropyLoss
from repro.nn.module import Module
from repro.models.vgg import VGG


#: ``{parameter_name: binary keep-mask}`` over weight tensors.
PruningMasks = Dict[str, np.ndarray]


def _prunable_parameters(model: Module) -> Dict[str, np.ndarray]:
    """Weight tensors eligible for pruning (conv / linear weights, not biases or BN)."""
    prunable: Dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        if name.endswith("weight") and param.data.ndim >= 2:
            prunable[name] = param.data
    return prunable


def _layerwise_keep_mask(scores: np.ndarray, sparsity: float) -> np.ndarray:
    """Keep the top ``(1 - sparsity)`` fraction of entries of ``scores``."""
    total = scores.size
    num_prune = int(round(total * sparsity))
    num_prune = min(max(num_prune, 0), total - 1)  # always keep at least one weight
    if num_prune == 0:
        return np.ones_like(scores, dtype=np.float64)
    flat = scores.reshape(-1)
    threshold = np.partition(flat, num_prune - 1)[num_prune - 1]
    mask = (flat > threshold).astype(np.float64)
    # Resolve ties at the threshold so the target count is met exactly.
    deficit = (total - num_prune) - int(mask.sum())
    if deficit > 0:
        tie_indices = np.flatnonzero(flat == threshold)
        mask[tie_indices[:deficit]] = 1.0
    return mask.reshape(scores.shape)


def magnitude_prune(model: Module, sparsity: float) -> PruningMasks:
    """Layerwise magnitude pruning at initialisation."""
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must lie in [0, 1)")
    masks: PruningMasks = {}
    for name, data in _prunable_parameters(model).items():
        masks[name] = _layerwise_keep_mask(np.abs(data), sparsity)
    return masks


def snip_prune(
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    sparsity: float,
    max_batches: int = 1,
) -> PruningMasks:
    """SNIP-style saliency pruning at initialisation.

    Accumulates ``|dL/dw * w|`` over up to ``max_batches`` mini-batches and
    keeps, per layer, the weights with the highest saliency.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must lie in [0, 1)")
    if max_batches <= 0:
        raise ValueError("max_batches must be positive")

    criterion = CrossEntropyLoss()
    named = dict(model.named_parameters())
    prunable = _prunable_parameters(model)
    saliency = {name: np.zeros_like(data) for name, data in prunable.items()}

    model.train()
    used = 0
    for images, labels in batches:
        if used >= max_batches:
            break
        model.zero_grad()
        logits = model.forward(images)
        criterion(logits, labels)
        model.backward(criterion.backward())
        for name in prunable:
            grad = named[name].grad
            if grad is not None:
                saliency[name] += np.abs(grad * named[name].data)
        used += 1
    if used == 0:
        raise ValueError("snip_prune received no batches")
    model.zero_grad()

    return {name: _layerwise_keep_mask(scores, sparsity) for name, scores in saliency.items()}


def apply_masks(model: Module, masks: PruningMasks) -> None:
    """Zero out the pruned weights of ``model`` in place."""
    named = dict(model.named_parameters())
    for name, mask in masks.items():
        if name not in named:
            raise KeyError(f"mask refers to unknown parameter '{name}'")
        if named[name].data.shape != mask.shape:
            raise ValueError(f"mask shape mismatch for '{name}'")
        named[name].data *= mask


def measure_weight_sparsity(model: Module) -> Dict[str, float]:
    """Fraction of exactly-zero entries of every prunable weight tensor."""
    return {
        name: float(np.mean(data == 0.0)) for name, data in _prunable_parameters(model).items()
    }


def prune_at_init(
    model: VGG,
    sparsity: float = 0.9,
    method: str = "snip",
    batches: Iterable[Tuple[np.ndarray, np.ndarray]] | None = None,
    max_batches: int = 1,
) -> PruningMasks:
    """Prune a freshly initialised model to ``sparsity`` and return the keep-masks.

    The masks should then be passed to
    :class:`repro.baselines.trainer.SupervisedTrainer` as ``weight_masks`` so the
    sparsity is preserved through training.
    """
    if method not in ("snip", "magnitude"):
        raise ValueError("method must be 'snip' or 'magnitude'")
    if method == "snip":
        if batches is None:
            raise ValueError("SNIP pruning requires data batches")
        masks = snip_prune(model, batches, sparsity, max_batches=max_batches)
    else:
        masks = magnitude_prune(model, sparsity)
    apply_masks(model, masks)
    return masks
