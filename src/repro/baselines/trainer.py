"""Generic supervised trainer for full-weight models.

Used to (i) train the parent backbone, (ii) fine-tune conventional per-task
child models, and (iii) train pruned-at-init models while keeping their weight
masks enforced after every optimiser step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.nn import Adam, CrossEntropyLoss, SGD, accuracy
from repro.nn.module import Module
from repro.datasets.base import DataLoader
from repro.utils.logging import get_logger

_LOGGER = get_logger("baselines.trainer")


@dataclass
class SupervisedHistory:
    """Per-epoch training curves for a conventionally trained model."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)


class SupervisedTrainer:
    """Cross-entropy training of every trainable parameter of a model.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` with ``forward``/``backward``.
    lr, optimizer, momentum, weight_decay:
        Optimiser settings (``"adam"`` or ``"sgd"``).
    weight_masks:
        Optional ``{parameter_name: binary mask}`` applied multiplicatively to
        the parameter data after every optimiser step — this keeps
        pruned-at-init models exactly at their target weight sparsity.
    """

    def __init__(
        self,
        model: Module,
        lr: float = 1e-3,
        optimizer: str = "adam",
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        weight_masks: Dict[str, np.ndarray] | None = None,
    ) -> None:
        if optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        self.model = model
        self.criterion = CrossEntropyLoss()
        parameters = [p for p in model.parameters() if p.requires_grad]
        if optimizer == "adam":
            self.optimizer = Adam(parameters, lr=lr, weight_decay=weight_decay)
        else:
            self.optimizer = SGD(parameters, lr=lr, momentum=momentum, weight_decay=weight_decay)
        self.weight_masks = weight_masks or {}
        self._named = dict(model.named_parameters())
        for name in self.weight_masks:
            if name not in self._named:
                raise KeyError(f"weight mask refers to unknown parameter '{name}'")

    # ------------------------------------------------------------------ public --
    def fit(
        self,
        train_loader: DataLoader | Iterable[Tuple[np.ndarray, np.ndarray]],
        epochs: int = 10,
        val_loader: DataLoader | Iterable[Tuple[np.ndarray, np.ndarray]] | None = None,
        verbose: bool = False,
    ) -> SupervisedHistory:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        history = SupervisedHistory()
        self._apply_masks()
        for epoch in range(epochs):
            loss, acc = self._run_epoch(train_loader)
            history.train_loss.append(loss)
            history.train_accuracy.append(acc)
            if val_loader is not None:
                _, val_acc = self.evaluate(val_loader)
                history.val_accuracy.append(val_acc)
            if verbose:
                _LOGGER.info("epoch=%d loss=%.4f acc=%.3f", epoch + 1, loss, acc)
        return history

    def evaluate(
        self, loader: DataLoader | Iterable[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[float, float]:
        """Return ``(mean CE loss, accuracy)`` over ``loader``."""
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        total = 0
        for images, labels in loader:
            logits = self.model.forward(images)
            total_loss += self.criterion(logits, labels) * images.shape[0]
            total_correct += accuracy(logits, labels) * images.shape[0]
            total += images.shape[0]
        if total == 0:
            raise ValueError("the evaluation loader yielded no batches")
        return total_loss / total, total_correct / total

    # ----------------------------------------------------------------- private --
    def _run_epoch(self, loader) -> Tuple[float, float]:
        self.model.train()
        total_loss = 0.0
        total_correct = 0.0
        total = 0
        for images, labels in loader:
            self.optimizer.zero_grad()
            logits = self.model.forward(images)
            loss = self.criterion(logits, labels)
            self.model.backward(self.criterion.backward())
            self.optimizer.step()
            self._apply_masks()

            batch = images.shape[0]
            total_loss += loss * batch
            total_correct += accuracy(logits, labels) * batch
            total += batch
        if total == 0:
            raise ValueError("the training loader yielded no batches")
        return total_loss / total, total_correct / total

    def _apply_masks(self) -> None:
        for name, mask in self.weight_masks.items():
            param = self._named[name]
            param.data *= mask
