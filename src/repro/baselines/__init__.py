"""Baselines the paper compares MIME against.

* :mod:`repro.baselines.trainer` — a generic supervised trainer for full-weight
  training (used for the parent task and every baseline).
* :mod:`repro.baselines.finetune` — conventional multi-task transfer learning:
  clone the parent and fine-tune all weights per child task (Table III).
* :mod:`repro.baselines.prune_at_init` — 90 %-sparse models obtained by pruning
  at initialisation (SNIP-style saliency or magnitude), used in Fig. 8.
"""

from repro.baselines.trainer import SupervisedTrainer, SupervisedHistory
from repro.baselines.finetune import clone_vgg, finetune_child, train_parent, train_from_scratch
from repro.baselines.prune_at_init import (
    PruningMasks,
    snip_prune,
    magnitude_prune,
    apply_masks,
    measure_weight_sparsity,
    prune_at_init,
)

__all__ = [
    "SupervisedTrainer",
    "SupervisedHistory",
    "clone_vgg",
    "finetune_child",
    "train_parent",
    "train_from_scratch",
    "PruningMasks",
    "snip_prune",
    "magnitude_prune",
    "apply_masks",
    "measure_weight_sparsity",
    "prune_at_init",
]
