"""Multi-layer perceptron reference model."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import Flatten, Linear, Module, ReLU, Sequential
from repro.utils.rng import new_rng


class MLP(Module):
    """A fully-connected classifier over flattened inputs.

    Parameters
    ----------
    input_dim:
        Flattened input dimensionality (e.g. ``3*32*32`` for RGB 32x32 images).
    hidden_sizes:
        Sizes of the hidden layers.
    num_classes:
        Number of output classes.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_sizes: Sequence[int] = (128, 64),
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        rng = rng if rng is not None else new_rng()
        self.input_dim = input_dim
        self.num_classes = num_classes

        layers = [Flatten()]
        previous = input_dim
        for hidden in hidden_sizes:
            layers.append(Linear(previous, hidden, rng=rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, num_classes, rng=rng))
        self.network = Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.network(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.network.backward(grad_output)
