"""Model zoo: VGG family plus small reference models, and layer-shape extraction."""

from repro.models.vgg import VGG, vgg11, vgg13, vgg16, vgg19, vgg_tiny, vgg_small, VGG_CONFIGS
from repro.models.lenet import LeNet
from repro.models.mlp import MLP
from repro.models.shapes import LayerShape, extract_layer_shapes, vgg16_layer_shapes
from repro.models.registry import build_model, available_models, register_model

__all__ = [
    "VGG",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "vgg_tiny",
    "vgg_small",
    "VGG_CONFIGS",
    "LeNet",
    "MLP",
    "LayerShape",
    "extract_layer_shapes",
    "vgg16_layer_shapes",
    "build_model",
    "available_models",
    "register_model",
]
