"""VGG model family (Simonyan & Zisserman, 2014).

The paper evaluates MIME on a VGG16 backbone trained on ImageNet and reused
across CIFAR10 / CIFAR100 / Fashion-MNIST child tasks.  This module builds the
same topology plus narrower ("width multiplier") variants used for the
scaled-down surrogate experiments that actually train in seconds on CPU.

The convolutional part is exposed as ``model.features`` (a Sequential) and the
classifier as ``model.classifier``, mirroring torchvision so that the MIME
wrapper and the layer-shape extraction can walk a familiar structure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import new_rng

# Channel configurations.  "M" denotes a 2x2 max-pool.  These are the standard
# VGG configurations plus two reduced variants for CPU-scale experiments.
VGG_CONFIGS: Dict[str, List[object]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
    "vgg19": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, 256, "M",
        512, 512, 512, 512, "M",
        512, 512, 512, 512, "M",
    ],
    # Reduced variants used by the runnable surrogate workloads and tests.
    "vgg_small": [16, 16, "M", 32, 32, "M", 64, 64, "M"],
    "vgg_tiny": [8, "M", 16, "M", 32, "M"],
}


class VGG(Module):
    """A VGG-style convolutional classifier.

    Parameters
    ----------
    config:
        Channel configuration list (see :data:`VGG_CONFIGS`), where integers are
        3x3 convolution output channel counts and ``"M"`` inserts a 2x2 max-pool.
    num_classes:
        Output classes of the classifier head.
    in_channels:
        Input image channels (3 for RGB surrogates, 1 for F-MNIST-style inputs
        unless the transform pipeline broadcasts them to RGB).
    input_size:
        Input spatial resolution (images are assumed square).
    width_multiplier:
        Scales every convolutional channel count (minimum of 1 channel); used to
        build narrow backbones that train quickly on CPU.
    batch_norm:
        Insert BatchNorm2d after every convolution.
    classifier_hidden:
        Sizes of the hidden fully-connected layers of the classifier head.
    dropout:
        Dropout probability in the classifier head (0 disables dropout).
    """

    def __init__(
        self,
        config: Sequence[object],
        num_classes: int = 10,
        in_channels: int = 3,
        input_size: int = 32,
        width_multiplier: float = 1.0,
        batch_norm: bool = True,
        classifier_hidden: Sequence[int] = (512,),
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if input_size <= 0:
            raise ValueError("input_size must be positive")
        if width_multiplier <= 0:
            raise ValueError("width_multiplier must be positive")
        rng = rng if rng is not None else new_rng()

        self.config = list(config)
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.input_size = input_size
        self.width_multiplier = width_multiplier
        self.batch_norm = batch_norm

        self.features = self._build_features(rng)

        feature_shape = self.features.output_shape((in_channels, input_size, input_size))
        flat_features = int(np.prod(feature_shape))

        classifier_layers: List[Module] = [Flatten()]
        previous = flat_features
        for hidden in classifier_hidden:
            classifier_layers.append(Linear(previous, hidden, rng=rng))
            if batch_norm:
                classifier_layers.append(BatchNorm1d(hidden))
            classifier_layers.append(ReLU())
            if dropout > 0:
                classifier_layers.append(Dropout(dropout, rng=rng))
            previous = hidden
        classifier_layers.append(Linear(previous, num_classes, rng=rng))
        self.classifier = Sequential(*classifier_layers)

    def _scaled(self, channels: int) -> int:
        return max(1, int(round(channels * self.width_multiplier)))

    def _build_features(self, rng: np.random.Generator) -> Sequential:
        layers: List[Module] = []
        current_channels = self.in_channels
        for item in self.config:
            if item == "M":
                layers.append(MaxPool2d(2, 2))
                continue
            out_channels = self._scaled(int(item))
            layers.append(
                Conv2d(current_channels, out_channels, kernel_size=3, padding=1, rng=rng)
            )
            if self.batch_norm:
                layers.append(BatchNorm2d(out_channels))
            layers.append(ReLU())
            current_channels = out_channels
        return Sequential(*layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_output))

    def conv_layers(self) -> List[Conv2d]:
        """Return the convolution layers in order (conv1, conv2, ...)."""
        return [layer for layer in self.features if isinstance(layer, Conv2d)]

    def replace_classifier_head(self, num_classes: int, rng: np.random.Generator | None = None) -> None:
        """Swap the final Linear layer for a freshly-initialised one.

        Conventional transfer learning (the paper's baseline) re-initialises the
        classification head when moving from the parent to a child task with a
        different number of classes.
        """
        rng = rng if rng is not None else new_rng()
        final = self.classifier[len(self.classifier) - 1]
        if not isinstance(final, Linear):
            raise TypeError("expected the classifier to end in a Linear layer")
        new_head = Linear(final.in_features, num_classes, rng=rng)
        index = len(self.classifier) - 1
        self.classifier._ordered[index] = new_head
        setattr(self.classifier, str(index), new_head)
        self.num_classes = num_classes


def _build(name: str, **kwargs) -> VGG:
    return VGG(VGG_CONFIGS[name], **kwargs)


def vgg11(**kwargs) -> VGG:
    """VGG-11 backbone."""
    return _build("vgg11", **kwargs)


def vgg13(**kwargs) -> VGG:
    """VGG-13 backbone."""
    return _build("vgg13", **kwargs)


def vgg16(**kwargs) -> VGG:
    """VGG-16 backbone — the architecture evaluated in the paper."""
    return _build("vgg16", **kwargs)


def vgg19(**kwargs) -> VGG:
    """VGG-19 backbone."""
    return _build("vgg19", **kwargs)


def vgg_small(**kwargs) -> VGG:
    """A 6-convolution reduced VGG used by the runnable surrogate workloads."""
    kwargs.setdefault("classifier_hidden", (128,))
    return _build("vgg_small", **kwargs)


def vgg_tiny(**kwargs) -> VGG:
    """A 3-convolution miniature VGG used by fast unit tests."""
    kwargs.setdefault("classifier_hidden", (64,))
    return _build("vgg_tiny", **kwargs)
