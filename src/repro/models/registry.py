"""A small name-based model registry used by the experiment harness and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.nn.module import Module
from repro.models.vgg import vgg11, vgg13, vgg16, vgg19, vgg_small, vgg_tiny
from repro.models.lenet import LeNet
from repro.models.mlp import MLP

_REGISTRY: Dict[str, Callable[..., Module]] = {}


def register_model(name: str, factory: Callable[..., Module] | None = None):
    """Register ``factory`` under ``name``; usable as a decorator.

    Raises ``ValueError`` when the name is already taken, so experiment configs
    cannot silently shadow built-in architectures.
    """

    def _register(fn: Callable[..., Module]) -> Callable[..., Module]:
        if name in _REGISTRY:
            raise ValueError(f"model '{name}' is already registered")
        _REGISTRY[name] = fn
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def available_models() -> list[str]:
    """Names of every registered architecture, sorted."""
    return sorted(_REGISTRY)


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered architecture by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    return _REGISTRY[name](**kwargs)


# Built-in architectures.
register_model("vgg11", vgg11)
register_model("vgg13", vgg13)
register_model("vgg16", vgg16)
register_model("vgg19", vgg19)
register_model("vgg_small", vgg_small)
register_model("vgg_tiny", vgg_tiny)
register_model("lenet", LeNet)
register_model("mlp", MLP)
