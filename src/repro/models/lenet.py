"""LeNet-5 style reference model, used for quick functional tests."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import new_rng


class LeNet(Module):
    """A small LeNet-style convolutional classifier.

    Parameters
    ----------
    num_classes:
        Number of output classes.
    in_channels:
        Input channels (1 for greyscale, 3 for RGB).
    input_size:
        Square input resolution; 28 or 32 are typical.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 1,
        input_size: int = 28,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else new_rng()
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.input_size = input_size

        self.features = Sequential(
            Conv2d(in_channels, 6, kernel_size=5, padding=2, rng=rng),
            ReLU(),
            MaxPool2d(2, 2),
            Conv2d(6, 16, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2, 2),
        )
        feature_shape = self.features.output_shape((in_channels, input_size, input_size))
        flat = int(np.prod(feature_shape))
        self.classifier = Sequential(
            Flatten(),
            Linear(flat, 120, rng=rng),
            ReLU(),
            Linear(120, 84, rng=rng),
            ReLU(),
            Linear(84, num_classes, rng=rng),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_output))
