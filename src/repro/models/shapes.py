"""Layer-shape extraction for the hardware model.

The systolic-array simulator in :mod:`repro.hardware` is analytical: it only
needs, for every weight layer, the geometry of the computation (channels,
kernel, spatial resolution) from which weight counts, threshold counts, MAC
counts and activation volumes follow.  This module produces those records
either from an instantiated model (``extract_layer_shapes``) or purely
symbolically from a VGG configuration (``vgg_layer_shapes``), which avoids
allocating hundreds of megabytes of VGG16/ImageNet weights just to reason
about the dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.nn import Conv2d, Linear, Sequential
from repro.nn.functional import conv_output_size
from repro.models.vgg import VGG, VGG_CONFIGS


@dataclass(frozen=True)
class LayerShape:
    """Geometry of one weight layer (convolution or fully-connected).

    Attributes
    ----------
    name:
        Layer label, ``conv1`` ... ``convN`` for convolutions followed by
        ``fcN+1`` ... for fully-connected layers (paper convention).
    kind:
        Either ``"conv"`` or ``"linear"``.
    in_channels, out_channels:
        Channel counts (for linear layers these are the in/out feature counts).
    kernel_size, stride, padding:
        Convolution geometry; 1/1/0 for linear layers.
    input_h, input_w, output_h, output_w:
        Spatial resolutions; 1x1 for linear layers.
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    input_h: int
    input_w: int
    output_h: int
    output_w: int

    # -- derived quantities -----------------------------------------------------
    @property
    def weight_count(self) -> int:
        """Number of weight parameters (excluding bias)."""
        if self.kind == "conv":
            return self.out_channels * self.in_channels * self.kernel_size**2
        return self.out_channels * self.in_channels

    @property
    def bias_count(self) -> int:
        return self.out_channels

    @property
    def output_neurons(self) -> int:
        """Number of output neurons = number of MIME threshold parameters."""
        return self.out_channels * self.output_h * self.output_w

    # The paper associates one threshold with every output neuron of a layer.
    threshold_count = output_neurons

    @property
    def input_activations(self) -> int:
        """Number of input activation values consumed per image."""
        return self.in_channels * self.input_h * self.input_w

    @property
    def output_activations(self) -> int:
        """Number of output activation values produced per image."""
        return self.output_neurons

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count per image."""
        if self.kind == "conv":
            return self.output_neurons * self.in_channels * self.kernel_size**2
        return self.out_channels * self.in_channels

    @property
    def macs_per_output_neuron(self) -> int:
        """MACs needed to produce one output neuron (the OS-dataflow inner loop)."""
        if self.kind == "conv":
            return self.in_channels * self.kernel_size**2
        return self.in_channels

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{self.name}[{self.kind}] {self.in_channels}x{self.input_h}x{self.input_w}"
            f" -> {self.out_channels}x{self.output_h}x{self.output_w}"
        )


def extract_layer_shapes(model, input_shape: Sequence[int] | None = None) -> List[LayerShape]:
    """Extract :class:`LayerShape` records from an instantiated model.

    Parameters
    ----------
    model:
        Either a :class:`repro.models.vgg.VGG` instance (its ``features`` and
        ``classifier`` are walked) or a :class:`repro.nn.Sequential`.
    input_shape:
        Per-sample input shape ``(C, H, W)``.  Mandatory for plain Sequentials;
        inferred from the model attributes for VGG instances.
    """
    if isinstance(model, VGG):
        if input_shape is None:
            input_shape = (model.in_channels, model.input_size, model.input_size)
        modules = list(model.features) + list(model.classifier)
    elif isinstance(model, Sequential):
        if input_shape is None:
            raise ValueError("input_shape is required when extracting from a Sequential")
        modules = list(model)
    else:
        raise TypeError(f"cannot extract layer shapes from {type(model).__name__}")

    shapes: List[LayerShape] = []
    current = tuple(int(v) for v in input_shape)
    conv_index = 0
    layer_index = 0
    for module in modules:
        if isinstance(module, Conv2d):
            conv_index += 1
            layer_index += 1
            c, h, w = current
            h_out = conv_output_size(h, module.kernel_size, module.stride, module.padding)
            w_out = conv_output_size(w, module.kernel_size, module.stride, module.padding)
            shapes.append(
                LayerShape(
                    name=f"conv{conv_index}",
                    kind="conv",
                    in_channels=module.in_channels,
                    out_channels=module.out_channels,
                    kernel_size=module.kernel_size,
                    stride=module.stride,
                    padding=module.padding,
                    input_h=h,
                    input_w=w,
                    output_h=h_out,
                    output_w=w_out,
                )
            )
            current = (module.out_channels, h_out, w_out)
        elif isinstance(module, Linear):
            layer_index += 1
            shapes.append(
                LayerShape(
                    name=f"fc{layer_index}",
                    kind="linear",
                    in_channels=module.in_features,
                    out_channels=module.out_features,
                    kernel_size=1,
                    stride=1,
                    padding=0,
                    input_h=1,
                    input_w=1,
                    output_h=1,
                    output_w=1,
                )
            )
            current = (module.out_features,)
        elif hasattr(module, "output_shape"):
            current = tuple(int(v) for v in module.output_shape(current))
        # Activation / normalisation layers leave the shape unchanged.
    return shapes


def vgg_layer_shapes(
    config: str | Sequence[object] = "vgg16",
    input_size: int = 32,
    in_channels: int = 3,
    num_classes: int = 10,
    classifier_hidden: Sequence[int] = (512,),
    width_multiplier: float = 1.0,
) -> List[LayerShape]:
    """Compute :class:`LayerShape` records for a VGG configuration symbolically.

    This never allocates weights, so it is cheap even for the full ImageNet-scale
    VGG16 (224x224 inputs, 4096-wide classifier).
    """
    if isinstance(config, str):
        config = VGG_CONFIGS[config]
    if input_size <= 0 or in_channels <= 0 or num_classes <= 0:
        raise ValueError("input_size, in_channels and num_classes must be positive")
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")

    def scaled(channels: int) -> int:
        return max(1, int(round(channels * width_multiplier)))

    shapes: List[LayerShape] = []
    current_channels = in_channels
    h = w = input_size
    conv_index = 0
    for item in config:
        if item == "M":
            h = conv_output_size(h, 2, 2, 0)
            w = conv_output_size(w, 2, 2, 0)
            continue
        conv_index += 1
        out_channels = scaled(int(item))
        shapes.append(
            LayerShape(
                name=f"conv{conv_index}",
                kind="conv",
                in_channels=current_channels,
                out_channels=out_channels,
                kernel_size=3,
                stride=1,
                padding=1,
                input_h=h,
                input_w=w,
                output_h=h,
                output_w=w,
            )
        )
        current_channels = out_channels

    layer_index = conv_index
    flat = current_channels * h * w
    previous = flat
    for hidden in classifier_hidden:
        layer_index += 1
        shapes.append(
            LayerShape(
                name=f"fc{layer_index}",
                kind="linear",
                in_channels=previous,
                out_channels=int(hidden),
                kernel_size=1,
                stride=1,
                padding=0,
                input_h=1,
                input_w=1,
                output_h=1,
                output_w=1,
            )
        )
        previous = int(hidden)
    layer_index += 1
    shapes.append(
        LayerShape(
            name=f"fc{layer_index}",
            kind="linear",
            in_channels=previous,
            out_channels=num_classes,
            kernel_size=1,
            stride=1,
            padding=0,
            input_h=1,
            input_w=1,
            output_h=1,
            output_w=1,
        )
    )
    return shapes


def vgg16_layer_shapes(
    input_size: int = 32,
    in_channels: int = 3,
    num_classes: int = 10,
    classifier_hidden: Sequence[int] = (512,),
) -> List[LayerShape]:
    """Layer shapes of the paper's VGG16 backbone at child-task resolution."""
    return vgg_layer_shapes(
        "vgg16",
        input_size=input_size,
        in_channels=in_channels,
        num_classes=num_classes,
        classifier_hidden=classifier_hidden,
    )
