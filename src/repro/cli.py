"""Command-line interface for the MIME reproduction.

Provides a small front-end over the experiment harness so a downstream user
can regenerate the paper's artefacts without writing Python:

``python -m repro storage``      — Fig. 1 / Fig. 4 DRAM storage curve
``python -m repro energy``       — Fig. 5 / Fig. 6 energy tables + Fig. 7 throughput
``python -m repro pruned``       — Fig. 8 comparison against 90 %-pruned models
``python -m repro ablation``     — Fig. 9 PE-array / cache ablation
``python -m repro train``        — train the surrogate workload and print Tables II/III
``python -m repro serve-bench``  — compiled multi-task engine vs training-path throughput
``python -m repro serve``        — online serving runtime under synthetic Poisson traffic
``python -m repro export``       — publish a versioned model artifact to a ModelStore
``python -m repro all``          — everything above (training uses the fast configuration)
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.experiments.builders import (
    add_fault_arguments,
    add_metrics_arguments,
    add_workload_arguments,
    append_bench_entry,
    build_runtime,
    build_serving_network,
    load_artifact_plans,
    maybe_specialize,
    positive_int,
    start_chaos_schedule,
    start_metrics_server,
)
from repro.experiments.config import fast_config, full_config
from repro.experiments.figures import (
    figure4_dram_storage,
    figure5_singular_energy,
    figure6_pipelined_energy,
    figure7_pipelined_throughput,
    figure8_vs_pruned,
    figure9_ablation,
)
from repro.experiments.report import (
    render_energy_report,
    render_ratio_table,
    render_sparsity_table,
    render_table,
)


def _cmd_storage(args: argparse.Namespace) -> None:
    result = figure4_dram_storage(max_tasks=args.max_tasks)
    curve = result["curve"]
    rows = [
        [int(n), conv, mime, ratio]
        for n, conv, mime, ratio in zip(
            curve["num_tasks"], curve["conventional_mb"], curve["mime_mb"], curve["saving_ratio"]
        )
    ]
    print(render_table(
        ["child tasks", "conventional (MB)", "MIME (MB)", "saving"],
        rows,
        title="Fig. 1 / Fig. 4 — off-chip DRAM storage",
    ))
    print(f"3-child saving: {result['saving_ratio_3_tasks']:.2f}x (paper ~{result['paper_saving_ratio']}x)")


def _cmd_energy(args: argparse.Namespace) -> None:
    singular = figure5_singular_energy()
    pipelined = figure6_pipelined_energy()
    throughput = figure7_pipelined_throughput()
    print(render_energy_report(singular["reports"], singular["layer_names"],
                               title="Fig. 5 — Singular task mode energy"))
    print()
    print(render_energy_report(pipelined["reports"], pipelined["layer_names"],
                               title="Fig. 6 — Pipelined task mode energy"))
    print()
    print(render_ratio_table(pipelined["mime_vs_case1"], title="Fig. 6 — MIME vs Case-1 (paper 2.4-3.1x)"))
    print()
    print(render_ratio_table(throughput["mime_vs_case1"],
                             title="Fig. 7 — MIME relative throughput (paper 2.8-3.0x)",
                             value_name="throughput x"))


def _cmd_pruned(args: argparse.Namespace) -> None:
    result = figure8_vs_pruned()
    rows = [
        [layer, result["pruned_over_mime"][layer], result["param_dram_pruned_over_mime"][layer]]
        for layer in result["layer_names"]
    ]
    print(render_table(
        ["layer", "pruned/MIME (total energy)", "pruned/MIME (param DRAM)"],
        rows,
        title="Fig. 8 — MIME vs 90%-pruned conventional models (pipelined)",
    ))
    print(f"MIME wins (total energy): {result['mime_wins']}")


def _cmd_ablation(args: argparse.Namespace) -> None:
    result = figure9_ablation()
    rows = [
        [layer, result["case_b_over_a"][layer], result["case_c_over_a"][layer]]
        for layer in result["layer_names"]
    ]
    print(render_table(
        ["layer", "PE 256 / 1024", "cache 128KB / 156KB"],
        rows,
        title="Fig. 9 — MIME energy under reduced PE array / cache",
    ))
    print(
        f"middle-layer mean: PE {result['case_b_middle_mean']:.3f}x "
        f"(paper 1.26-1.41x), cache {result['case_c_middle_mean']:.3f}x"
    )


def _cmd_train(args: argparse.Namespace) -> None:
    from repro.experiments.tables import (
        table2_mime_accuracy_and_sparsity,
        table3_baseline_accuracy_and_sparsity,
    )
    from repro.experiments.workloads import build_workload

    config = fast_config() if args.fast else full_config()
    print(f"Training the surrogate multi-task workload ({'fast' if args.fast else 'full'} config) ...")
    workload = build_workload(config, include_mime=True, include_baselines=True)
    print(f"parent test accuracy: {workload.parent_accuracy:.3f}")
    print(render_sparsity_table(
        table2_mime_accuracy_and_sparsity(workload),
        title="Table II (reproduced) — MIME accuracy and layerwise sparsity",
    ))
    print()
    print(render_sparsity_table(
        table3_baseline_accuracy_and_sparsity(workload),
        title="Table III (reproduced) — baseline accuracy and ReLU sparsity",
    ))


def _cmd_serve_bench(args: argparse.Namespace) -> None:
    import time

    import numpy as np

    from repro.engine import MultiTaskEngine
    from repro.models import extract_layer_shapes

    if getattr(args, "backend", "engine") != "engine":
        _serve_bench_runtime(args)
        return

    network, backbone, plan, rng = build_serving_network(args)
    print(
        f"serve-bench: {args.model} @ {args.input_size}x{args.input_size}, "
        f"{args.tasks} tasks, {args.requests} requests, micro-batch {args.micro_batch} "
        "(randomly initialised backbone — this benchmarks the serving path, not accuracy)"
    )
    shape = (args.requests, 3, args.input_size, args.input_size)
    images = rng.normal(size=shape)
    tasks = [f"task{i % args.tasks}" for i in range(args.requests)]

    def run_training_path() -> float:
        start = time.perf_counter()
        for begin in range(0, args.requests, args.micro_batch):
            batch_tasks = tasks[begin : begin + args.micro_batch]
            for task_name in sorted(set(batch_tasks)):
                rows = [begin + i for i, t in enumerate(batch_tasks) if t == task_name]
                network.forward(images[rows], task=task_name)
        return args.requests / (time.perf_counter() - start)

    specialized = maybe_specialize(args, plan)
    results = [["training forward", "-", run_training_path(), 1.0]]
    engines = {}
    variants = [("singular", {}), ("pipelined", {})]
    if specialized:
        variants.append(("pipelined+specialized", specialized))
    for label, plans in variants:
        mode = label.split("+")[0]
        engine = MultiTaskEngine(plan, micro_batch=args.micro_batch, specialized=plans)
        for index, task_name in enumerate(tasks):
            engine.submit(task_name, images[index])
        start = time.perf_counter()
        _, stats = engine.run_pending(mode=mode)
        throughput = args.requests / (time.perf_counter() - start)
        print(f"  {stats.summary()}")
        results.append([f"engine ({label})", stats.task_switches, throughput,
                        throughput / results[0][2]])
        engines[label] = engine

    print(render_table(
        ["path", "task switches", "images/sec", "speedup"],
        [[name, switches, f"{tput:.1f}", f"{speed:.2f}x"]
         for name, switches, tput, speed in results],
        title=f"Serving throughput ({args.dtype} engine vs float64 training path)",
    ))

    report_label = "pipelined+specialized" if "pipelined+specialized" in engines else "pipelined"
    engine = engines[report_label]
    print(f"\nmeasured mean dynamic sparsity per task ({report_label} run):")
    for task_name in engine.recorder.tasks():  # only tasks that received traffic
        print(f"  {task_name}: {engine.recorder.mean_sparsity(task_name):.3f}")

    report = engine.hardware_report(extract_layer_shapes(backbone), conv_only=True)
    energy = report.total_energy()
    print(
        f"\nsystolic-array estimate from the measured run ({len(engine.recorder.schedule())} "
        f"images, MIME config): total energy {energy.total:,.0f} units, "
        f"{report.total_cycles():,.0f} cycles"
    )
    if report.measured_dense_macs:
        print(
            f"engine-side effective MACs: {report.measured_effective_macs:,} of "
            f"{report.measured_dense_macs:,} dense "
            f"({100.0 * report.measured_mac_reduction():.1f}% avoided in software)"
        )
    if getattr(args, "json", None):
        path = append_bench_entry(args.json, {
            **_bench_entry_header(args),
            "paths": [
                {"path": name, "task_switches": switches, "images_per_sec": tput,
                 "speedup": speed}
                for name, switches, tput, speed in results
            ],
        })
        print(f"\nappended engine trajectory entry to {path}")


def _bench_entry_header(args: argparse.Namespace) -> dict:
    import time as time_module

    return {
        "date": time_module.strftime("%Y-%m-%d"),
        "command": "serve-bench",
        "workload": f"{args.model}@{args.input_size} x{args.tasks}tasks "
                    f"dead={getattr(args, 'dead_fraction', 0.0)}",
        "requests": args.requests,
        "micro_batch": args.micro_batch,
        "backend": getattr(args, "backend", "engine"),
        "specialize": bool(getattr(args, "specialize", False)),
    }


def _serve_bench_runtime(args: argparse.Namespace) -> None:
    """``serve-bench --backend thread|process``: a serving-runtime drain.

    Submits the whole mixed-task request stream up front and measures the
    parallel drain through the chosen backend — the apples-to-apples
    configuration the thread-vs-process scaling benchmark uses
    (``benchmarks/bench_serving_latency.py``).
    """
    network, backbone, plan, rng = build_serving_network(args)
    specialized = maybe_specialize(args, plan)
    print(
        f"serve-bench: {args.model} @ {args.input_size}x{args.input_size}, "
        f"{args.tasks} tasks, {args.requests} requests, micro-batch {args.micro_batch}, "
        f"backend={args.backend}, workers={args.workers} "
        "(randomly initialised backbone — this benchmarks the serving path, not accuracy)"
    )
    runtime = build_runtime(args, plan, specialized)
    images = rng.normal(size=(args.requests, 3, args.input_size, args.input_size))
    tasks = [f"task{i % args.tasks}" for i in range(args.requests)]
    futures = [
        runtime.submit(task, image) for task, image in zip(tasks, images)
    ]
    runtime.start()
    schedule = start_chaos_schedule(args, runtime)
    metrics_server = start_metrics_server(args, runtime)
    try:
        report = runtime.stop(drain=True)
    finally:
        if schedule is not None:
            schedule.stop()
        if metrics_server is not None:
            metrics_server.stop()
    for future in futures:
        try:
            future.result(timeout=60.0)
        except Exception as error:
            if schedule is None:
                raise
            # Under chaos, budget/deadline failures are legitimate outcomes;
            # they are already tallied in the report's error counters.
            print(f"request {future.index} failed under chaos: {error}")
    print()
    print(report.summary())
    if getattr(args, "json", None):
        path = append_bench_entry(args.json, {
            **_bench_entry_header(args),
            "workers": args.workers,
            "report": report.to_dict(),
        })
        print(f"\nappended serving trajectory entry to {path}")


def _cmd_serve(args: argparse.Namespace) -> None:
    import numpy as np

    from repro.models import extract_layer_shapes
    from repro.serving import LoadGenerator

    store = None
    backbone = None
    baseline = None
    if args.artifact:
        if args.specialize or args.dynamic or args.dead_fraction:
            print(
                "note: --artifact supplies the plans as published; the workload/"
                "specialization flags (--model/--tasks/--dead-fraction/"
                "--specialize/--dynamic/...) are ignored"
            )
        artifact, store = load_artifact_plans(args.artifact)
        plan, specialized = artifact.build_plans()
        baseline = artifact.calibration
        rng = np.random.default_rng(args.seed)
        source = f"artifact '{artifact.name}' from {args.artifact}"
    else:
        network, backbone, plan, rng = build_serving_network(args)
        specialized = maybe_specialize(args, plan)
        source = "randomly initialised backbone"
    task_names = plan.task_names()
    print(
        f"serve: {len(task_names)} tasks @ input {plan.input_shape}, "
        f"policy={args.policy}, backend={args.backend}, "
        f"coalesce={'on' if getattr(args, 'coalesce', False) else 'off'}, "
        f"workers={args.workers}, "
        f"micro-batch {args.micro_batch}, max-wait {1e3 * args.max_wait:.1f} ms, "
        f"{args.scenario} Poisson traffic at {args.rate:.0f} req/s "
        f"({source} — this exercises the serving path, not accuracy)"
    )
    generators = {
        "uniform": LoadGenerator.uniform,
        "skewed": LoadGenerator.skewed,
        "zipf": LoadGenerator.zipf,
        "bursty": LoadGenerator.bursty,
    }
    generator = generators[args.scenario](task_names, args.rate, seed=args.seed)
    images = {
        task: rng.normal(size=(16,) + tuple(plan.input_shape)) for task in task_names
    }
    recorder = None
    if args.recalibrate:
        from repro.engine import SparsityRecorder, calibrate_plan

        recorder = SparsityRecorder(channel_tracking=True)
        if baseline is None:
            baseline = calibrate_plan(plan, batch_size=32, seed=args.seed)
    runtime = build_runtime(
        args, plan, specialized, recorder=recorder, max_pending=args.max_queue
    )
    loop = None
    if args.recalibrate:
        from repro.serving import RecalibrationLoop

        loop = RecalibrationLoop(
            runtime,
            baseline,
            interval=args.recalibrate_interval,
            drift_threshold=args.drift_threshold,
            dead_threshold=getattr(args, "dead_threshold", 0.0),
            min_images=args.recalibrate_min_images,
            store=store,
        )
    schedule = None
    metrics_server = None
    with runtime:
        schedule = start_chaos_schedule(args, runtime)
        metrics_server = start_metrics_server(args, runtime)
        if loop is not None:
            loop.start()
        try:
            futures = generator.replay(
                runtime,
                images,
                num_requests=args.requests,
                deadline_slack=args.deadline,
            )
            failed = 0
            for future in futures:
                if future is None:
                    continue
                try:
                    future.result(timeout=60.0)
                except Exception:
                    if schedule is None:
                        raise
                    # Chaos runs tolerate explicit per-request failures
                    # (retry budget, deadline); the report counts them.
                    failed += 1
            if failed:
                print(f"{failed} requests failed explicitly under chaos")
            if loop is not None:
                loop.check_once()  # one final deterministic pass before shutdown
        finally:
            if loop is not None:
                loop.stop()
            if schedule is not None:
                schedule.stop()
            if metrics_server is not None:
                metrics_server.stop()
    print()
    print(runtime.report().summary())
    if loop is not None:
        if loop.swaps():
            print(
                "(report covers the measurement window since the last "
                "recalibration swap — each swap starts a fresh window)"
            )
        print("\nrecalibration events:")
        print(loop.summary())

    if backbone is None:
        return  # artifact serving: no training network to derive layer shapes from
    report = runtime.hardware_report(extract_layer_shapes(backbone), conv_only=True)
    energy = report.total_energy()
    print(
        f"\nsystolic-array estimate from the measured online schedule "
        f"({runtime.recorder.num_images()} images, MIME config): "
        f"total energy {energy.total:,.0f} units, {report.total_cycles():,.0f} cycles"
    )
    if report.measured_dense_macs:
        print(
            f"engine-side effective MACs: {report.measured_effective_macs:,} of "
            f"{report.measured_dense_macs:,} dense "
            f"({100.0 * report.measured_mac_reduction():.1f}% avoided in software)"
        )


def _cmd_export(args: argparse.Namespace) -> None:
    """Build, calibrate, (optionally) specialize and publish a model artifact."""
    from repro.artifacts import ModelArtifact, ModelStore
    from repro.engine import calibrate_plan

    network, backbone, plan, rng = build_serving_network(args)
    profile = calibrate_plan(plan, batch_size=32, seed=args.seed)
    specialized = maybe_specialize(args, plan, profile=profile)
    artifact = ModelArtifact.from_plans(
        args.name,
        plan,
        specialized,
        calibration=profile,
        network=network,
        metadata={
            "model": args.model,
            "input_size": args.input_size,
            "tasks": args.tasks,
            "seed": args.seed,
            "dead_fraction": args.dead_fraction,
            "specialize": bool(specialized),
            "exact_specialize": bool(getattr(args, "exact_specialize", False)),
        },
    )
    store = ModelStore(args.store)
    version = store.publish(artifact, version=args.version)
    manifest = store.verify(version)
    total_bytes = sum(entry["bytes"] for entry in manifest["files"].values())
    print(f"published '{artifact.name}' as version {version} (latest -> {version})")
    print(f"  store: {store.root}")
    print(
        f"  {len(manifest['files'])} files, {total_bytes / 1e6:.2f} MB, "
        f"tasks: {', '.join(manifest['tasks'])}, "
        f"specialized: {', '.join(manifest['specialized_tasks']) or 'none'}"
    )
    print(f"  serve it with: repro serve --artifact {store.root} --backend process")


def _cmd_all(args: argparse.Namespace) -> None:
    args.fast = True
    _cmd_storage(args)
    print()
    _cmd_energy(args)
    print()
    _cmd_pruned(args)
    print()
    _cmd_ablation(args)
    print()
    _cmd_train(args)


_COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "storage": _cmd_storage,
    "energy": _cmd_energy,
    "pruned": _cmd_pruned,
    "ablation": _cmd_ablation,
    "train": _cmd_train,
    "serve-bench": _cmd_serve_bench,
    "serve": _cmd_serve,
    "export": _cmd_export,
    "all": _cmd_all,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the MIME (DAC 2022) evaluation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    storage = subparsers.add_parser("storage", help="Fig. 1 / Fig. 4 DRAM storage comparison")
    storage.add_argument("--max-tasks", type=int, default=6, help="number of child tasks to sweep")

    subparsers.add_parser("energy", help="Fig. 5 / Fig. 6 energy and Fig. 7 throughput")
    subparsers.add_parser("pruned", help="Fig. 8 comparison against 90%%-pruned models")
    subparsers.add_parser("ablation", help="Fig. 9 PE-array / cache ablation")

    train = subparsers.add_parser("train", help="train the surrogate workload (Tables II/III)")
    train.add_argument("--fast", action="store_true", help="use the seconds-scale fast configuration")

    serve_bench = subparsers.add_parser(
        "serve-bench", help="benchmark the compiled multi-task inference engine"
    )
    add_workload_arguments(serve_bench, default_requests=48)
    serve_bench.add_argument(
        "--backend", choices=["engine", "thread", "process"], default="engine",
        help="'engine' benchmarks the offline MultiTaskEngine drain (default); "
             "'thread'/'process' drain the same stream through the online "
             "serving runtime with that worker backend")
    serve_bench.add_argument("--workers", type=positive_int, default=2,
                             help="workers for the thread/process serving backends")
    serve_bench.add_argument("--json", metavar="OUT", default=None,
                             help="append a machine-readable entry for this run to a "
                                  "BENCH_*.json trajectory file")
    add_fault_arguments(serve_bench)
    add_metrics_arguments(serve_bench)

    from repro.engine.scheduling import SCHEDULING_MODES

    serve = subparsers.add_parser(
        "serve", help="run the online serving runtime under synthetic Poisson traffic"
    )
    add_workload_arguments(serve, default_requests=96)
    serve.add_argument("--policy", choices=list(SCHEDULING_MODES), default="fifo-deadline",
                       help="micro-batch scheduling policy")
    serve.add_argument("--backend", choices=["thread", "process"], default="thread",
                       help="worker parallelism: threads in this process, or a "
                            "process-sharded fleet with shared-memory rings")
    serve.add_argument("--workers", type=positive_int, default=2,
                       help="workers executing micro-batches in parallel")
    serve.add_argument("--rate", type=float, default=500.0,
                       help="mean request arrival rate (requests/second)")
    serve.add_argument("--max-wait", type=float, default=0.01,
                       help="dynamic batching deadline in seconds (batch closes on size or this)")
    serve.add_argument("--max-queue", type=positive_int, default=256,
                       help="admission-control bound on pending requests")
    serve.add_argument("--deadline", type=float, default=None,
                       help="optional per-request latency deadline in seconds")
    serve.add_argument("--scenario", choices=["uniform", "skewed", "zipf", "bursty"],
                       default="uniform", help="traffic shape of the load generator")
    serve.add_argument("--artifact", metavar="PATH", default=None,
                       help="serve a published model artifact (an artifact directory or "
                            "a model-store root, whose 'latest' version is loaded) "
                            "instead of building a fresh random workload")
    serve.add_argument("--recalibrate", action="store_true",
                       help="run the online recalibration loop: watch live per-channel "
                            "survival, re-specialize on drift, hot-swap the result "
                            "(publishes new versions when --artifact names a store)")
    serve.add_argument("--recalibrate-interval", type=float, default=2.0,
                       help="seconds between recalibration drift checks")
    serve.add_argument("--drift-threshold", type=float, default=0.1,
                       help="max |live - baseline| survival delta tolerated before "
                            "re-specializing")
    serve.add_argument("--recalibrate-min-images", type=positive_int, default=64,
                       help="images a task must have served before it is re-specialized")
    add_fault_arguments(serve)
    add_metrics_arguments(serve)

    export = subparsers.add_parser(
        "export", help="publish a versioned model artifact to a ModelStore"
    )
    add_workload_arguments(export, default_requests=48)
    export.add_argument("--store", required=True, metavar="DIR",
                        help="model-store root directory (created if missing)")
    export.add_argument("--name", default="mime", help="artifact/model name in the manifest")
    export.add_argument("--version", default=None,
                        help="explicit version name (default: auto-numbered v001, v002, ...)")

    subparsers.add_parser("all", help="run every artefact (training uses the fast configuration)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "max_tasks"):
        args.max_tasks = 6
    if not hasattr(args, "fast"):
        args.fast = True
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
