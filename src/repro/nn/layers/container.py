"""Module containers."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run modules in order; backward traverses them in reverse.

    Sub-modules are registered under their positional index, so parameter
    names look like ``"3.weight"`` — the same convention PyTorch uses.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "Sequential":
        if not isinstance(module, Module):
            raise TypeError(f"expected Module, got {type(module).__name__}")
        index = len(self._ordered)
        self._ordered.append(module)
        setattr(self, str(index), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self._ordered:
            x = module(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for module in self._ordered:
            x = module.infer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for module in reversed(self._ordered):
            grad_output = module.backward(grad_output)
        return grad_output

    def output_shape(self, input_shape):
        """Propagate a per-sample shape through every layer that reports one."""
        shape = input_shape
        for module in self._ordered:
            if hasattr(module, "output_shape"):
                shape = module.output_shape(shape)
        return shape
