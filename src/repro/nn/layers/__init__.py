"""Layer implementations for the NumPy neural-network framework."""

from repro.nn.layers.linear import Linear
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.layers.activation import ReLU, Sigmoid, Tanh, Identity
from repro.nn.layers.normalization import BatchNorm1d, BatchNorm2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.container import Sequential

__all__ = [
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Flatten",
    "Sequential",
]
