"""2-D convolution implemented with im2col lowering."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import functional as F
from repro.nn import init as nn_init


class Conv2d(Module):
    """Square-kernel 2-D convolution over ``(N, C, H, W)`` inputs.

    The forward pass lowers the input with :func:`repro.nn.functional.im2col`
    and performs a single matrix multiplication per batch, exactly the
    vector-matrix-multiplication (VMM) view of a convolution that the MIME
    paper (and the systolic-array hardware model) uses.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        fan_in = in_channels * kernel_size * kernel_size
        weight = nn_init.kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in, rng=rng
        )
        self.weight = Parameter(weight)
        if bias:
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(nn_init.uniform((out_channels,), -bound, bound, rng=rng))
        else:
            self.bias = None

        self._cols_cache: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._output_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input of shape (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        cols, (h_out, w_out) = F.im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols_cache = cols
        self._input_shape = x.shape
        self._output_hw = (h_out, w_out)

        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ weight_matrix.T  # (N*H_out*W_out, C_out)
        if self.bias is not None:
            out = out + self.bias.data
        out = out.reshape(n, h_out, w_out, self.out_channels).transpose(0, 3, 1, 2)
        return np.ascontiguousarray(out)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless forward: same im2col-GEMM lowering, no backward caches.

        Computes in the input's dtype (the weight matrix is cast on the fly),
        so a float32 activation stream stays float32 end to end.
        """
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input of shape (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        cols, (h_out, w_out) = F.im2col(x, self.kernel_size, self.stride, self.padding)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1).astype(
            x.dtype, copy=False
        )
        out = cols @ weight_matrix.T
        if self.bias is not None:
            out = out + self.bias.data.astype(x.dtype, copy=False)
        return np.ascontiguousarray(
            out.reshape(n, h_out, w_out, self.out_channels).transpose(0, 3, 1, 2)
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols_cache is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, h, w = self._input_shape
        h_out, w_out = self._output_hw

        # (N, C_out, H_out, W_out) -> (N*H_out*W_out, C_out)
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)

        if self.weight.requires_grad:
            grad_weight = grad_mat.T @ self._cols_cache
            self.weight.accumulate_grad(grad_weight.reshape(self.weight.data.shape))
        if self.bias is not None and self.bias.requires_grad:
            self.bias.accumulate_grad(grad_mat.sum(axis=0))

        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = grad_mat @ weight_matrix  # (N*H_out*W_out, C_in*K*K)
        grad_input = F.col2im(
            grad_cols, self._input_shape, self.kernel_size, self.stride, self.padding
        )
        return grad_input

    def output_shape(self, input_shape):
        """Output shape (C_out, H_out, W_out) for an input shape (C_in, H, W)."""
        _, h, w = input_shape
        h_out = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        w_out = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, h_out, w_out)
