"""Flatten layer bridging convolutional feature maps and fully-connected heads."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Reshape ``(N, C, H, W)`` (or any N-D) inputs to ``(N, features)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless flatten: no input-shape cache for backward."""
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)

    def output_shape(self, input_shape):
        total = 1
        for dim in input_shape:
            total *= dim
        return (total,)
