"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import init as nn_init


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator used for Kaiming-uniform weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features

        weight = nn_init.kaiming_uniform((out_features, in_features), fan_in=in_features, rng=rng)
        self.weight = Parameter(weight)
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            bias_init = nn_init.uniform((out_features,), -bound, bound, rng=rng)
            self.bias = Parameter(bias_init)
        else:
            self.bias = None

        self._input_cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._input_cache = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless forward in the input's dtype; no backward cache."""
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        out = x @ self.weight.data.T.astype(x.dtype, copy=False)
        if self.bias is not None:
            out = out + self.bias.data.astype(x.dtype, copy=False)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None:
            raise RuntimeError("backward called before forward")
        x = self._input_cache
        if self.weight.requires_grad:
            self.weight.accumulate_grad(grad_output.T @ x)
        if self.bias is not None and self.bias.requires_grad:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ self.weight.data

    def output_shape(self, input_shape):
        """Shape of the output (excluding batch) given the input shape."""
        return (self.out_features,)
