"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn import functional as F


class ReLU(Module):
    """Rectified linear unit.

    The conventional-baseline networks in the paper (Table III) owe their
    activation sparsity to this layer masking negative MAC outputs; the layer
    therefore also exposes :meth:`last_sparsity` so sparsity meters can read
    the fraction of zeroed activations from the most recent forward pass.
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0.0
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless ReLU: no mask cache (and hence no ``last_sparsity``)."""
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask

    def last_sparsity(self) -> float:
        """Fraction of activations zeroed in the most recent forward pass."""
        if self._mask is None:
            raise RuntimeError("no forward pass has been run yet")
        return float(1.0 - self._mask.mean())


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.sigmoid(x)
        return self._output

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.sigmoid(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Identity(Module):
    """Pass-through layer, useful as a placeholder when swapping activations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
