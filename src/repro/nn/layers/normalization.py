"""Batch normalisation layers.

VGG-style backbones trained from scratch on small surrogate datasets converge
far more reliably with batch normalisation, so the model zoo uses it by
default.  Running statistics are stored as buffers so they round-trip through
``state_dict``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Buffered, Parameter


class _BatchNormBase(Buffered):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must lie in (0, 1]")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum

        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

        self._cache: tuple | None = None

    # Subclasses map between (N, C, ...) tensors and a 2-D (rows, C) view.
    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _from_2d(self, flat: np.ndarray, original_shape: tuple) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        flat = self._to_2d(x)
        if self.training:
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            n = flat.shape[0]
            unbiased_var = var * n / max(n - 1, 1)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self._buffers["running_mean"] + self.momentum * mean,
            )
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self._buffers["running_var"] + self.momentum * unbiased_var,
            )
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]

        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (flat - mean) * inv_std
        out_flat = normalized * self.gamma.data + self.beta.data
        self._cache = (normalized, inv_std, x.shape)
        return self._from_2d(out_flat, x.shape)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless normalisation with running statistics, regardless of mode.

        The affine transform is collapsed to a single scale/shift per feature
        and computed in the input's dtype.
        """
        flat = self._to_2d(x)
        dtype = flat.dtype
        inv_std = 1.0 / np.sqrt(self._buffers["running_var"] + self.eps)
        scale = (self.gamma.data * inv_std).astype(dtype, copy=False)
        shift = (self.beta.data - self.gamma.data * self._buffers["running_mean"] * inv_std).astype(
            dtype, copy=False
        )
        return self._from_2d(flat * scale + shift, x.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, original_shape = self._cache
        grad_flat = self._to_2d(grad_output)
        n = grad_flat.shape[0]

        self.gamma.accumulate_grad((grad_flat * normalized).sum(axis=0))
        self.beta.accumulate_grad(grad_flat.sum(axis=0))

        if self.training:
            grad_norm = grad_flat * self.gamma.data
            grad_input_flat = (
                inv_std
                / n
                * (
                    n * grad_norm
                    - grad_norm.sum(axis=0)
                    - normalized * (grad_norm * normalized).sum(axis=0)
                )
            )
        else:
            grad_input_flat = grad_flat * self.gamma.data * inv_std
        return self._from_2d(grad_input_flat, original_shape)


class BatchNorm1d(_BatchNormBase):
    """Batch normalisation over ``(N, C)`` feature tensors."""

    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected input of shape (N, {self.num_features}), got {x.shape}"
            )
        return x

    def _from_2d(self, flat: np.ndarray, original_shape: tuple) -> np.ndarray:
        return flat

    def output_shape(self, input_shape):
        return input_shape


class BatchNorm2d(_BatchNormBase):
    """Batch normalisation over ``(N, C, H, W)`` feature maps (per channel)."""

    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected input of shape (N, {self.num_features}, H, W), got {x.shape}"
            )
        return x.transpose(0, 2, 3, 1).reshape(-1, self.num_features)

    def _from_2d(self, flat: np.ndarray, original_shape: tuple) -> np.ndarray:
        n, c, h, w = original_shape
        return flat.reshape(n, h, w, c).transpose(0, 3, 1, 2)

    def output_shape(self, input_shape):
        return input_shape
