"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn import functional as F


def _pool_windows(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """View ``(N, C, H, W)`` as pooling windows ``(N, C, H_out, W_out, K, K)``."""
    n, c, h, w = x.shape
    h_out = F.conv_output_size(h, kernel_size, stride, 0)
    w_out = F.conv_output_size(w, kernel_size, stride, 0)
    strides = x.strides
    shape = (n, c, h_out, w_out, kernel_size, kernel_size)
    window_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=window_strides)


class MaxPool2d(Module):
    """Non-overlapping (or strided) max pooling over ``(N, C, H, W)`` inputs."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._input_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None

    def _windows(self, x: np.ndarray) -> np.ndarray:
        return _pool_windows(x, self.kernel_size, self.stride)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        windows = self._windows(x)
        n, c, h_out, w_out, k, _ = windows.shape
        flat = windows.reshape(n, c, h_out, w_out, k * k)
        self._argmax = np.argmax(flat, axis=-1)
        self._input_shape = x.shape
        return np.max(flat, axis=-1)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless max pooling: no argmax cache for backward."""
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        windows = self._windows(x)
        return windows.max(axis=(-1, -2))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        k, s = self.kernel_size, self.stride
        h_out, w_out = grad_output.shape[2], grad_output.shape[3]

        grad_input = np.zeros(self._input_shape, dtype=grad_output.dtype)
        rows, cols = np.divmod(self._argmax, k)
        # Build absolute coordinates of each window's max element.
        base_y = (np.arange(h_out) * s)[None, None, :, None]
        base_x = (np.arange(w_out) * s)[None, None, None, :]
        abs_y = base_y + rows
        abs_x = base_x + cols
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad_input, (n_idx, c_idx, abs_y, abs_x), grad_output)
        return grad_input

    def output_shape(self, input_shape):
        c, h, w = input_shape
        h_out = F.conv_output_size(h, self.kernel_size, self.stride, 0)
        w_out = F.conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, h_out, w_out)


class AvgPool2d(Module):
    """Average pooling over ``(N, C, H, W)`` inputs."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._input_shape: tuple[int, ...] | None = None

    def _windows(self, x: np.ndarray) -> np.ndarray:
        return _pool_windows(x, self.kernel_size, self.stride)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        windows = self._windows(x)
        self._input_shape = x.shape
        return windows.mean(axis=(-1, -2))

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless average pooling: no input-shape cache for backward."""
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        return self._windows(x).mean(axis=(-1, -2))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        k, s = self.kernel_size, self.stride
        h_out, w_out = grad_output.shape[2], grad_output.shape[3]
        grad_input = np.zeros(self._input_shape, dtype=grad_output.dtype)
        share = grad_output / (k * k)
        for ky in range(k):
            for kx in range(k):
                grad_input[:, :, ky : ky + s * h_out : s, kx : kx + s * w_out : s] += share
        return grad_input

    def output_shape(self, input_shape):
        c, h, w = input_shape
        h_out = F.conv_output_size(h, self.kernel_size, self.stride, 0)
        w_out = F.conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, h_out, w_out)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing ``(N, C)`` features."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Stateless global average pooling."""
        if x.ndim != 4:
            raise ValueError(f"expected 4-D input, got shape {x.shape}")
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        grad = grad_output[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, self._input_shape).copy()

    def output_shape(self, input_shape):
        c, _, _ = input_shape
        return (c,)
