"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import new_rng


class Dropout(Module):
    """Randomly zero a fraction ``p`` of activations during training.

    Uses the inverted-dropout convention: surviving activations are scaled by
    ``1 / (1 - p)`` so that evaluation is a pure pass-through.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must lie in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else new_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference pass-through: dropout never fires on the fast path."""
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
