"""A compact NumPy neural-network framework.

This package provides the training substrate the MIME reproduction is built on:
modules with explicit forward/backward passes, convolution via im2col, losses,
optimisers and weight initialisation.  It deliberately mirrors the subset of the
PyTorch API that the original paper relies on (``Module``, ``Parameter``,
``state_dict`` and so on) so that the MIME-specific code in :mod:`repro.mime`
reads like the algorithm in the paper.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers.linear import Linear
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.layers.activation import ReLU, Sigmoid, Tanh, Identity
from repro.nn.layers.normalization import BatchNorm1d, BatchNorm2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.container import Sequential
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init
from repro.nn import functional
from repro.nn.metrics import accuracy, topk_accuracy, confusion_matrix

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Flatten",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "Optimizer",
    "init",
    "functional",
    "accuracy",
    "topk_accuracy",
    "confusion_matrix",
]
