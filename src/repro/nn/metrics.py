"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy given logits ``(N, C)`` and labels ``(N,)``."""
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"incompatible shapes: logits {logits.shape}, labels {labels.shape}"
        )
    if logits.shape[0] == 0:
        raise ValueError("cannot compute accuracy over an empty batch")
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == labels))


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-``k`` classification accuracy."""
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"incompatible shapes: logits {logits.shape}, labels {labels.shape}"
        )
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k={k} out of range for {logits.shape[1]} classes")
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return float(np.mean(hits))


def confusion_matrix(logits: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return an ``(num_classes, num_classes)`` matrix of ``counts[true, pred]``."""
    labels = np.asarray(labels, dtype=np.int64)
    predictions = np.argmax(logits, axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
