"""Stateless numerical primitives shared by the layers.

The convolution layers use the standard im2col/col2im lowering: a convolution
becomes one large matrix multiplication, which is the only way to get
acceptable NumPy performance and also mirrors how the systolic-array hardware
model in :mod:`repro.hardware` reasons about a layer (a VMM per output pixel).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Square-kernel convolution geometry.

    Returns
    -------
    cols:
        Array of shape ``(N * H_out * W_out, C * kernel * kernel)`` where each
        row is one receptive field.
    (H_out, W_out):
        The output spatial dimensions.
    """
    n, c, h, w = x.shape
    h_out = conv_output_size(h, kernel, stride, padding)
    w_out = conv_output_size(w, kernel, stride, padding)

    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )

    # Gather patches with stride tricks: shape (N, C, H_out, W_out, K, K)
    strides = x.strides
    shape = (n, c, h_out, w_out, kernel, kernel)
    patch_strides = (
        strides[0],
        strides[1],
        strides[2] * stride,
        strides[3] * stride,
        strides[2],
        strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=patch_strides)
    # -> (N, H_out, W_out, C, K, K) -> (N*H_out*W_out, C*K*K)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n * h_out * w_out, c * kernel * kernel)
    return np.ascontiguousarray(cols), (h_out, w_out)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image tensor.

    Used by the convolution backward pass to accumulate the gradient with
    respect to the layer input (overlapping receptive fields sum).
    """
    n, c, h, w = input_shape
    h_out = conv_output_size(h, kernel, stride, padding)
    w_out = conv_output_size(w, kernel, stride, padding)
    h_pad, w_pad = h + 2 * padding, w + 2 * padding

    x_pad = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    cols_reshaped = cols.reshape(n, h_out, w_out, c, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )  # (N, C, H_out, W_out, K, K)

    for ky in range(kernel):
        y_max = ky + stride * h_out
        for kx in range(kernel):
            x_max = kx + stride * w_out
            x_pad[:, :, ky:y_max:stride, kx:x_max:stride] += cols_reshaped[:, :, :, :, ky, kx]

    if padding > 0:
        return x_pad[:, :, padding : padding + h, padding : padding + w]
    return x_pad


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer class labels of shape ``(N,)`` to one-hot ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label out of range for one_hot encoding")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def threshold_mask(pre_activation: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """MIME binary mask (Eq. 1): ``m_i = 1`` when ``y_i - t_i >= 0`` else ``0``.

    ``thresholds`` is broadcast against ``pre_activation``; the usual case is a
    per-neuron threshold tensor of shape ``(C, H, W)`` or ``(features,)``
    broadcast over the batch dimension.
    """
    return (pre_activation - thresholds >= 0.0).astype(pre_activation.dtype)


def piecewise_linear_ste(diff: np.ndarray, width: float = 1.0) -> np.ndarray:
    """Surrogate derivative of the step function used during MIME training.

    The paper (Fig. 3a, citing Dynamic Sparse Training) replaces the
    non-differentiable mask-generation step with a piece-wise linear "hat"
    estimator.  We use the symmetric triangular profile

    ``d(step)/d(diff) ~= max(0, 1 - |diff| / width) / width``

    which integrates to 1, is zero outside ``[-width, width]`` and peaks at the
    threshold crossing ``diff = 0`` where the mask actually flips.
    """
    if width <= 0:
        raise ValueError("surrogate width must be positive")
    return np.maximum(0.0, 1.0 - np.abs(diff) / width) / width
