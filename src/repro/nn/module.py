"""Base classes for the NumPy neural-network framework.

The framework uses *module-local* backpropagation: each :class:`Module` caches
whatever it needs during ``forward`` and implements ``backward(grad_output)``
returning the gradient with respect to its input while accumulating gradients
into its :class:`Parameter` objects.  A container such as
:class:`repro.nn.layers.container.Sequential` chains these calls.  This is the
classic Caffe-style design; it avoids a full autograd tape while being exactly
as expressive as the MIME training procedure requires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable (or frozen) tensor with an associated gradient buffer.

    Attributes
    ----------
    data:
        The parameter values, a ``float64``/``float32`` NumPy array.
    grad:
        Accumulated gradient of the loss with respect to ``data``; ``None``
        until the first backward pass touches the parameter.
    requires_grad:
        When ``False`` the owning layer skips gradient accumulation and
        optimisers skip the update.  MIME freezes ``W_parent`` this way.
    """

    def __init__(self, data: np.ndarray, requires_grad: bool = True) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        """Total number of scalar elements."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None`` (lazily re-allocated)."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this parameter's gradient buffer.

        Gradient accumulation is skipped entirely when ``requires_grad`` is
        ``False`` which keeps frozen-backbone training cheap.
        """
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter shape {self.data.shape}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = "" if self.requires_grad else ", frozen"
        return f"Parameter(shape={self.shape}{flag})"


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` and, if they participate in training,
    :meth:`backward`.  Parameters and sub-modules assigned as attributes are
    registered automatically, which gives ``named_parameters`` /
    ``state_dict`` semantics equivalent to PyTorch's.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute registration -------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            if not hasattr(self, "_parameters"):
                raise AttributeError("call Module.__init__() before assigning parameters")
            self._parameters[name] = value
        elif isinstance(value, Module):
            if not hasattr(self, "_modules"):
                raise AttributeError("call Module.__init__() before assigning sub-modules")
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- forward / backward ------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement backward()"
        )

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference fast path: like ``forward`` but stateless.

        Layers override this with a variant that writes no backward caches and
        always behaves as in eval mode (BatchNorm uses running statistics,
        Dropout passes through).  The base implementation falls back to
        ``forward`` so custom modules keep working; such modules simply do not
        get the cache-free guarantee.
        """
        return self.forward(x)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter / module iteration --------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self`` (empty name)."""
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- training state -----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Switch this module and all sub-modules to training (or eval) mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Mark every parameter of this module tree as non-trainable."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Mark every parameter of this module tree as trainable."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    # -- state dict ----------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat copy of every parameter and registered buffer."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, module in self.named_modules():
            for buf_name, buf in getattr(module, "_buffers", {}).items():
                key = f"{name}.{buf_name}" if name else buf_name
                state[key] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Copy values from ``state`` into this module's parameters and buffers."""
        own_params = dict(self.named_parameters())
        own_buffers: Dict[str, Tuple[Module, str]] = {}
        for name, module in self.named_modules():
            for buf_name in getattr(module, "_buffers", {}):
                key = f"{name}.{buf_name}" if name else buf_name
                own_buffers[key] = (module, buf_name)

        missing = [k for k in list(own_params) + list(own_buffers) if k not in state]
        unexpected = [k for k in state if k not in own_params and k not in own_buffers]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for key, value in state.items():
            if key in own_params:
                param = own_params[key]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for '{key}': {param.data.shape} vs {value.shape}"
                    )
                param.data = np.asarray(value, dtype=param.data.dtype).copy()
            elif key in own_buffers:
                module, buf_name = own_buffers[key]
                module._buffers[buf_name] = np.asarray(value).copy()
                object.__setattr__(module, buf_name, module._buffers[buf_name])

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in this module tree."""
        total = 0
        for param in self.parameters():
            if trainable_only and not param.requires_grad:
                continue
            total += param.size
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        child_repr = ", ".join(
            f"{name}={type(mod).__name__}" for name, mod in self._modules.items()
        )
        return f"{type(self).__name__}({child_repr})"


class Buffered(Module):
    """A module that owns non-trainable persistent buffers (e.g. BatchNorm stats)."""

    def __init__(self) -> None:
        super().__init__()
        self._buffers: Dict[str, np.ndarray] = {}

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace the contents of an existing buffer."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named '{name}'")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])
