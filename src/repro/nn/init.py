"""Weight-initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import new_rng


def uniform(
    shape: Tuple[int, ...],
    low: float,
    high: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a tensor uniformly from ``[low, high)``."""
    if low > high:
        raise ValueError("low must not exceed high")
    rng = rng if rng is not None else new_rng()
    return rng.uniform(low, high, size=shape)


def normal(
    shape: Tuple[int, ...],
    mean: float = 0.0,
    std: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a tensor from a normal distribution."""
    if std < 0:
        raise ValueError("std must be non-negative")
    rng = rng if rng is not None else new_rng()
    return rng.normal(mean, std, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...],
    fan_in: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU-family networks."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    bound = np.sqrt(6.0 / fan_in)
    return uniform(shape, -bound, bound, rng=rng)


def kaiming_normal(
    shape: Tuple[int, ...],
    fan_in: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """He/Kaiming normal initialisation."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    std = np.sqrt(2.0 / fan_in)
    return normal(shape, 0.0, std, rng=rng)


def xavier_uniform(
    shape: Tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, rng=rng)
