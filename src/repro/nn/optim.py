"""First-order optimisers.

The paper trains MIME's threshold parameters with Adam (lr 1e-3); the baseline
fine-tuning and from-scratch models use SGD with momentum.  Optimisers update
only parameters with ``requires_grad=True`` and silently skip parameters whose
gradient is ``None`` (never touched in the backward pass), which is what makes
frozen-backbone threshold training efficient.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _updatable(self) -> Iterable[Parameter]:
        for param in self.parameters:
            if param.requires_grad and param.grad is not None:
                yield param


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self._updatable():
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._steps: Dict[int, int] = {}

    def step(self) -> None:
        for param in self._updatable():
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data

            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            t = self._steps.get(key, 0) + 1

            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)

            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

            self._m[key] = m
            self._v[key] = v
            self._steps[key] = t
