"""Loss functions.

Losses follow the same module-local backward convention as layers: calling a
loss returns a scalar, and :meth:`backward` returns the gradient with respect
to the model output (logits / predictions) that is then fed into the model's
``backward``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Matches ``torch.nn.CrossEntropyLoss``: takes raw logits of shape
    ``(N, num_classes)`` and integer labels of shape ``(N,)`` and averages over
    the batch.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, classes), got shape {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} incompatible with logits {logits.shape}"
            )
        log_probs = F.log_softmax(logits, axis=1)
        self._probs = np.exp(log_probs)
        self._labels = labels
        picked = log_probs[np.arange(labels.shape[0]), labels]
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        n = self._labels.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n


class MSELoss:
    """Mean squared error between predictions and targets."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"prediction shape {predictions.shape} != target shape {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
