"""Image-tensor transforms applied to whole ``(N, C, H, W)`` batches.

The transforms are deliberately batch-level (vectorised) because the datasets
are in-memory NumPy arrays; composing them with
:meth:`repro.datasets.base.ArrayDataset.map_images` prepares a child task for a
backbone expecting a different channel count or resolution (e.g. the greyscale
28x28 Fashion-MNIST surrogate fed to an RGB 32x32 parent backbone, exactly as
the paper feeds F-MNIST to an ImageNet-trained VGG16).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]) -> None:
        self.transforms = list(transforms)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            images = transform(images)
        return images


class ToFloat:
    """Cast to float64 and optionally rescale from [0, 255] to [0, 1]."""

    def __init__(self, rescale: bool = False) -> None:
        self.rescale = rescale

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if self.rescale:
            images = images / 255.0
        return images


class Normalize:
    """Standardise each channel with the given per-channel mean and std."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def __call__(self, images: np.ndarray) -> np.ndarray:
        if images.ndim != 4 or images.shape[1] != self.mean.shape[0]:
            raise ValueError(
                f"expected (N, {self.mean.shape[0]}, H, W) images, got {images.shape}"
            )
        return (images - self.mean[None, :, None, None]) / self.std[None, :, None, None]


class GrayscaleToRGB:
    """Replicate a single greyscale channel into ``channels`` identical channels."""

    def __init__(self, channels: int = 3) -> None:
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = channels

    def __call__(self, images: np.ndarray) -> np.ndarray:
        if images.ndim != 4 or images.shape[1] != 1:
            raise ValueError(f"expected (N, 1, H, W) greyscale images, got {images.shape}")
        return np.repeat(images, self.channels, axis=1)


class Resize:
    """Nearest-neighbour resize of square images to ``size`` x ``size``.

    Nearest-neighbour is sufficient for the surrogates (there is no aliasing-
    sensitive texture) and keeps the transform dependency-free.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size

    def __call__(self, images: np.ndarray) -> np.ndarray:
        if images.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) images, got {images.shape}")
        n, c, h, w = images.shape
        if h == self.size and w == self.size:
            return images
        row_idx = np.clip((np.arange(self.size) * h) // self.size, 0, h - 1)
        col_idx = np.clip((np.arange(self.size) * w) // self.size, 0, w - 1)
        return images[:, :, row_idx[:, None], col_idx[None, :]]
