"""Dataset containers and batching."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import new_rng


class ArrayDataset:
    """An in-memory labelled image dataset.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)`` (or ``(N, features)`` for flat data).
    labels:
        Integer class labels of shape ``(N,)``.
    name:
        Human-readable task name (``"cifar10-surrogate"`` etc.).
    num_classes:
        Number of classes; inferred from the labels when omitted.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        name: str = "dataset",
        num_classes: int | None = None,
    ) -> None:
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) disagree in length"
            )
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-D integer array")
        self.images = images
        self.labels = labels
        self.name = name
        if num_classes is None:
            num_classes = int(labels.max()) + 1 if labels.size else 0
        if labels.size and labels.max() >= num_classes:
            raise ValueError("a label exceeds num_classes")
        self.num_classes = num_classes

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of a single sample (excluding the batch dimension)."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray, name: str | None = None) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        return ArrayDataset(
            self.images[indices],
            self.labels[indices],
            name=name or self.name,
            num_classes=self.num_classes,
        )

    def map_images(self, fn, name: str | None = None) -> "ArrayDataset":
        """Apply ``fn`` to the full image tensor and return a new dataset."""
        return ArrayDataset(
            fn(self.images),
            self.labels,
            name=name or self.name,
            num_classes=self.num_classes,
        )


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split a dataset into train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    rng = rng if rng is not None else new_rng()
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        dataset.subset(train_idx, name=f"{dataset.name}-train"),
        dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Iterating yields ``(images, labels)`` tuples.  With ``shuffle=True`` a new
    permutation is drawn at the start of every epoch.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else new_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and batch_idx.shape[0] < self.batch_size:
                break
            yield self.dataset.images[batch_idx], self.dataset.labels[batch_idx]
