"""Dataset substrate: synthetic surrogate tasks, loaders, transforms and task streams.

The offline reproduction cannot download ImageNet / CIFAR / Fashion-MNIST, so
each benchmark dataset is replaced by a *synthetic surrogate* with the same
tensor shapes and a controllable difficulty (see DESIGN.md for the
substitution rationale).  Everything downstream — MIME threshold training,
baseline fine-tuning, sparsity measurement and the hardware model — is
agnostic to where the images came from.
"""

from repro.datasets.base import ArrayDataset, DataLoader, train_test_split
from repro.datasets.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.datasets.tasks import (
    TaskSpec,
    imagenet_surrogate,
    cifar10_surrogate,
    cifar100_surrogate,
    fmnist_surrogate,
    build_child_tasks,
    CHILD_TASK_NAMES,
)
from repro.datasets.transforms import (
    Compose,
    Normalize,
    GrayscaleToRGB,
    Resize,
    ToFloat,
)
from repro.datasets.pipeline import (
    TaskBatch,
    SingularTaskStream,
    PipelinedTaskStream,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "SyntheticTaskConfig",
    "make_synthetic_task",
    "TaskSpec",
    "imagenet_surrogate",
    "cifar10_surrogate",
    "cifar100_surrogate",
    "fmnist_surrogate",
    "build_child_tasks",
    "CHILD_TASK_NAMES",
    "Compose",
    "Normalize",
    "GrayscaleToRGB",
    "Resize",
    "ToFloat",
    "TaskBatch",
    "SingularTaskStream",
    "PipelinedTaskStream",
]
