"""Task-mode input streams.

The paper distinguishes two ways a batch of inference requests can be composed:

* **Singular task mode** — every image in a batch belongs to the same task.
* **Pipelined task mode** — consecutive images belong to *different* tasks,
  interleaved (the realistic multi-tenant scenario the paper argues for).

These streams produce the exact sequences of ``(task, image)`` pairs the
hardware scheduler consumes, so the energy model can account for when the
accelerator has to swap task-specific parameters between consecutive inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.datasets.tasks import TaskSpec
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class TaskBatch:
    """A batch of images that all belong to one task."""

    task_name: str
    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return int(self.images.shape[0])


class SingularTaskStream:
    """Yield one :class:`TaskBatch` per task, each containing ``batch_size`` images.

    This reproduces the paper's Singular task mode experiment: "a batch
    consisting of three input images, each belonging to one task".
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        batch_size: int = 3,
        split: str = "test",
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if split not in ("train", "test"):
            raise ValueError("split must be 'train' or 'test'")
        self.tasks = list(tasks)
        self.batch_size = batch_size
        self.split = split
        self._rng = rng if rng is not None else new_rng()

    def __iter__(self) -> Iterator[TaskBatch]:
        for task in self.tasks:
            dataset = task.test if self.split == "test" else task.train
            indices = self._rng.choice(len(dataset), size=self.batch_size, replace=False)
            yield TaskBatch(task.name, dataset.images[indices], dataset.labels[indices])

    def task_sequence(self) -> List[str]:
        """The per-image task sequence seen by the hardware, batch by batch."""
        sequence: List[str] = []
        for task in self.tasks:
            sequence.extend([task.name] * self.batch_size)
        return sequence


class PipelinedTaskStream:
    """Yield interleaved single-image batches cycling over the tasks.

    With ``rounds=1`` and the three paper tasks this produces the pipelined
    batch of "three input images in succession belonging to three different
    tasks" used throughout Section V-C.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        rounds: int = 1,
        images_per_slot: int = 1,
        split: str = "test",
        rng: np.random.Generator | None = None,
    ) -> None:
        if rounds <= 0 or images_per_slot <= 0:
            raise ValueError("rounds and images_per_slot must be positive")
        if split not in ("train", "test"):
            raise ValueError("split must be 'train' or 'test'")
        if not tasks:
            raise ValueError("at least one task is required")
        self.tasks = list(tasks)
        self.rounds = rounds
        self.images_per_slot = images_per_slot
        self.split = split
        self._rng = rng if rng is not None else new_rng()

    def __iter__(self) -> Iterator[TaskBatch]:
        for _ in range(self.rounds):
            for task in self.tasks:
                dataset = task.test if self.split == "test" else task.train
                indices = self._rng.choice(
                    len(dataset), size=self.images_per_slot, replace=False
                )
                yield TaskBatch(task.name, dataset.images[indices], dataset.labels[indices])

    def task_sequence(self) -> List[str]:
        """The per-slot task sequence, e.g. ``['cifar10', 'cifar100', 'fmnist']``."""
        return [task.name for _ in range(self.rounds) for task in self.tasks]

    def num_task_switches(self) -> int:
        """Number of consecutive slot pairs whose task differs.

        This is the quantity that drives extra parameter reloads in the
        conventional multi-task scenario.
        """
        sequence = self.task_sequence()
        return sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)
