"""Parent and child task factories.

The paper's experimental setup is:

* **Parent task**: ImageNet (VGG16 trained to 73.36 % top-1).
* **Child tasks**: CIFAR10 (10 classes, 32x32 RGB), CIFAR100 (100 classes,
  32x32 RGB) and Fashion-MNIST (10 classes, 28x28 greyscale).

This module builds surrogate versions of those tasks (see DESIGN.md for the
substitution argument).  The ``scale`` knob shrinks class counts, image sizes
and sample counts proportionally so the full multi-task workload trains in
seconds on CPU while preserving the structure of the experiment: a many-class
parent, two RGB children of different class counts and one greyscale child
that needs channel/size adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.datasets.base import ArrayDataset, train_test_split
from repro.datasets.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.datasets.transforms import Compose, GrayscaleToRGB, Resize

# Canonical child-task ordering used throughout the experiments (paper order).
CHILD_TASK_NAMES: Tuple[str, str, str] = ("cifar10", "cifar100", "fmnist")

# A single family seed shared by every surrogate so low-level statistics
# transfer across tasks (the premise of re-using W_parent).
_FAMILY_SEED = 20220411  # arXiv submission date of the paper, for memorability.


@dataclass
class TaskSpec:
    """A ready-to-train task: train/test datasets plus adaptation transform.

    Attributes
    ----------
    name:
        Canonical task name (``"imagenet"``, ``"cifar10"``, ...).
    train, test:
        Datasets already adapted to the backbone input format.
    num_classes:
        Number of classes in the task.
    native_shape:
        The task's native ``(C, H, W)`` before adaptation (for bookkeeping /
        storage accounting, e.g. F-MNIST is natively ``(1, 28, 28)``).
    backbone_shape:
        The ``(C, H, W)`` actually fed to the shared backbone.
    """

    name: str
    train: ArrayDataset
    test: ArrayDataset
    num_classes: int
    native_shape: Tuple[int, int, int]
    backbone_shape: Tuple[int, int, int]
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """Alias for the backbone-facing input shape."""
        return self.backbone_shape


def _build_task(
    name: str,
    num_classes: int,
    image_size: int,
    channels: int,
    samples_per_class: int,
    noise_std: float,
    seed: int,
    backbone_size: int,
    backbone_channels: int,
    test_fraction: float = 0.25,
) -> TaskSpec:
    config = SyntheticTaskConfig(
        name=name,
        num_classes=num_classes,
        image_size=image_size,
        channels=channels,
        samples_per_class=samples_per_class,
        noise_std=noise_std,
        prototype_components=6,
        family_seed=_FAMILY_SEED,
        seed=seed,
    )
    dataset = make_synthetic_task(config)

    transforms: List[Callable[[np.ndarray], np.ndarray]] = []
    if channels == 1 and backbone_channels == 3:
        transforms.append(GrayscaleToRGB(3))
    elif channels != backbone_channels:
        raise ValueError(
            f"cannot adapt {channels}-channel data to a {backbone_channels}-channel backbone"
        )
    if image_size != backbone_size:
        transforms.append(Resize(backbone_size))
    if transforms:
        dataset = dataset.map_images(Compose(transforms))

    train, test = train_test_split(dataset, test_fraction=test_fraction, rng=np.random.default_rng(seed + 1))
    return TaskSpec(
        name=name,
        train=train,
        test=test,
        num_classes=num_classes,
        native_shape=(channels, image_size, image_size),
        backbone_shape=(backbone_channels, backbone_size, backbone_size),
        metadata={"noise_std": noise_std},
    )


def imagenet_surrogate(
    scale: float = 1.0,
    backbone_size: int = 32,
    samples_per_class: int = 40,
    seed: int = 101,
) -> TaskSpec:
    """Parent-task surrogate standing in for ImageNet.

    ``scale`` controls the class count: 1.0 gives 40 classes (a parent task
    several times wider than its children, as ImageNet is to CIFAR10), smaller
    values shrink it for fast tests.
    """
    num_classes = max(4, int(round(40 * scale)))
    return _build_task(
        name="imagenet",
        num_classes=num_classes,
        image_size=backbone_size,
        channels=3,
        samples_per_class=samples_per_class,
        noise_std=0.30,
        seed=seed,
        backbone_size=backbone_size,
        backbone_channels=3,
    )


def cifar10_surrogate(
    scale: float = 1.0,
    backbone_size: int = 32,
    samples_per_class: int = 60,
    seed: int = 202,
) -> TaskSpec:
    """Child-task surrogate standing in for CIFAR10 (10-class 32x32 RGB)."""
    num_classes = max(2, int(round(10 * scale)))
    return _build_task(
        name="cifar10",
        num_classes=num_classes,
        image_size=32,
        channels=3,
        samples_per_class=samples_per_class,
        noise_std=0.35,
        seed=seed,
        backbone_size=backbone_size,
        backbone_channels=3,
    )


def cifar100_surrogate(
    scale: float = 1.0,
    backbone_size: int = 32,
    samples_per_class: int = 25,
    seed: int = 303,
) -> TaskSpec:
    """Child-task surrogate standing in for CIFAR100 (100-class 32x32 RGB).

    At ``scale=1.0`` the surrogate has 30 classes — enough to preserve the
    paper's structure (a much harder sibling of CIFAR10 with lower accuracy)
    while remaining CPU-trainable.
    """
    num_classes = max(4, int(round(30 * scale)))
    return _build_task(
        name="cifar100",
        num_classes=num_classes,
        image_size=32,
        channels=3,
        samples_per_class=samples_per_class,
        noise_std=0.45,
        seed=seed,
        backbone_size=backbone_size,
        backbone_channels=3,
    )


def fmnist_surrogate(
    scale: float = 1.0,
    backbone_size: int = 32,
    samples_per_class: int = 60,
    seed: int = 404,
) -> TaskSpec:
    """Child-task surrogate standing in for Fashion-MNIST (10-class 28x28 grey).

    Native data is generated at 28x28 with a single channel and adapted to the
    RGB backbone by channel replication and nearest-neighbour resizing — the
    same adaptation required to feed F-MNIST to an ImageNet-trained VGG16.
    """
    num_classes = max(2, int(round(10 * scale)))
    return _build_task(
        name="fmnist",
        num_classes=num_classes,
        image_size=28,
        channels=1,
        samples_per_class=samples_per_class,
        noise_std=0.25,
        seed=seed,
        backbone_size=backbone_size,
        backbone_channels=3,
    )


_CHILD_FACTORIES: Dict[str, Callable[..., TaskSpec]] = {
    "cifar10": cifar10_surrogate,
    "cifar100": cifar100_surrogate,
    "fmnist": fmnist_surrogate,
}


def build_child_tasks(
    names: Tuple[str, ...] = CHILD_TASK_NAMES,
    scale: float = 1.0,
    backbone_size: int = 32,
    samples_per_class: int | None = None,
) -> List[TaskSpec]:
    """Build the requested child tasks in order.

    ``samples_per_class`` overrides every task's default sample count (used by
    fast tests); ``None`` keeps per-task defaults.
    """
    tasks: List[TaskSpec] = []
    for name in names:
        if name not in _CHILD_FACTORIES:
            raise KeyError(f"unknown child task '{name}'; known: {sorted(_CHILD_FACTORIES)}")
        kwargs = {"scale": scale, "backbone_size": backbone_size}
        if samples_per_class is not None:
            kwargs["samples_per_class"] = samples_per_class
        tasks.append(_CHILD_FACTORIES[name](**kwargs))
    return tasks
