"""Synthetic image-classification task generator.

Each class is defined by a smooth spatial *prototype* built from a small number
of random low-frequency basis functions; samples are the prototype plus
per-sample amplitude jitter and white noise.  This gives datasets that

* share low-level statistics across tasks generated from the same ``family_seed``
  (so a frozen parent backbone transfers, which is the premise of MIME),
* are genuinely learnable (not linearly trivial, not pure noise),
* have the exact tensor shapes of the benchmarks they stand in for.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.datasets.base import ArrayDataset
from repro.utils.rng import new_rng


@dataclass
class SyntheticTaskConfig:
    """Configuration of one synthetic classification task.

    Attributes
    ----------
    name:
        Task name used for bookkeeping.
    num_classes:
        Number of classes.
    image_size:
        Square image resolution.
    channels:
        Image channels (3 = RGB surrogate, 1 = greyscale surrogate).
    samples_per_class:
        Number of generated samples per class.
    noise_std:
        Standard deviation of the additive white noise (task difficulty knob).
    prototype_components:
        Number of low-frequency basis functions blended into each prototype.
    family_seed:
        Seed of the *shared* basis bank.  Tasks built with the same family seed
        share low-level image statistics, mimicking natural-image transfer.
    seed:
        Per-task seed controlling prototypes, jitter and noise.
    """

    name: str = "synthetic"
    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    samples_per_class: int = 64
    noise_std: float = 0.35
    prototype_components: int = 6
    family_seed: int = 1234
    seed: int = 0

    def total_samples(self) -> int:
        return self.num_classes * self.samples_per_class


def _basis_bank(
    num_basis: int, image_size: int, channels: int, rng: np.random.Generator
) -> np.ndarray:
    """Build a bank of smooth 2-D basis functions shared across a task family.

    Each basis is a product of low-frequency sinusoids with a random orientation
    and phase, normalised to unit RMS, replicated with per-channel gains.
    """
    ys, xs = np.meshgrid(
        np.linspace(0.0, 1.0, image_size), np.linspace(0.0, 1.0, image_size), indexing="ij"
    )
    bank = np.empty((num_basis, channels, image_size, image_size))
    for b in range(num_basis):
        freq_y = rng.uniform(0.5, 3.0)
        freq_x = rng.uniform(0.5, 3.0)
        phase_y = rng.uniform(0, 2 * np.pi)
        phase_x = rng.uniform(0, 2 * np.pi)
        pattern = np.sin(2 * np.pi * freq_y * ys + phase_y) * np.cos(
            2 * np.pi * freq_x * xs + phase_x
        )
        pattern = pattern / (np.sqrt(np.mean(pattern**2)) + 1e-12)
        gains = rng.uniform(0.5, 1.5, size=channels)
        bank[b] = gains[:, None, None] * pattern[None, :, :]
    return bank


def make_synthetic_task(config: SyntheticTaskConfig) -> ArrayDataset:
    """Generate an :class:`ArrayDataset` according to ``config``."""
    if config.num_classes <= 1:
        raise ValueError("a classification task needs at least 2 classes")
    if config.samples_per_class <= 0:
        raise ValueError("samples_per_class must be positive")
    if config.image_size <= 0 or config.channels <= 0:
        raise ValueError("image_size and channels must be positive")
    if config.noise_std < 0:
        raise ValueError("noise_std must be non-negative")

    family_rng = new_rng(config.family_seed)
    task_rng = new_rng(config.seed)

    num_basis = max(2 * config.prototype_components, 8)
    bank = _basis_bank(num_basis, config.image_size, config.channels, family_rng)

    # Class prototypes: sparse random combinations of the shared basis bank.
    prototypes = np.zeros(
        (config.num_classes, config.channels, config.image_size, config.image_size)
    )
    for cls in range(config.num_classes):
        chosen = task_rng.choice(num_basis, size=config.prototype_components, replace=False)
        coefficients = task_rng.normal(0.0, 1.0, size=config.prototype_components)
        prototypes[cls] = np.tensordot(coefficients, bank[chosen], axes=(0, 0))
        prototypes[cls] /= np.sqrt(np.mean(prototypes[cls] ** 2)) + 1e-12

    n = config.total_samples()
    images = np.empty((n, config.channels, config.image_size, config.image_size))
    labels = np.empty(n, dtype=np.int64)
    index = 0
    for cls in range(config.num_classes):
        for _ in range(config.samples_per_class):
            amplitude = task_rng.uniform(0.7, 1.3)
            shift = task_rng.normal(0.0, 0.1)
            sample = amplitude * prototypes[cls] + shift
            sample = sample + task_rng.normal(0.0, config.noise_std, size=sample.shape)
            images[index] = sample
            labels[index] = cls
            index += 1

    # Shuffle so that class blocks are interleaved.
    order = task_rng.permutation(n)
    return ArrayDataset(
        images[order], labels[order], name=config.name, num_classes=config.num_classes
    )


def chance_accuracy(num_classes: int) -> float:
    """Accuracy of random guessing, used by tests to check models actually learn."""
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    return 1.0 / num_classes
