"""Pluggable micro-batch scheduling policies.

Both execution paths — the offline :class:`~repro.engine.MultiTaskEngine`
drain and the online :class:`~repro.serving.ServingRuntime` — reduce to the
same decision: given micro-batches of per-task requests, in what order should
they hit the compiled plan?  A :class:`SchedulingPolicy` answers it twice:

* :meth:`SchedulingPolicy.order` ranks a *complete* set of batches for an
  offline drain, where every request is already known;
* :meth:`SchedulingPolicy.pick` chooses the next batch among those currently
  *ready* in an online queue, where future arrivals are unknown and each
  worker remembers the task it last executed.

The two built-in modes mirror the paper's hardware scenarios (``singular``
drains one task before starting the next; ``pipelined`` round-robins so
consecutive batches belong to different tasks — the case where MIME's
threshold-only task switch pays off).  Two online-oriented policies join them:
``fifo-deadline`` orders batches by deadline slack, falling back to arrival
time (plain FIFO when no deadlines are set), and ``weighted-fair`` tracks a
per-task virtual finish time so each task receives service proportional to a
configurable weight.

Request ordering *within* a task is always preserved by
:func:`chunk_requests`; policies only reorder whole batches, and callers
realign outputs by submission index, so every policy returns results in
submission order no matter how it schedules.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class InferenceRequest:
    """One image of one task, tagged with its submission index.

    ``arrival_time`` and ``deadline`` are timestamps on the caller's clock
    (the serving runtime uses ``time.monotonic()``); only their ordering
    matters.  Offline callers may leave both at their defaults.
    """

    index: int
    task: str
    image: np.ndarray
    arrival_time: float = 0.0
    deadline: Optional[float] = None


class MicroBatch:
    """A scheduling unit: up to ``micro_batch`` requests of one routing key.

    ``seq`` is the batch's per-key sequence number (0 for the key's first
    batch); the derived attributes summarise the member requests for the
    policies' sort keys.

    Historically a batch held same-task requests only.  With cross-task
    coalescing the batcher buckets by *coalescing group* instead, so a batch
    may carry rows of several tasks sharing one backbone: ``group`` names
    that bucket (``None`` for classic per-task batches), ``tasks`` records
    each row's owning task, and ``task`` degrades to the first row's task —
    a representative label for error paths and single-task consumers.
    """

    __slots__ = (
        "task", "requests", "seq", "arrival_time", "deadline", "first_index",
        "group", "tasks", "mixed",
    )

    def __init__(
        self,
        task: str,
        requests: Sequence[InferenceRequest],
        seq: int,
        group: Optional[str] = None,
    ) -> None:
        if not requests:
            raise ValueError("a MicroBatch needs at least one request")
        self.task = task
        self.requests: List[InferenceRequest] = list(requests)
        self.seq = seq
        self.arrival_time = min(request.arrival_time for request in self.requests)
        deadlines = [r.deadline for r in self.requests if r.deadline is not None]
        self.deadline = min(deadlines) if deadlines else None
        self.first_index = min(request.index for request in self.requests)
        self.group = group
        self.tasks: Tuple[str, ...] = tuple(r.task for r in self.requests)
        self.mixed = any(name != task for name in self.tasks)

    def __len__(self) -> int:
        return len(self.requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MicroBatch(task={self.task!r}, seq={self.seq}, size={len(self)})"

    @property
    def urgency(self) -> float:
        """Deadline if any member has one, else +inf (sorts after deadlines)."""
        return self.deadline if self.deadline is not None else math.inf

    @property
    def routing_key(self) -> str:
        """What schedulers/dispatchers key affinity on: group, else task.

        Two batches with the same routing key share all plan state (same
        task, or same coalescing group over one backbone), so executing them
        back to back is *not* a task switch.
        """
        return self.group if self.group is not None else self.task


def chunk_requests(
    requests: Sequence[InferenceRequest], micro_batch: int
) -> List[MicroBatch]:
    """Split ``requests`` into per-task micro-batches, preserving order.

    Tasks appear in first-submission order; within a task, requests keep
    their submission order, so batch ``seq`` is monotone in request index.
    """
    if micro_batch <= 0:
        raise ValueError("micro_batch must be positive")
    per_task: Dict[str, List[InferenceRequest]] = {}
    for request in requests:
        per_task.setdefault(request.task, []).append(request)
    batches: List[MicroBatch] = []
    for task, queue in per_task.items():
        for seq, start in enumerate(range(0, len(queue), micro_batch)):
            batches.append(MicroBatch(task, queue[start : start + micro_batch], seq))
    return batches


def _task_rank(batches: Sequence[MicroBatch]) -> Dict[str, int]:
    """Rank tasks by the earliest submission index among their batches."""
    earliest: Dict[str, int] = {}
    for batch in batches:
        previous = earliest.get(batch.task)
        if previous is None or batch.first_index < previous:
            earliest[batch.task] = batch.first_index
    ordered = sorted(earliest, key=earliest.get)
    return {task: rank for rank, task in enumerate(ordered)}


class SchedulingPolicy(ABC):
    """Strategy deciding the execution order of same-plan micro-batches."""

    name: str = "abstract"

    @abstractmethod
    def order(self, batches: Sequence[MicroBatch]) -> List[MicroBatch]:
        """Rank a complete batch set for an offline drain."""

    def pick(
        self, ready: Sequence[MicroBatch], last_task: Optional[str] = None
    ) -> MicroBatch:
        """Choose the next batch among ``ready`` (online case).

        ``last_task`` is the task the calling worker executed last; policies
        that do not care ignore it.  The default takes the head of
        :meth:`order`.
        """
        if not ready:
            raise ValueError("pick() needs at least one ready batch")
        return self.order(list(ready))[0]


class SingularPolicy(SchedulingPolicy):
    """Drain every batch of one task before starting the next task.

    The paper's Singular task mode: task switches are rare, so per-task
    parameter reloads amortise over the task's whole queue.
    """

    name = "singular"

    def order(self, batches: Sequence[MicroBatch]) -> List[MicroBatch]:
        rank = _task_rank(batches)
        return sorted(batches, key=lambda b: (rank[b.task], b.seq))

    def pick(self, ready, last_task=None):
        if not ready:
            raise ValueError("pick() needs at least one ready batch")
        # Stick with the current routing key while it has ready work;
        # otherwise move to the key that has been waiting longest.  (For
        # classic per-task batches the routing key IS the task.)
        return min(
            ready,
            key=lambda b: (
                b.routing_key != last_task, b.arrival_time, b.first_index, b.seq,
            ),
        )


class PipelinedPolicy(SchedulingPolicy):
    """Round-robin one micro-batch per task (the paper's Pipelined task mode).

    Consecutive batches belong to different tasks whenever possible — the
    adversarial schedule for conventional weight reloading and the best case
    for MIME's O(1) threshold switch.
    """

    name = "pipelined"

    def order(self, batches: Sequence[MicroBatch]) -> List[MicroBatch]:
        rank = _task_rank(batches)
        return sorted(batches, key=lambda b: (b.seq, rank[b.task]))

    def pick(self, ready, last_task=None):
        if not ready:
            raise ValueError("pick() needs at least one ready batch")
        # Prefer a routing key other than the one just executed, longest-
        # waiting first.  Per-key seq counters are NOT comparable across keys
        # online (a task active since boot has a far higher counter than a
        # newcomer), so arrival time is the cross-key tiebreak.
        return min(
            ready,
            key=lambda b: (
                b.routing_key == last_task, b.arrival_time, b.first_index, b.seq,
            ),
        )


class FifoDeadlinePolicy(SchedulingPolicy):
    """Earliest-deadline-first, falling back to arrival order.

    Batches carrying a deadline sort by that deadline; batches without one
    sort by arrival time *after* every deadline-bearing batch, so with no
    deadlines anywhere this degrades to plain FIFO over batch arrival.
    """

    name = "fifo-deadline"

    @staticmethod
    def _key(batch: MicroBatch) -> Tuple[float, float, int]:
        return (batch.urgency, batch.arrival_time, batch.first_index)

    def order(self, batches: Sequence[MicroBatch]) -> List[MicroBatch]:
        return sorted(batches, key=self._key)

    def pick(self, ready, last_task=None):
        if not ready:
            raise ValueError("pick() needs at least one ready batch")
        return min(ready, key=self._key)


class WeightedFairPolicy(SchedulingPolicy):
    """Weighted fair queuing over tasks via per-task virtual finish times.

    Each task accrues virtual time ``images_served / weight``; the next batch
    always comes from the task whose virtual time after serving it would be
    smallest.  With equal weights this interleaves like ``pipelined`` but by
    *images* rather than batch count, so a task submitting small partial
    batches is not penalised.  Per-task batch order (``seq``) is preserved.

    Online, :meth:`pick` implements start-time fair queuing: the policy
    instance tracks per-task virtual finish times and a global virtual clock,
    and a task returning from idle has its virtual start clamped **up** to
    the clock — without that clamp a newcomer's zero service history would
    let it monopolise the workers until it "caught up" with tasks that have
    been active since boot, starving them instead of sharing.
    """

    name = "weighted-fair"

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(weights) if weights else {}
        for task, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for task '{task}' must be positive")
        # Online (pick) state; callers serialise pick() calls (the batcher
        # invokes it under its lock), so plain attributes suffice.
        self._virtual_finish: Dict[str, float] = {}
        self._virtual_time = 0.0

    def weight(self, task: str) -> float:
        return self.weights.get(task, 1.0)

    def order(self, batches: Sequence[MicroBatch]) -> List[MicroBatch]:
        rank = _task_rank(batches)
        pending: Dict[str, List[MicroBatch]] = {}
        for batch in sorted(batches, key=lambda b: b.seq):
            pending.setdefault(batch.task, []).append(batch)
        served: Dict[str, float] = {task: 0.0 for task in pending}
        ordered: List[MicroBatch] = []
        while pending:
            task = min(
                pending,
                key=lambda t: (
                    (served[t] + len(pending[t][0])) / self.weight(t),
                    rank[t],
                ),
            )
            batch = pending[task].pop(0)
            if not pending[task]:
                del pending[task]
            served[task] = served.get(task, 0.0) + len(batch)
            ordered.append(batch)
        return ordered

    def _virtual_start(self, task: str) -> float:
        return max(self._virtual_finish.get(task, 0.0), self._virtual_time)

    def pick(self, ready, last_task=None):
        if not ready:
            raise ValueError("pick() needs at least one ready batch")
        batch = min(
            ready,
            key=lambda b: (
                self._virtual_start(b.task) + len(b) / self.weight(b.task),
                b.seq,
                b.arrival_time,
                b.first_index,
            ),
        )
        start = self._virtual_start(batch.task)
        self._virtual_finish[batch.task] = start + len(batch) / self.weight(batch.task)
        self._virtual_time = start
        return batch


class CoalescingPolicy(SchedulingPolicy):
    """Group-sticky, deadline-aware scheduling for coalesced batches.

    Designed for the many-task regime where the batcher buckets by
    coalescing group: among the ready batches, an urgent deadline always
    wins; otherwise the policy sticks with the worker's current routing key
    (consecutive same-group batches share every byte of plan state) and
    falls back to the longest-waiting group.  With coalescing disabled the
    routing key degenerates to the task and this behaves like ``singular``
    with deadline awareness.
    """

    name = "coalescing"

    def order(self, batches: Sequence[MicroBatch]) -> List[MicroBatch]:
        return sorted(batches, key=lambda b: (b.urgency, b.arrival_time, b.first_index))

    def pick(self, ready, last_task=None):
        if not ready:
            raise ValueError("pick() needs at least one ready batch")
        return min(
            ready,
            key=lambda b: (
                b.urgency,
                b.routing_key != last_task,
                b.arrival_time,
                b.first_index,
            ),
        )


#: Built-in policies by CLI/engine mode name.
POLICIES: Dict[str, type] = {
    SingularPolicy.name: SingularPolicy,
    PipelinedPolicy.name: PipelinedPolicy,
    FifoDeadlinePolicy.name: FifoDeadlinePolicy,
    WeightedFairPolicy.name: WeightedFairPolicy,
    CoalescingPolicy.name: CoalescingPolicy,
}

#: Mode names accepted wherever a policy can be named by string.
SCHEDULING_MODES: Tuple[str, ...] = tuple(POLICIES)


def get_policy(policy: str | SchedulingPolicy) -> SchedulingPolicy:
    """Resolve a policy name or pass an instance through unchanged."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    if policy not in POLICIES:
        raise ValueError(f"unknown mode '{policy}'; choose from {SCHEDULING_MODES}")
    return POLICIES[policy]()
