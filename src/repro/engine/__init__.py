"""Compiled multi-task inference engine (the serving-side counterpart of
:mod:`repro.mime`).

Training code (``MimeNetwork.forward``) keeps per-layer activation caches for
backpropagation, runs in float64 and rebinds task parameters in place.  This
package provides the dedicated inference path:

* :func:`compile_network` snapshots a trained :class:`~repro.mime.MimeNetwork`
  into an immutable :class:`EnginePlan` — BatchNorm folded into the GEMMs,
  conv → im2col-GEMM → threshold-mask fused into single kernels, workspaces
  preallocated, per-task thresholds/heads pre-cast and pre-transposed so task
  switching is an O(1) dictionary lookup.
* :class:`MultiTaskEngine` accepts ``(task, image)`` requests, micro-batches
  them per task, and executes them in ``"singular"`` or ``"pipelined"``
  scheduling mode — the paper's two hardware scenarios.
* :class:`SparsityRecorder` captures achieved per-layer sparsity from real
  runs and exports a :class:`~repro.hardware.LayerSparsityProfile` plus the
  processed schedule, so the systolic-array simulator can estimate energy and
  throughput from measured traffic.
"""

from repro.engine.plan import (
    CompileError,
    ConvGemmMaskKernel,
    EnginePlan,
    LinearMaskKernel,
    MaskSpec,
    TaskPlan,
    compile_network,
)
from repro.engine.engine import (
    SCHEDULING_MODES,
    EngineRunStats,
    InferenceRequest,
    MultiTaskEngine,
)
from repro.engine.stats import SparsityRecorder

__all__ = [
    "CompileError",
    "ConvGemmMaskKernel",
    "EnginePlan",
    "LinearMaskKernel",
    "MaskSpec",
    "TaskPlan",
    "compile_network",
    "SCHEDULING_MODES",
    "EngineRunStats",
    "InferenceRequest",
    "MultiTaskEngine",
    "SparsityRecorder",
]
