"""Compiled multi-task inference engine (the serving-side counterpart of
:mod:`repro.mime`).

Training code (``MimeNetwork.forward``) keeps per-layer activation caches for
backpropagation, runs in float64 and rebinds task parameters in place.  This
package provides the dedicated inference path:

* :func:`compile_network` snapshots a trained :class:`~repro.mime.MimeNetwork`
  into an immutable :class:`EnginePlan` — BatchNorm folded into the GEMMs,
  conv → im2col-GEMM → threshold-mask fused into single kernels, workspaces
  preallocated, per-task thresholds/heads pre-cast and pre-transposed so task
  switching is an O(1) dictionary lookup.  All mutable execution state lives
  in a :class:`WorkspacePool`, so one plan can serve N threads at once when
  each passes its own pool to :meth:`EnginePlan.run`.
* :mod:`repro.engine.scheduling` defines the pluggable
  :class:`SchedulingPolicy` hierarchy — ``singular`` and ``pipelined`` (the
  paper's two hardware scenarios) plus the online-oriented ``fifo-deadline``
  and ``weighted-fair`` policies shared with :mod:`repro.serving`.
* :class:`MultiTaskEngine` accepts ``(task, image)`` requests, micro-batches
  them per task, and drains them offline under any scheduling policy.
* :class:`SparsityRecorder` captures achieved per-layer sparsity from real
  runs and exports a :class:`~repro.hardware.LayerSparsityProfile` plus the
  processed schedule, so the systolic-array simulator can estimate energy and
  throughput from measured traffic (see :func:`recorder_hardware_report`),
  alongside dense-vs-effective MAC totals.
* :mod:`repro.engine.calibrate` measures per-task, per-channel survival rates
  (:class:`CalibrationProfile`, JSON-serialisable) and
  :mod:`repro.engine.specialize` turns them into compacted per-task plans —
  dead-channel elimination with the shrinkage propagated through im2col rows
  and the FC head (:func:`specialize_tasks`), plus the dynamic sparse
  row-gather fast path and its autotuner
  (:func:`autotune_dynamic_crossover`).
* :mod:`repro.engine.kernels` holds the kernel variant subsystem: the
  cache-blocked fused-epilogue GEMM, the im2col-free direct convolution, the
  opt-in int8 quantized path (:func:`quantize_plan_kernels`), and the
  per-layer kernel chooser (:func:`autotune_kernel_variants` /
  :func:`apply_kernel_choices`) whose choices ride on the plan and through
  :class:`PlanSpec` into spawned serving workers.
"""

from repro.engine.plan import (
    ChannelScatterKernel,
    CompileError,
    ConvGemmMaskKernel,
    DynamicSparseConfig,
    EnginePlan,
    LinearMaskKernel,
    MaskSpec,
    RunContext,
    TaskPlan,
    WorkspacePool,
    compile_network,
)
from repro.engine.calibrate import (
    CalibrationProfile,
    ChannelSurvivalRecorder,
    calibrate_plan,
    profile_from_network,
)
from repro.engine.kernels import (
    CONV_VARIANTS,
    LINEAR_VARIANTS,
    POOL_VARIANTS,
    TIMING_CACHE,
    KernelTimingCache,
    QuantizedGemm,
    apply_kernel_choices,
    autotune_kernel_variants,
    force_kernel_variant,
    int8_datapath_beats_float,
    kernel_timing_key,
    packed_weight_panels,
    quantize_gemm,
    quantize_plan_kernels,
    set_kernel_variant,
    variant_candidates,
    winograd_tolerance,
    winograd_weights,
)
from repro.engine.planspec import PlanSetSpec, PlanSpec, TaskSpec
from repro.engine.specialize import (
    SpecializedEnginePlan,
    autotune_dynamic_crossover,
    enable_dynamic_sparse,
    specialize_plan,
    specialize_tasks,
)
from repro.engine.scheduling import (
    POLICIES,
    SCHEDULING_MODES,
    FifoDeadlinePolicy,
    InferenceRequest,
    MicroBatch,
    PipelinedPolicy,
    SchedulingPolicy,
    SingularPolicy,
    WeightedFairPolicy,
    chunk_requests,
    get_policy,
)
from repro.engine.engine import (
    EngineRunStats,
    MultiTaskEngine,
    recorder_hardware_report,
)
from repro.engine.stats import SparsityRecorder

__all__ = [
    "CalibrationProfile",
    "ChannelScatterKernel",
    "ChannelSurvivalRecorder",
    "CompileError",
    "ConvGemmMaskKernel",
    "DynamicSparseConfig",
    "EnginePlan",
    "LinearMaskKernel",
    "MaskSpec",
    "PlanSetSpec",
    "PlanSpec",
    "RunContext",
    "SpecializedEnginePlan",
    "TaskPlan",
    "TaskSpec",
    "WorkspacePool",
    "autotune_dynamic_crossover",
    "calibrate_plan",
    "compile_network",
    "enable_dynamic_sparse",
    "profile_from_network",
    "specialize_plan",
    "specialize_tasks",
    "CONV_VARIANTS",
    "LINEAR_VARIANTS",
    "POOL_VARIANTS",
    "TIMING_CACHE",
    "KernelTimingCache",
    "QuantizedGemm",
    "apply_kernel_choices",
    "autotune_kernel_variants",
    "force_kernel_variant",
    "int8_datapath_beats_float",
    "kernel_timing_key",
    "packed_weight_panels",
    "quantize_gemm",
    "quantize_plan_kernels",
    "set_kernel_variant",
    "variant_candidates",
    "winograd_tolerance",
    "winograd_weights",
    "POLICIES",
    "SCHEDULING_MODES",
    "FifoDeadlinePolicy",
    "InferenceRequest",
    "MicroBatch",
    "PipelinedPolicy",
    "SchedulingPolicy",
    "SingularPolicy",
    "WeightedFairPolicy",
    "chunk_requests",
    "get_policy",
    "EngineRunStats",
    "MultiTaskEngine",
    "recorder_hardware_report",
    "SparsityRecorder",
]
