"""Compiled multi-task inference engine (the serving-side counterpart of
:mod:`repro.mime`).

Training code (``MimeNetwork.forward``) keeps per-layer activation caches for
backpropagation, runs in float64 and rebinds task parameters in place.  This
package provides the dedicated inference path:

* :func:`compile_network` snapshots a trained :class:`~repro.mime.MimeNetwork`
  into an immutable :class:`EnginePlan` — BatchNorm folded into the GEMMs,
  conv → im2col-GEMM → threshold-mask fused into single kernels, workspaces
  preallocated, per-task thresholds/heads pre-cast and pre-transposed so task
  switching is an O(1) dictionary lookup.  All mutable execution state lives
  in a :class:`WorkspacePool`, so one plan can serve N threads at once when
  each passes its own pool to :meth:`EnginePlan.run`.
* :mod:`repro.engine.scheduling` defines the pluggable
  :class:`SchedulingPolicy` hierarchy — ``singular`` and ``pipelined`` (the
  paper's two hardware scenarios) plus the online-oriented ``fifo-deadline``
  and ``weighted-fair`` policies shared with :mod:`repro.serving`.
* :class:`MultiTaskEngine` accepts ``(task, image)`` requests, micro-batches
  them per task, and drains them offline under any scheduling policy.
* :class:`SparsityRecorder` captures achieved per-layer sparsity from real
  runs and exports a :class:`~repro.hardware.LayerSparsityProfile` plus the
  processed schedule, so the systolic-array simulator can estimate energy and
  throughput from measured traffic (see :func:`recorder_hardware_report`).
"""

from repro.engine.plan import (
    CompileError,
    ConvGemmMaskKernel,
    EnginePlan,
    LinearMaskKernel,
    MaskSpec,
    TaskPlan,
    WorkspacePool,
    compile_network,
)
from repro.engine.scheduling import (
    POLICIES,
    SCHEDULING_MODES,
    FifoDeadlinePolicy,
    InferenceRequest,
    MicroBatch,
    PipelinedPolicy,
    SchedulingPolicy,
    SingularPolicy,
    WeightedFairPolicy,
    chunk_requests,
    get_policy,
)
from repro.engine.engine import (
    EngineRunStats,
    MultiTaskEngine,
    recorder_hardware_report,
)
from repro.engine.stats import SparsityRecorder

__all__ = [
    "CompileError",
    "ConvGemmMaskKernel",
    "EnginePlan",
    "LinearMaskKernel",
    "MaskSpec",
    "TaskPlan",
    "WorkspacePool",
    "compile_network",
    "POLICIES",
    "SCHEDULING_MODES",
    "FifoDeadlinePolicy",
    "InferenceRequest",
    "MicroBatch",
    "PipelinedPolicy",
    "SchedulingPolicy",
    "SingularPolicy",
    "WeightedFairPolicy",
    "chunk_requests",
    "get_policy",
    "EngineRunStats",
    "MultiTaskEngine",
    "recorder_hardware_report",
    "SparsityRecorder",
]
