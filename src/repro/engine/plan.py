"""Ahead-of-time compilation of a :class:`~repro.mime.masked_model.MimeNetwork`.

``compile_network`` walks the training network once and materialises an
:class:`EnginePlan`: a flat list of fused inference kernels over a *snapshot*
of the frozen backbone, plus one pre-bound :class:`TaskPlan` per registered
child task.  The training network is never touched again — compilation copies
every tensor it needs, so serving traffic cannot perturb training state and
vice versa.

The fusions mirror what a deployment compiler would do for this topology:

* **BatchNorm folding** — the backbone is frozen and its normalisation layers
  permanently run on running statistics, so every Conv→BatchNorm (and
  Linear→BatchNorm) pair collapses exactly into a rescaled weight and bias.
* **conv → im2col-GEMM → threshold-mask fusion** — a convolution lowers to one
  GEMM whose output stays in ``(N·H·W, C)`` layout; the task's thresholds are
  pre-transposed into that same layout at task-plan build time, so masking is
  a single broadcast compare directly on the GEMM output.
* **NHWC activation layout** — the GEMM naturally produces channels-last
  activations, so the whole compiled feature stack keeps them that way:
  convolution weights are pre-reordered to ``(K·K·C_in, C_out)`` and the first
  classifier Linear's columns are permuted at compile time to consume NHWC
  features.  Only the entry batch is transposed at run time; no intermediate
  layout round-trips remain.
* **workspace reuse** — the im2col column matrix, the padded-input buffer and
  the GEMM output are preallocated per (kernel, batch-size) and reused across
  calls, so steady-state serving does no large allocations.

Task switching is O(1): a :class:`TaskPlan` is a dictionary entry holding the
pre-cast thresholds and head, and selecting it binds nothing into the shared
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import BatchNorm1d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.functional import conv_output_size
from repro.mime.masked_model import MimeNetwork
from repro.mime.task_manager import TaskParameters
from repro.mime.threshold_layer import ThresholdMask


class CompileError(RuntimeError):
    """Raised when a network contains a layer the engine cannot compile."""


# ---------------------------------------------------------------------------
# Mask geometry: how a task's threshold tensor maps onto a kernel's output.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MaskSpec:
    """Layout of one threshold mask inside the compiled plan.

    ``slot`` indexes into ``TaskParameters.thresholds`` (network order);
    ``gemm_shape`` is the broadcastable shape of the thresholds against the
    owning kernel's GEMM-layout output.
    """

    slot: int
    layer_name: str
    kind: str  # "conv" (thresholds (C, H, W) -> (1, H*W, C)) or "linear" ((F,) -> (1, F))
    gemm_shape: Tuple[int, ...]


class WorkspacePool:
    """Reusable scratch buffers keyed by (kernel id, label, batch size).

    A pool belongs to exactly one executing thread at a time: the plan's
    kernels write their im2col columns, padded inputs and GEMM outputs into
    it.  The plan itself owns one default pool for single-threaded callers;
    concurrent callers (the serving runtime's workers) each hold their own
    pool and pass it to :meth:`EnginePlan.run`, which is what makes a single
    immutable plan safe to execute from N threads at once — all mutable
    state lives in the pool, everything on the plan is read-only.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[int, str, int], np.ndarray] = {}

    def get(self, owner: int, label: str, batch: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (owner, label, batch)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def __len__(self) -> int:
        return len(self._buffers)


# Backwards-compatible alias (pre-serving-runtime name).
_Workspaces = WorkspacePool


# ---------------------------------------------------------------------------
# Fused kernels.
# ---------------------------------------------------------------------------
class ConvGemmMaskKernel:
    """Fused convolution: im2col → GEMM → (optional) threshold mask.

    Activations flow through in contiguous channels-last NHWC layout: the
    weight matrix is pre-reordered to ``(K·K·C_in, C_out)`` so the GEMM output
    ``(N·H_out·W_out, C_out)`` *is* the NHWC feature map, and the per-task
    thresholds are pre-transposed into the same layout.  BatchNorm, when
    present in the source network, is already folded into
    ``weight_t``/``bias``; im2col gathers rows as runs of ``C_in`` contiguous
    values, so no strided element-wise copies remain.
    """

    def __init__(
        self,
        index: int,
        name: str,
        weight_t: np.ndarray,  # (K*K*C_in, C_out), BN-folded, (ky, kx, c) row order
        bias: np.ndarray,  # (C_out,)
        kernel_size: int,
        stride: int,
        padding: int,
        in_shape: Tuple[int, int, int],
        out_shape: Tuple[int, int, int],
        mask: Optional[MaskSpec],
    ) -> None:
        self.index = index
        self.name = name
        self.weight_t = weight_t
        self.bias = bias
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.in_shape = in_shape  # (C_in, H, W) — per-sample, paper convention
        self.out_shape = out_shape  # (C_out, H_out, W_out)
        self.mask = mask

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder) -> np.ndarray:
        n = x.shape[0]
        c_in, h, w = self.in_shape
        c_out, h_out, w_out = self.out_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        dtype = self.weight_t.dtype

        if p > 0:
            # The border stays zero from allocation time; only the interior is
            # rewritten, so padding costs one dense copy and no memset.
            padded = ws.get(self.index, "pad", n, (n, h + 2 * p, w + 2 * p, c_in), dtype)
            padded[:, p : p + h, p : p + w, :] = x
            src = padded
        else:
            src = x

        cols = ws.get(self.index, "cols", n, (n * h_out * w_out, k * k * c_in), dtype)
        cols_view = cols.reshape(n, h_out, w_out, k, k, c_in)
        for ky in range(k):
            for kx in range(k):
                cols_view[:, :, :, ky, kx, :] = src[
                    :, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :
                ]

        out = ws.get(self.index, "out", n, (n * h_out * w_out, c_out), dtype)
        np.matmul(cols, self.weight_t, out=out)
        out += self.bias

        if self.mask is not None:
            gemm = out.reshape(n, h_out * w_out, c_out)
            mask = gemm >= task.thresholds[self.mask.slot]
            gemm *= mask
            if recorder is not None:
                recorder.record(task.name, self.mask.layer_name, 1.0 - float(mask.mean()), n)
        return out.reshape(n, h_out, w_out, c_out)


class MaxPoolKernel:
    """Stateless max pooling over contiguous NHWC inputs."""

    def __init__(self, index: int, kernel_size: int, stride: int, out_shape: Tuple[int, int, int]) -> None:
        self.index = index
        self.kernel_size = kernel_size
        self.stride = stride
        self.out_shape = out_shape  # (C, H_out, W_out) — per-sample, paper convention

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder) -> np.ndarray:
        n, h, w, c = x.shape
        k, s = self.kernel_size, self.stride
        h_out = conv_output_size(h, k, s, 0)
        w_out = conv_output_size(w, k, s, 0)
        out = ws.get(self.index, "pool", n, (n, h_out, w_out, c), x.dtype)
        if s == k and h % k == 0 and w % k == 0:
            # Non-overlapping pooling (the VGG case): a reshape view keeps the
            # reduction reading contiguous channel runs.
            np.max(x.reshape(n, h_out, k, w_out, k, c), axis=(2, 4), out=out)
            return out
        first = True
        for ky in range(k):
            for kx in range(k):
                window = x[:, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :]
                if first:
                    np.copyto(out, window)
                    first = False
                else:
                    np.maximum(out, window, out=out)
        return out


class FlattenKernel:
    """Feature/classifier boundary: collapse per-sample dims to one axis.

    The incoming NHWC feature map is contiguous (conv/pool workspaces), so
    this is a zero-copy reshape; the following Linear's columns were permuted
    at compile time to consume NHWC ordering.
    """

    def __init__(self, index: int) -> None:
        self.index = index

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(x.shape[0], -1)


class LinearMaskKernel:
    """Fused fully-connected layer: GEMM → (optional) threshold mask / ReLU.

    ``activation`` distinguishes masked layers (thresholds come from the task
    plan) from plain ReLU trunks (``mask_classifier_hidden=False``).
    """

    def __init__(
        self,
        index: int,
        name: str,
        weight_t: np.ndarray,  # (in, out), BN-folded
        bias: np.ndarray,
        mask: Optional[MaskSpec],
        relu: bool = False,
    ) -> None:
        self.index = index
        self.name = name
        self.weight_t = weight_t
        self.bias = bias
        self.mask = mask
        self.relu = relu

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder) -> np.ndarray:
        out = ws.get(self.index, "fc", x.shape[0], (x.shape[0], self.weight_t.shape[1]), x.dtype)
        np.matmul(x, self.weight_t, out=out)
        out += self.bias
        if self.mask is not None:
            mask = out >= task.thresholds[self.mask.slot]
            out *= mask
            if recorder is not None:
                recorder.record(
                    task.name, self.mask.layer_name, 1.0 - float(mask.mean()), x.shape[0]
                )
        elif self.relu:
            np.maximum(out, 0.0, out=out)
        return out


# ---------------------------------------------------------------------------
# Per-task execution state.
# ---------------------------------------------------------------------------
@dataclass
class TaskPlan:
    """Pre-bound per-task tensors: thresholds in kernel layout plus the head.

    Everything is cast to the plan dtype and laid out for direct broadcasting
    against the fused kernels' GEMM outputs, so using a task at request time
    is a dictionary lookup — no transposes, casts or rebinds.
    """

    name: str
    num_classes: int
    thresholds: List[np.ndarray]  # indexed by MaskSpec.slot
    head_weight_t: np.ndarray  # (in_features, num_classes)
    head_bias: np.ndarray  # (num_classes,)


def _build_task_plan(
    task: TaskParameters,
    specs: List[MaskSpec],
    dtype,
    head_permutation: Optional[np.ndarray] = None,
) -> TaskPlan:
    if task.head_weight is None or task.head_bias is None:
        raise CompileError(f"task '{task.name}' has no classification head")
    thresholds: List[np.ndarray] = []
    for spec, param in zip(specs, task.thresholds):
        data = param.data
        if spec.kind == "conv":
            laid_out = data.transpose(1, 2, 0).reshape(spec.gemm_shape)
        else:
            laid_out = data.reshape(spec.gemm_shape)
        # np.array (not ascontiguousarray) so the plan never aliases training
        # parameters, even when the layout transform degenerates to a view.
        thresholds.append(np.array(laid_out, dtype=dtype, order="C"))
    head_weight = task.head_weight.data
    if head_permutation is not None:
        # The head consumes NHWC features directly (no classifier trunk).
        head_weight = head_weight[:, head_permutation]
    return TaskPlan(
        name=task.name,
        num_classes=task.num_classes,
        thresholds=thresholds,
        head_weight_t=np.array(head_weight.T, dtype=dtype, order="C"),
        head_bias=np.array(task.head_bias.data, dtype=dtype),
    )


# ---------------------------------------------------------------------------
# The compiled plan.
# ---------------------------------------------------------------------------
@dataclass
class EnginePlan:
    """A compiled, immutable snapshot of a MimeNetwork ready for serving."""

    dtype: np.dtype
    input_shape: Tuple[int, int, int]
    kernels: List[object]
    mask_specs: List[MaskSpec]
    tasks: Dict[str, TaskPlan] = field(default_factory=dict)
    head_permutation: Optional[np.ndarray] = None
    _workspaces: WorkspacePool = field(default_factory=WorkspacePool, repr=False)

    def task_names(self) -> List[str]:
        return list(self.tasks)

    def masked_layer_names(self) -> List[str]:
        return [spec.layer_name for spec in self.mask_specs]

    def add_task(self, task: TaskParameters) -> TaskPlan:
        """Snapshot a task registered after compilation (e.g. newly trained)."""
        plan = _build_task_plan(task, self.mask_specs, self.dtype, self.head_permutation)
        self.tasks[task.name] = plan
        return plan

    def run(
        self,
        x: np.ndarray,
        task: str,
        recorder=None,
        workspaces: Optional[WorkspacePool] = None,
    ) -> np.ndarray:
        """Execute the compiled network for one micro-batch of ``task`` inputs.

        Accepts NCHW input (the training model's convention); internally the
        plan runs channels-last.  Returns freshly-allocated logits of shape
        ``(N, num_classes)``; all intermediate buffers live in ``workspaces``
        (the plan's own default pool when omitted) and are reused across
        calls.

        The plan itself is immutable after compilation, so concurrent threads
        may run different micro-batches over the same plan as long as each
        passes its **own** :class:`WorkspacePool` — the GEMMs release the GIL,
        which is what the serving runtime's thread-parallel workers exploit.
        """
        if task not in self.tasks:
            raise KeyError(f"task '{task}' was not compiled; known: {self.task_names()}")
        task_plan = self.tasks[task]
        if x.ndim == 3:
            x = x[None, ...]
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected input of per-sample shape {self.input_shape}, got {x.shape[1:]}"
            )
        pool = workspaces if workspaces is not None else self._workspaces
        x = np.ascontiguousarray(x.transpose(0, 2, 3, 1), dtype=self.dtype)
        for kernel in self.kernels:
            x = kernel.run(x, task_plan, pool, recorder)
        return x @ task_plan.head_weight_t + task_plan.head_bias

    def num_workspace_buffers(self) -> int:
        """How many distinct reusable buffers the plan has allocated so far."""
        return len(self._workspaces)


# ---------------------------------------------------------------------------
# Compilation.
# ---------------------------------------------------------------------------
def _fold_batchnorm(
    weight: np.ndarray, bias: np.ndarray, bn: BatchNorm1d | BatchNorm2d
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode BatchNorm into the preceding layer's weight/bias.

    ``weight`` is (C_out, fan_in); the BN scale multiplies per output channel.
    Exact because the backbone's running statistics are frozen.
    """
    inv_std = 1.0 / np.sqrt(bn._buffers["running_var"] + bn.eps)
    scale = bn.gamma.data * inv_std
    folded_weight = weight * scale[:, None]
    folded_bias = (bias - bn._buffers["running_mean"]) * scale + bn.beta.data
    return folded_weight, folded_bias


class _PendingGemm:
    """A Conv2d/Linear waiting to absorb a following BatchNorm and mask."""

    def __init__(self, layer, in_shape: Tuple[int, ...]) -> None:
        self.layer = layer
        self.in_shape = in_shape
        if isinstance(layer, Conv2d):
            self.weight = layer.weight.data.reshape(layer.out_channels, -1).copy()
            self.bias = (
                layer.bias.data.copy()
                if layer.bias is not None
                else np.zeros(layer.out_channels)
            )
        else:
            self.weight = layer.weight.data.copy()
            self.bias = (
                layer.bias.data.copy()
                if layer.bias is not None
                else np.zeros(layer.out_features)
            )
        self.mask_layer: Optional[ThresholdMask] = None
        self.relu = False


def compile_network(network: MimeNetwork, dtype=np.float32) -> EnginePlan:
    """Compile ``network`` into an :class:`EnginePlan` (default float32).

    Read-only with respect to the training network: the active task, every
    parameter tensor and every layer cache are left exactly as found.
    """
    if not isinstance(network, MimeNetwork):
        raise TypeError("compile_network expects a repro.mime.MimeNetwork")
    dtype = np.dtype(dtype)
    input_shape = (
        network.backbone.in_channels,
        network.backbone.input_size,
        network.backbone.input_size,
    )

    kernels: List[object] = []
    mask_specs: List[MaskSpec] = []
    shape: Tuple[int, ...] = input_shape
    pending: Optional[_PendingGemm] = None
    nhwc_permutation: Optional[np.ndarray] = None  # set at the flatten boundary

    def flush() -> None:
        nonlocal pending, nhwc_permutation
        if pending is None:
            return
        index = len(kernels)
        spec: Optional[MaskSpec] = None
        if pending.mask_layer is not None:
            slot = len(mask_specs)
            mask = pending.mask_layer
            if len(mask.neuron_shape) == 3:
                c, h, w = mask.neuron_shape
                spec = MaskSpec(slot, mask.layer_name, "conv", (1, h * w, c))
            else:
                spec = MaskSpec(slot, mask.layer_name, "linear", (1, mask.neuron_shape[0]))
            mask_specs.append(spec)
        bias = pending.bias.astype(dtype)
        if isinstance(pending.layer, Conv2d):
            layer = pending.layer
            k = layer.kernel_size
            # (C_out, C_in*K*K) -> (K*K*C_in, C_out) so the GEMM emits NHWC.
            weight_t = np.ascontiguousarray(
                pending.weight.reshape(layer.out_channels, layer.in_channels, k, k)
                .transpose(2, 3, 1, 0)
                .reshape(k * k * layer.in_channels, layer.out_channels),
                dtype=dtype,
            )
            out_shape = tuple(layer.output_shape(pending.in_shape))
            kernels.append(
                ConvGemmMaskKernel(
                    index,
                    name=f"gemm{index}",
                    weight_t=weight_t,
                    bias=bias,
                    kernel_size=k,
                    stride=layer.stride,
                    padding=layer.padding,
                    in_shape=pending.in_shape,
                    out_shape=out_shape,
                    mask=spec,
                )
            )
        else:
            weight = pending.weight
            if nhwc_permutation is not None:
                # First Linear after the features: consume NHWC-ordered columns.
                weight = weight[:, nhwc_permutation]
                nhwc_permutation = None
            weight_t = np.ascontiguousarray(weight.T, dtype=dtype)
            kernels.append(
                LinearMaskKernel(
                    index,
                    name=f"gemm{index}",
                    weight_t=weight_t,
                    bias=bias,
                    mask=spec,
                    relu=pending.relu,
                )
            )
        pending = None

    def walk(layer) -> None:
        nonlocal pending, shape
        if isinstance(layer, (Conv2d, Linear)):
            flush()
            pending = _PendingGemm(layer, shape)
            shape = tuple(layer.output_shape(shape))
        elif isinstance(layer, (BatchNorm2d, BatchNorm1d)):
            if pending is None:
                raise CompileError("BatchNorm without a preceding Conv2d/Linear")
            pending.weight, pending.bias = _fold_batchnorm(pending.weight, pending.bias, layer)
        elif isinstance(layer, ThresholdMask):
            if pending is None:
                raise CompileError("ThresholdMask without a preceding Conv2d/Linear")
            pending.mask_layer = layer
            flush()
        elif isinstance(layer, ReLU):
            if pending is not None:
                pending.relu = True
                flush()
            else:
                raise CompileError("ReLU without a preceding Conv2d/Linear")
        elif isinstance(layer, MaxPool2d):
            flush()
            out_shape = tuple(layer.output_shape(shape))
            kernels.append(MaxPoolKernel(len(kernels), layer.kernel_size, layer.stride, out_shape))
            shape = out_shape
        elif isinstance(layer, (Dropout, Flatten)):
            flush()  # Dropout never fires at inference; Flatten is inserted explicitly.
        else:
            raise CompileError(f"cannot compile layer type {type(layer).__name__}")

    for layer in network._feature_layers:
        walk(layer)
    flush()
    kernels.append(FlattenKernel(len(kernels)))
    boundary_c, boundary_h, boundary_w = shape
    # Maps NHWC-flattened feature index j to the training model's (C, H, W)
    # flat index, so exactly one downstream weight matrix absorbs the layout
    # change at compile time.
    nhwc_permutation = (
        np.arange(boundary_c * boundary_h * boundary_w)
        .reshape(boundary_c, boundary_h, boundary_w)
        .transpose(1, 2, 0)
        .ravel()
    )
    shape = (int(np.prod(shape)),)
    for layer in network._classifier_layers:
        walk(layer)
    flush()

    if len(mask_specs) != len(network.masks()):
        raise CompileError(
            f"compiled {len(mask_specs)} masks but the network has {len(network.masks())}"
        )

    plan = EnginePlan(
        dtype=dtype,
        input_shape=input_shape,
        kernels=kernels,
        mask_specs=mask_specs,
        head_permutation=nhwc_permutation,  # still pending if no trunk Linear consumed it
    )
    for task in network.registry:
        plan.add_task(task)
    return plan
