"""Ahead-of-time compilation of a :class:`~repro.mime.masked_model.MimeNetwork`.

``compile_network`` walks the training network once and materialises an
:class:`EnginePlan`: a flat list of fused inference kernels over a *snapshot*
of the frozen backbone, plus one pre-bound :class:`TaskPlan` per registered
child task.  The training network is never touched again — compilation copies
every tensor it needs, so serving traffic cannot perturb training state and
vice versa.

The fusions mirror what a deployment compiler would do for this topology:

* **BatchNorm folding** — the backbone is frozen and its normalisation layers
  permanently run on running statistics, so every Conv→BatchNorm (and
  Linear→BatchNorm) pair collapses exactly into a rescaled weight and bias.
* **conv → im2col-GEMM → threshold-mask fusion** — a convolution lowers to one
  GEMM whose output stays in ``(N·H·W, C)`` layout; the task's thresholds are
  pre-transposed into that same layout at task-plan build time, so masking is
  a single broadcast compare directly on the GEMM output.
* **NHWC activation layout** — the GEMM naturally produces channels-last
  activations, so the whole compiled feature stack keeps them that way:
  convolution weights are pre-reordered to ``(K·K·C_in, C_out)`` and the first
  classifier Linear's columns are permuted at compile time to consume NHWC
  features.  Only the entry batch is transposed at run time; no intermediate
  layout round-trips remain.
* **workspace reuse** — the im2col column matrix, the padded-input buffer and
  the GEMM output are preallocated per (kernel, batch-size) and reused across
  calls, so steady-state serving does no large allocations.

Task switching is O(1): a :class:`TaskPlan` is a dictionary entry holding the
pre-cast thresholds and head, and selecting it binds nothing into the shared
kernels.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import BatchNorm1d, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU
from repro.engine import kernels as _kernels
from repro.mime.masked_model import MimeNetwork
from repro.mime.task_manager import TaskParameters
from repro.mime.threshold_layer import ThresholdMask
from repro.utils.ratios import fraction_saved


class CompileError(RuntimeError):
    """Raised when a network contains a layer the engine cannot compile."""


# ---------------------------------------------------------------------------
# Mask geometry: how a task's threshold tensor maps onto a kernel's output.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MaskSpec:
    """Layout of one threshold mask inside the compiled plan.

    ``slot`` indexes into ``TaskParameters.thresholds`` (network order);
    ``gemm_shape`` is the broadcastable shape of the thresholds against the
    owning kernel's GEMM-layout output.
    """

    slot: int
    layer_name: str
    kind: str  # "conv" (thresholds (C, H, W) -> (1, H*W, C)) or "linear" ((F,) -> (1, F))
    gemm_shape: Tuple[int, ...]


class WorkspacePool:
    """Reusable scratch buffers keyed by (kernel identity, label, batch size).

    A pool belongs to exactly one executing thread at a time: the plan's
    kernels write their im2col columns, padded inputs and GEMM outputs into
    it.  The plan itself owns one default pool for single-threaded callers;
    concurrent callers (the serving runtime's workers) each hold their own
    pool and pass it to :meth:`EnginePlan.run`, which is what makes a single
    immutable plan safe to execute from N threads at once — all mutable
    state lives in the pool, everything on the plan is read-only.

    Kernels key their buffers by a process-unique kernel uid so one pool can serve several
    plans (e.g. a worker switching between a dense plan and per-task
    specialized plans) without two same-index kernels colliding.  ``get``
    additionally validates shape and dtype: a key whose requested geometry
    changed gets a fresh zeroed buffer instead of a stale view, so the
    zero-from-allocation-time invariant (pad borders, dead im2col columns)
    can never be violated by buffer reuse.

    Pools are also **process-local**: buffers cached before a ``fork`` (or
    carried into a child any other way) are dropped on first use in the child.
    A parent's cached buffer may be a view over shared memory (the sharded
    serving runtime's rings), in which case reusing it from the child would
    write into the parent's live data; and even plain buffers would break the
    process-unique-uid contract, since the child's freshly-built kernels draw
    uids from a counter whose history diverged at the fork.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[int, str, int], np.ndarray] = {}
        self._pid = os.getpid()

    def get(self, owner: int, label: str, batch: int, shape: Tuple[int, ...], dtype) -> np.ndarray:
        if self._pid != os.getpid():
            # Inherited across fork/spawn: every cached buffer belongs to the
            # parent process and must never be written from this one.
            self._buffers.clear()
            self._pid = os.getpid()
        key = (owner, label, batch)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != np.dtype(dtype):
            buf = np.zeros(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def retain(self, owners) -> None:
        """Drop every buffer whose owning kernel uid is not in ``owners``.

        The hot-swap control plane calls this after replacing a runtime's
        plans: the old plans' kernels (and their uids) are gone, so their
        buffers would otherwise accumulate forever across swaps.  Safe to
        call while another thread executes over this pool — the dict is
        rebuilt and swapped in one assignment, and a concurrently-running
        kernel that loses a buffer mid-batch simply gets a fresh zeroed one
        on its next ``get`` (fresh zeroed buffers are always valid: the
        pad-border and scatter kernels rely only on zero-from-allocation).
        """
        owners = set(owners)
        # Iterate a snapshot: a concurrent get() may insert mid-rebuild, and
        # iterating the live dict would raise.  An insert that races the
        # reassignment is simply recreated on the owner's next get().
        self._buffers = {
            key: buf for key, buf in list(self._buffers.items()) if key[0] in owners
        }

    def __len__(self) -> int:
        return len(self._buffers)


# Backwards-compatible alias (pre-serving-runtime name).
_Workspaces = WorkspacePool

#: Process-wide kernel identities for WorkspacePool keys.  ``id(kernel)``
#: would be recycled by the allocator after a plan is garbage collected, and
#: a recycled key with matching geometry would hand a *stale* buffer to a new
#: kernel — breaking the zero-from-allocation-time invariant the pad borders
#: and scatter kernels rely on.  A monotonic counter can never collide.
_KERNEL_UIDS = itertools.count()


# ---------------------------------------------------------------------------
# Per-run execution context: dynamic-sparsity state and effective-MAC counts.
# ---------------------------------------------------------------------------
@dataclass
class DynamicSparseConfig:
    """Tuning of the dynamic sparse fast path (see :class:`ConvGemmMaskKernel`).

    ``gate`` is the minimum *measured* element sparsity of the previous masked
    layer before a kernel even computes row liveness (the check itself costs a
    pass over the im2col matrix, so it is skipped on dense traffic — which is
    what keeps the fast path free at zero sparsity).  ``crossover`` maps a
    kernel name to the maximum live-row fraction at which the
    gather→GEMM→scatter path still beats the dense GEMM; kernels missing from
    the map use ``default_crossover``.  Build the map by measurement with
    :func:`repro.engine.specialize.autotune_dynamic_crossover`.
    """

    gate: float = 0.5
    default_crossover: float = 0.5
    crossover: Dict[str, float] = field(default_factory=dict)

    def crossover_for(self, kernel_name: str) -> float:
        return self.crossover.get(kernel_name, self.default_crossover)


class RunContext:
    """Mutable state threaded through one :meth:`EnginePlan.run` call.

    Carries the previous masked layer's measured batch sparsity (the dynamic
    fast path's gate signal) and accumulates the multiply-accumulate counts
    actually executed (``effective_macs``) next to what a fully dense,
    unspecialized plan would have executed (``dense_macs``).  Callers that
    want the counts pass a context in and read it back after ``run``;
    contexts may be reused across micro-batches to accumulate totals.
    """

    __slots__ = ("dynamic", "prev_sparsity", "dense_macs", "effective_macs", "dynamic_gemms")

    def __init__(self, dynamic: Optional[DynamicSparseConfig] = None) -> None:
        self.dynamic = dynamic
        self.prev_sparsity = 0.0
        self.dense_macs = 0
        self.effective_macs = 0
        #: GEMMs that took the row-gather fast path.
        self.dynamic_gemms = 0

    def mac_reduction(self) -> float:
        """Fraction of dense MACs avoided (0.0 when nothing was saved)."""
        return fraction_saved(self.dense_macs, self.effective_macs)


# ---------------------------------------------------------------------------
# Fused kernels.
# ---------------------------------------------------------------------------
#: Shared mask step of the fused GEMM kernels — the implementation (and the
#: per-block fused form the cache-blocked variants use) lives in
#: :mod:`repro.engine.kernels` so every variant feeds the same sparsity
#: reporting tail.  Re-exported under the historical name.
_apply_threshold_mask = _kernels.apply_threshold_mask


def _gemm_with_dynamic_row_gather(kernel, a: np.ndarray, out: np.ndarray, ctx) -> None:
    """``out = a @ kernel.weight_t + kernel.bias``, row-gathered when it pays.

    When the run context's gate says the previous masked layer was sparse
    enough, rows of ``a`` that are entirely zero (a receptive field the
    previous mask killed completely, or a fully-masked sample) are skipped:
    the output is prefilled with the bias — a zero row GEMMs to exactly the
    bias — and only the surviving rows are multiplied.  Gathering preserves
    each surviving row's reduction order, so both paths are bit-identical to
    the dense matmul (both routed through
    :func:`~repro.engine.kernels.matmul_rowsafe` so a single surviving row
    still reduces in sgemm order).  Effective-MAC accounting lands in
    ``ctx``.
    """
    rows = a.shape[0]
    reduction, width = kernel.weight_t.shape
    if ctx is not None and ctx.dynamic is not None and ctx.prev_sparsity >= ctx.dynamic.gate:
        live = a.any(axis=1)
        live_rows = int(np.count_nonzero(live))
        if live_rows / rows <= ctx.dynamic.crossover_for(kernel.name):
            out[:] = kernel.bias
            if live_rows:
                out[live] = _kernels.matmul_rowsafe(a[live], kernel.weight_t) + kernel.bias
            ctx.dynamic_gemms += 1
            ctx.effective_macs += live_rows * reduction * width
            return
    _kernels.matmul_rowsafe(a, kernel.weight_t, out=out)
    out += kernel.bias
    if ctx is not None:
        ctx.effective_macs += rows * reduction * width


class ConvGemmMaskKernel:
    """Fused convolution: im2col → GEMM → (optional) threshold mask.

    Activations flow through in contiguous channels-last NHWC layout: the
    weight matrix is pre-reordered to ``(K·K·C_in, C_out)`` so the GEMM output
    ``(N·H_out·W_out, C_out)`` *is* the NHWC feature map, and the per-task
    thresholds are pre-transposed into the same layout.  BatchNorm, when
    present in the source network, is already folded into
    ``weight_t``/``bias``; im2col gathers rows as runs of ``C_in`` contiguous
    values, so no strided element-wise copies remain.

    **Dynamic sparse fast path** — when the run context says the previous
    masked layer's measured batch sparsity cleared the configured gate, the
    kernel checks which im2col rows (spatial output positions) have an
    entirely-zero receptive field.  If the live fraction is below the
    per-layer crossover it gathers the surviving rows, GEMMs the compacted
    matrix, and scatters the results back over a bias-filled output (a zero
    row's GEMM output is exactly the bias).  Row gathering leaves each
    surviving row's reduction untouched, so the fast path is bit-identical to
    the dense GEMM.

    **Variants** — ``self.variant`` selects among the lowerings in
    :mod:`repro.engine.kernels` (``"im2col"`` default, ``"blocked"``,
    ``"packed"``, ``"direct"``, ``"winograd"``, ``"int8"``, ``"int8spd"``);
    see that module for the exactness contract of each.  The
    float-arithmetic variants defer to this path whenever the
    dynamic gate is armed and the previous layer's sparsity cleared it, so
    the row-gather fast path (and its bit-exactness) is preserved no matter
    which variant the chooser picked.
    """

    kind = "conv"

    def __init__(
        self,
        index: int,
        name: str,
        weight_t: np.ndarray,  # (K*K*C_in, C_out), BN-folded, (ky, kx, c) row order
        bias: np.ndarray,  # (C_out,)
        kernel_size: int,
        stride: int,
        padding: int,
        in_shape: Tuple[int, int, int],
        out_shape: Tuple[int, int, int],
        mask: Optional[MaskSpec],
        dense_macs: Optional[int] = None,
        dense_channels: Optional[int] = None,
    ) -> None:
        self.index = index
        self.uid = next(_KERNEL_UIDS)
        self.name = name
        self.weight_t = weight_t
        self.bias = bias
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.in_shape = in_shape  # (C_in, H, W) — per-sample, paper convention
        self.out_shape = out_shape  # (C_out, H_out, W_out)
        self.mask = mask
        #: MACs/image and output width of the *unspecialized* dense layer;
        #: specialization passes the source kernel's values through so the
        #: effective-MAC accounting and the recorded sparsity always compare
        #: against the true dense baseline.
        self.dense_macs_per_image = (
            dense_macs
            if dense_macs is not None
            else out_shape[1] * out_shape[2] * weight_t.shape[0] * weight_t.shape[1]
        )
        self.dense_channels = dense_channels if dense_channels is not None else weight_t.shape[1]
        #: Execution variant (see repro.engine.kernels) and optional int8
        #: quantization payload; both are plan-construction-time state, set
        #: by the chooser/quantizer before serving starts.  ``wino`` and
        #: ``packed`` cache derived per-variant weight layouts (Winograd
        #: transform / L2 column panels), built lazily on first use.
        self.variant = "im2col"
        self.quant = None
        self.wino = None
        self.packed = None

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder, ctx=None) -> np.ndarray:
        if recorder is not None:
            record_range = getattr(recorder, "record_range", None)
            if record_range is not None:
                record_range(task.name, self.name, float(np.abs(x).max()))
        variant = self.variant
        if variant != "im2col" and (
            variant in ("int8", "int8spd")
            or ctx is None
            or ctx.dynamic is None
            or ctx.prev_sparsity < ctx.dynamic.gate
        ):
            return _kernels.run_conv_variant(self, x, task, ws, recorder, ctx)
        n = x.shape[0]
        c_in, h, w = self.in_shape
        c_out, h_out, w_out = self.out_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        dtype = self.weight_t.dtype

        if p > 0:
            # The border stays zero from allocation time; only the interior is
            # rewritten, so padding costs one dense copy and no memset.
            padded = ws.get(self.uid, "pad", n, (n, h + 2 * p, w + 2 * p, c_in), dtype)
            padded[:, p : p + h, p : p + w, :] = x
            src = padded
        else:
            src = x

        rows = n * h_out * w_out
        reduction = self.weight_t.shape[0]
        cols = ws.get(self.uid, "cols", n, (rows, reduction), dtype)
        cols_view = cols.reshape(n, h_out, w_out, k, k, c_in)
        for ky in range(k):
            for kx in range(k):
                cols_view[:, :, :, ky, kx, :] = src[
                    :, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :
                ]

        out = ws.get(self.uid, "out", n, (rows, c_out), dtype)
        dynamic_before = ctx.dynamic_gemms if ctx is not None else 0
        _gemm_with_dynamic_row_gather(self, cols, out, ctx)
        if ctx is not None:
            ctx.dense_macs += n * self.dense_macs_per_image
        used = "dynamic" if ctx is not None and ctx.dynamic_gemms > dynamic_before else "im2col"
        _kernels.record_variant_traffic(
            recorder, used, *_kernels.conv_variant_traffic(self, n, "im2col")
        )

        if self.mask is not None:
            gemm = out.reshape(n, h_out * w_out, c_out)
            _apply_threshold_mask(self, gemm, task, ws, recorder, ctx, h_out * w_out)
        elif ctx is not None:
            ctx.prev_sparsity = 0.0
        return out.reshape(n, h_out, w_out, c_out)


class MaxPoolKernel:
    """Stateless max pooling over contiguous NHWC inputs.

    Two bit-identical variants: ``"reshape"`` (default — reshape-reduce when
    windows are aligned and non-overlapping, strided-view maximum cascade
    otherwise) and ``"views"`` (always the cascade, which reads each input
    element once through ``k*k`` contiguous views and is the faster of the
    two on this machine — the chooser picks per layer).  Overlapping pools
    (stride < kernel) always take the cascade, whose shifted views revisit
    shared elements per tap.
    """

    kind = "pool"

    def __init__(
        self,
        index: int,
        kernel_size: int,
        stride: int,
        out_shape: Tuple[int, int, int],
        name: Optional[str] = None,
    ) -> None:
        self.index = index
        self.uid = next(_KERNEL_UIDS)
        self.name = name if name is not None else f"pool{index}"
        self.kernel_size = kernel_size
        self.stride = stride
        self.out_shape = out_shape  # (C, H_out, W_out) — per-sample, paper convention
        self.variant = "reshape"

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder, ctx=None) -> np.ndarray:
        n, c = x.shape[0], x.shape[3]
        k, s = self.kernel_size, self.stride
        # Spatial geometry was fixed at compile time; channels follow the
        # stream (a specialized plan's compacted width arrives via x).
        h_out, w_out = self.out_shape[1], self.out_shape[2]
        out = ws.get(self.uid, "pool", n, (n, h_out, w_out, c), x.dtype)
        if (
            self.variant == "reshape"
            and s == k
            and x.shape[1] == k * h_out
            and x.shape[2] == k * w_out
        ):
            # Non-overlapping aligned pooling (the VGG case): a reshape view
            # keeps the reduction reading contiguous channel runs.
            np.max(x.reshape(n, h_out, k, w_out, k, c), axis=(2, 4), out=out)
        else:
            first = True
            for ky in range(k):
                for kx in range(k):
                    window = x[:, ky : ky + s * h_out : s, kx : kx + s * w_out : s, :]
                    if first:
                        np.copyto(out, window)
                        first = False
                    else:
                        np.maximum(out, window, out=out)
        _kernels.record_variant_traffic(
            recorder, f"pool-{self.variant}", *_kernels.pool_variant_traffic(self, x, out)
        )
        return out


class FlattenKernel:
    """Feature/classifier boundary: collapse per-sample dims to one axis.

    The incoming NHWC feature map is contiguous (conv/pool workspaces), so
    this is a zero-copy reshape; the following Linear's columns were permuted
    at compile time to consume NHWC ordering.
    """

    kind = "flatten"

    def __init__(self, index: int) -> None:
        self.index = index
        self.uid = next(_KERNEL_UIDS)

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder, ctx=None) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(x.shape[0], -1)


class ChannelScatterKernel:
    """Scatter compacted live channels back onto a dense zero background.

    A specialized plan's masked GEMMs emit only the task's live channels.
    Before a consumer whose weights are laid out for the dense channel order
    (the next convolution's im2col, the flatten boundary, the FC head), this
    kernel writes the live channels into their original positions of a dense
    workspace buffer.  Dead positions are **never written**: they stay zero
    from allocation time (the same invariant as the conv pad border), and
    since the dense plan's dead channels are exactly zero after masking, the
    consumer sees bit-identical inputs while the producer GEMM did only the
    live columns' work.

    Works on any channels-last layout — NHWC feature maps and flat ``(N, F)``
    feature vectors alike; only the trailing axis is scattered.
    """

    kind = "scatter"

    def __init__(self, index: int, live_index: np.ndarray, dense_channels: int) -> None:
        self.index = index
        self.uid = next(_KERNEL_UIDS)
        self.live_index = np.ascontiguousarray(live_index, dtype=np.intp)
        self.dense_channels = int(dense_channels)

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder, ctx=None) -> np.ndarray:
        n = x.shape[0]
        shape = x.shape[:-1] + (self.dense_channels,)
        out = ws.get(self.uid, "scatter", n, shape, x.dtype)
        # The incoming stream carries the live channels first; anything after
        # them is zero padding lanes that must not land in a dense position.
        out[..., self.live_index] = x[..., : self.live_index.shape[0]]
        return out


class LinearMaskKernel:
    """Fused fully-connected layer: GEMM → (optional) threshold mask / ReLU.

    ``activation`` distinguishes masked layers (thresholds come from the task
    plan) from plain ReLU trunks (``mask_classifier_hidden=False``).

    **Variants** — ``"dense"`` (default), ``"blocked"``, ``"packed"``,
    ``"int8"``, ``"int8spd"``; same dispatch and dynamic-gate fallback
    rules as :class:`ConvGemmMaskKernel`.
    """

    kind = "linear"

    def __init__(
        self,
        index: int,
        name: str,
        weight_t: np.ndarray,  # (in, out), BN-folded
        bias: np.ndarray,
        mask: Optional[MaskSpec],
        relu: bool = False,
        dense_macs: Optional[int] = None,
        dense_channels: Optional[int] = None,
    ) -> None:
        self.index = index
        self.uid = next(_KERNEL_UIDS)
        self.name = name
        self.weight_t = weight_t
        self.bias = bias
        self.mask = mask
        self.relu = relu
        self.dense_macs_per_image = (
            dense_macs if dense_macs is not None else weight_t.shape[0] * weight_t.shape[1]
        )
        self.dense_channels = dense_channels if dense_channels is not None else weight_t.shape[1]
        self.variant = "dense"
        self.quant = None
        self.packed = None

    def run(self, x: np.ndarray, task: "TaskPlan", ws: WorkspacePool, recorder, ctx=None) -> np.ndarray:
        if recorder is not None:
            record_range = getattr(recorder, "record_range", None)
            if record_range is not None:
                record_range(task.name, self.name, float(np.abs(x).max()))
        variant = self.variant
        if variant != "dense" and (
            variant in ("int8", "int8spd")
            or ctx is None
            or ctx.dynamic is None
            or ctx.prev_sparsity < ctx.dynamic.gate
        ):
            return _kernels.run_linear_variant(self, x, task, ws, recorder, ctx)
        n = x.shape[0]
        out = ws.get(self.uid, "fc", n, (n, self.weight_t.shape[1]), x.dtype)
        # Rows are samples here: the fast path skips samples whose whole
        # feature vector was masked away.
        dynamic_before = ctx.dynamic_gemms if ctx is not None else 0
        _gemm_with_dynamic_row_gather(self, x, out, ctx)
        if ctx is not None:
            ctx.dense_macs += n * self.dense_macs_per_image
        used = "dynamic" if ctx is not None and ctx.dynamic_gemms > dynamic_before else "dense"
        _kernels.record_variant_traffic(
            recorder, used, *_kernels.linear_variant_traffic(self, n, "dense")
        )
        if self.mask is not None:
            _apply_threshold_mask(self, out, task, ws, recorder, ctx, 1)
        else:
            if self.relu:
                np.maximum(out, 0.0, out=out)
            if ctx is not None:
                ctx.prev_sparsity = 0.0
        return out


# ---------------------------------------------------------------------------
# Per-task execution state.
# ---------------------------------------------------------------------------
@dataclass
class TaskPlan:
    """Pre-bound per-task tensors: thresholds in kernel layout plus the head.

    Everything is cast to the plan dtype and laid out for direct broadcasting
    against the fused kernels' GEMM outputs, so using a task at request time
    is a dictionary lookup — no transposes, casts or rebinds.
    """

    name: str
    num_classes: int
    thresholds: List[np.ndarray]  # indexed by MaskSpec.slot
    head_weight_t: np.ndarray  # (in_features, num_classes)
    head_bias: np.ndarray  # (num_classes,)
    #: MACs the unspecialized dense head executes per image (kept through
    #: specialization so effective-MAC accounting compares against the
    #: original geometry).  0 means "derive from head_weight_t".
    head_dense_macs: int = 0


#: Pseudo-task name carried by :class:`MixedTaskView`: layer statistics a
#: recorder collects while running a genuinely mixed batch are attributed to
#: this aggregate bucket (per-task sparsity cannot be untangled per tile
#: without giving up the fused epilogue).  Request/pass accounting stays
#: per-task — see :func:`repro.serving.base.run_plan_batch`.
MIXED_TASK_NAME = "__mixed__"


class MixedTaskView:
    """Per-row threshold view standing in for :class:`TaskPlan` in mixed batches.

    ``thresholds[slot]`` carries a leading batch axis — ``(n, spi, c)`` for
    conv masks, ``(n, width)`` for linear masks — where row ``i`` holds the
    threshold row of the task that owns input row ``i``.  The fused kernels
    broadcast it exactly like the single-task ``(1, ...)`` layout; the tiled
    lowerings slice it per image/row block.  Ducks the :class:`TaskPlan`
    attributes the kernels touch (``name`` and ``thresholds``), nothing more:
    the classification head is applied per task *outside* the kernel loop.
    """

    __slots__ = ("name", "num_classes", "thresholds")

    def __init__(self, num_classes: int, thresholds: List[np.ndarray]) -> None:
        self.name = MIXED_TASK_NAME
        self.num_classes = num_classes
        self.thresholds = thresholds


def _build_task_plan(
    task: TaskParameters,
    specs: List[MaskSpec],
    dtype,
    head_permutation: Optional[np.ndarray] = None,
) -> TaskPlan:
    if task.head_weight is None or task.head_bias is None:
        raise CompileError(f"task '{task.name}' has no classification head")
    thresholds: List[np.ndarray] = []
    for spec, param in zip(specs, task.thresholds):
        data = param.data
        if spec.kind == "conv":
            laid_out = data.transpose(1, 2, 0).reshape(spec.gemm_shape)
        else:
            laid_out = data.reshape(spec.gemm_shape)
        # np.array (not ascontiguousarray) so the plan never aliases training
        # parameters, even when the layout transform degenerates to a view.
        thresholds.append(np.array(laid_out, dtype=dtype, order="C"))
    head_weight = task.head_weight.data
    if head_permutation is not None:
        # The head consumes NHWC features directly (no classifier trunk).
        head_weight = head_weight[:, head_permutation]
    head_weight_t = np.array(head_weight.T, dtype=dtype, order="C")
    return TaskPlan(
        name=task.name,
        num_classes=task.num_classes,
        thresholds=thresholds,
        head_weight_t=head_weight_t,
        head_bias=np.array(task.head_bias.data, dtype=dtype),
        head_dense_macs=head_weight_t.shape[0] * head_weight_t.shape[1],
    )


# ---------------------------------------------------------------------------
# The compiled plan.
# ---------------------------------------------------------------------------
@dataclass
class EnginePlan:
    """A compiled, immutable snapshot of a MimeNetwork ready for serving."""

    dtype: np.dtype
    input_shape: Tuple[int, int, int]
    kernels: List[object]
    mask_specs: List[MaskSpec]
    tasks: Dict[str, TaskPlan] = field(default_factory=dict)
    head_permutation: Optional[np.ndarray] = None
    #: None disables the dynamic sparse fast path; set via
    #: :func:`repro.engine.specialize.enable_dynamic_sparse` or the autotuner
    #: before serving starts (the plan is treated as immutable afterwards).
    dynamic: Optional[DynamicSparseConfig] = None
    #: Per-kernel variant choices (kernel name -> variant), cached by
    #: :func:`repro.engine.kernels.autotune_kernel_variants` and carried
    #: through :class:`~repro.engine.planspec.PlanSpec` so spawned workers
    #: rebuild identical choices.  None = every kernel on its default.
    kernel_choices: Optional[Dict[str, str]] = None
    _workspaces: WorkspacePool = field(default_factory=WorkspacePool, repr=False)
    #: Workspace-owner uid for the per-row threshold buffers of mixed-task
    #: batches (:meth:`run_mixed`).  Allocated eagerly like kernel uids so
    #: concurrent workers never race a lazy assignment; ``dataclasses.replace``
    #: keeps it, which is correct — the kernels (and so the pools) are shared
    #: between the replaced snapshots too.
    _mixed_uid: int = field(default_factory=lambda: next(_KERNEL_UIDS), repr=False)

    def task_names(self) -> List[str]:
        return list(self.tasks)

    def masked_layer_names(self) -> List[str]:
        return [spec.layer_name for spec in self.mask_specs]

    def add_task(self, task: TaskParameters) -> TaskPlan:
        """Snapshot a task registered after compilation (e.g. newly trained)."""
        plan = _build_task_plan(task, self.mask_specs, self.dtype, self.head_permutation)
        self.tasks[task.name] = plan
        return plan

    def run(
        self,
        x: np.ndarray,
        task: str,
        recorder=None,
        workspaces: Optional[WorkspacePool] = None,
        ctx: Optional[RunContext] = None,
    ) -> np.ndarray:
        """Execute the compiled network for one micro-batch of ``task`` inputs.

        Accepts NCHW input (the training model's convention); internally the
        plan runs channels-last.  Returns freshly-allocated logits of shape
        ``(N, num_classes)``; all intermediate buffers live in ``workspaces``
        (the plan's own default pool when omitted) and are reused across
        calls.

        ``ctx`` carries the dynamic-sparse configuration and accumulates the
        dense/effective MAC counts of this call; omit it and the plan builds a
        throwaway context from its own :attr:`dynamic` config.

        The plan itself is immutable after compilation, so concurrent threads
        may run different micro-batches over the same plan as long as each
        passes its **own** :class:`WorkspacePool` — the GEMMs release the GIL,
        which is what the serving runtime's thread-parallel workers exploit.
        """
        if task not in self.tasks:
            raise KeyError(f"task '{task}' was not compiled; known: {self.task_names()}")
        return self._run_task_plan(x, self.tasks[task], recorder, workspaces, ctx)

    def _run_task_plan(
        self,
        x: np.ndarray,
        task_plan: TaskPlan,
        recorder=None,
        workspaces: Optional[WorkspacePool] = None,
        ctx: Optional[RunContext] = None,
    ) -> np.ndarray:
        """:meth:`run` body against an explicit :class:`TaskPlan` object.

        The task plan may belong to a *different* plan of the same coalescing
        group (identical kernel geometry), which is how group-leader execution
        serves a member task's rows on the leader's kernels.
        """
        if x.ndim == 3:
            x = x[None, ...]
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected input of per-sample shape {self.input_shape}, got {x.shape[1:]}"
            )
        pool = workspaces if workspaces is not None else self._workspaces
        if ctx is None:
            ctx = RunContext(self.dynamic)
        ctx.prev_sparsity = 0.0  # the raw image batch is dense
        x = np.ascontiguousarray(x.transpose(0, 2, 3, 1), dtype=self.dtype)
        for kernel in self.kernels:
            x = kernel.run(x, task_plan, pool, recorder, ctx)
        logits = _kernels.matmul_rowsafe(x, task_plan.head_weight_t) + task_plan.head_bias
        head_macs = task_plan.head_weight_t.shape[0] * task_plan.head_weight_t.shape[1]
        ctx.effective_macs += x.shape[0] * head_macs
        ctx.dense_macs += x.shape[0] * (task_plan.head_dense_macs or head_macs)
        return logits

    def run_mixed(
        self,
        x: np.ndarray,
        row_tasks: Sequence[str],
        task_plans: Optional[Dict[str, TaskPlan]] = None,
        recorder=None,
        workspaces: Optional[WorkspacePool] = None,
        ctx: Optional[RunContext] = None,
    ) -> np.ndarray:
        """Execute one micro-batch whose rows may belong to *different* tasks.

        ``row_tasks[i]`` names the task that owns input row ``i``.  The whole
        batch runs the shared backbone as **one** pass: per-row thresholds are
        gathered into pooled ``(n, ...)`` buffers (one copy of each member
        task's threshold row per batch — never a resident per-task stack), the
        fused kernels mask against them, and the per-task FC heads are applied
        to each task's row group at the end.

        Exactness contract: bit-identical to running the same rows as
        per-task singular batches.  Every plan op is row-independent and the
        repo's GEMM paths preserve per-row reduction order under batch
        regrouping (the same property the dynamic row-gather fast path is
        built on), so neither the shared backbone pass nor the row-sliced
        head GEMMs can change a single bit.

        ``task_plans`` overrides the threshold/head lookup (defaults to
        ``self.tasks``): a coalescing group of *specialized* plans executes on
        the group leader's kernels while each member contributes its own
        compacted :class:`TaskPlan`.  All members must share the leader's
        mask geometry and head width — violations raise :class:`CompileError`.

        Layer statistics are recorded under :data:`MIXED_TASK_NAME`; per-task
        request accounting is the caller's job (see ``run_plan_batch``).
        """
        names = list(row_tasks)
        if x.ndim == 3:
            x = x[None, ...]
        if len(names) != x.shape[0]:
            raise ValueError(
                f"row_tasks has {len(names)} entries for a batch of {x.shape[0]} rows"
            )
        lookup = task_plans if task_plans is not None else self.tasks
        unique = list(dict.fromkeys(names))
        missing = [name for name in unique if name not in lookup]
        if missing:
            raise KeyError(f"mixed batch references unknown task(s) {missing}")
        if len(unique) == 1:
            # Homogeneous batch: identical to the singular path by definition.
            return self._run_task_plan(x, lookup[unique[0]], recorder, workspaces, ctx)
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"expected input of per-sample shape {self.input_shape}, got {x.shape[1:]}"
            )
        members = {name: lookup[name] for name in unique}
        widths = {tp.num_classes for tp in members.values()}
        if len(widths) != 1:
            raise CompileError(
                f"mixed-task batch requires equal head widths, got {sorted(widths)}"
            )
        pool = workspaces if workspaces is not None else self._workspaces
        if ctx is None:
            ctx = RunContext(self.dynamic)
        ctx.prev_sparsity = 0.0
        n = x.shape[0]
        rows_of: Dict[str, List[int]] = {name: [] for name in unique}
        for row, name in enumerate(names):
            rows_of[name].append(row)

        # Per-row threshold gather, one pooled buffer per mask slot.
        num_slots = max((spec.slot for spec in self.mask_specs), default=-1) + 1
        mixed_thresholds: List[Optional[np.ndarray]] = [None] * num_slots
        for spec in self.mask_specs:
            ref = members[unique[0]].thresholds[spec.slot]
            buf = pool.get(
                self._mixed_uid, f"mixthr{spec.slot}", n, (n,) + ref.shape[1:], ref.dtype
            )
            for name, rows in rows_of.items():
                src = members[name].thresholds[spec.slot]
                if src.shape != ref.shape:
                    raise CompileError(
                        f"task '{name}' mask slot {spec.slot} has shape {src.shape}, "
                        f"incompatible with this plan's {ref.shape} — not in this "
                        "coalescing group"
                    )
                buf[rows] = src[0]
            mixed_thresholds[spec.slot] = buf
        view = MixedTaskView(next(iter(widths)), mixed_thresholds)

        x = np.ascontiguousarray(x.transpose(0, 2, 3, 1), dtype=self.dtype)
        for kernel in self.kernels:
            x = kernel.run(x, view, pool, recorder, ctx)

        logits = np.empty((n, view.num_classes), dtype=x.dtype)
        for name, rows in rows_of.items():
            tp = members[name]
            logits[rows] = _kernels.matmul_rowsafe(x[rows], tp.head_weight_t) + tp.head_bias
            head_macs = tp.head_weight_t.shape[0] * tp.head_weight_t.shape[1]
            ctx.effective_macs += len(rows) * head_macs
            ctx.dense_macs += len(rows) * (tp.head_dense_macs or head_macs)
        return logits

    def num_workspace_buffers(self) -> int:
        """How many distinct reusable buffers the plan has allocated so far."""
        return len(self._workspaces)


# ---------------------------------------------------------------------------
# Compilation.
# ---------------------------------------------------------------------------
def _fold_batchnorm(
    weight: np.ndarray, bias: np.ndarray, bn: BatchNorm1d | BatchNorm2d
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode BatchNorm into the preceding layer's weight/bias.

    ``weight`` is (C_out, fan_in); the BN scale multiplies per output channel.
    Exact because the backbone's running statistics are frozen.
    """
    inv_std = 1.0 / np.sqrt(bn._buffers["running_var"] + bn.eps)
    scale = bn.gamma.data * inv_std
    folded_weight = weight * scale[:, None]
    folded_bias = (bias - bn._buffers["running_mean"]) * scale + bn.beta.data
    return folded_weight, folded_bias


class _PendingGemm:
    """A Conv2d/Linear waiting to absorb a following BatchNorm and mask."""

    def __init__(self, layer, in_shape: Tuple[int, ...]) -> None:
        self.layer = layer
        self.in_shape = in_shape
        if isinstance(layer, Conv2d):
            self.weight = layer.weight.data.reshape(layer.out_channels, -1).copy()
            self.bias = (
                layer.bias.data.copy()
                if layer.bias is not None
                else np.zeros(layer.out_channels)
            )
        else:
            self.weight = layer.weight.data.copy()
            self.bias = (
                layer.bias.data.copy()
                if layer.bias is not None
                else np.zeros(layer.out_features)
            )
        self.mask_layer: Optional[ThresholdMask] = None
        self.relu = False


def compile_network(network: MimeNetwork, dtype=np.float32) -> EnginePlan:
    """Compile ``network`` into an :class:`EnginePlan` (default float32).

    Read-only with respect to the training network: the active task, every
    parameter tensor and every layer cache are left exactly as found.
    """
    if not isinstance(network, MimeNetwork):
        raise TypeError("compile_network expects a repro.mime.MimeNetwork")
    dtype = np.dtype(dtype)
    input_shape = (
        network.backbone.in_channels,
        network.backbone.input_size,
        network.backbone.input_size,
    )

    kernels: List[object] = []
    mask_specs: List[MaskSpec] = []
    shape: Tuple[int, ...] = input_shape
    pending: Optional[_PendingGemm] = None
    nhwc_permutation: Optional[np.ndarray] = None  # set at the flatten boundary

    def flush() -> None:
        nonlocal pending, nhwc_permutation
        if pending is None:
            return
        index = len(kernels)
        spec: Optional[MaskSpec] = None
        if pending.mask_layer is not None:
            slot = len(mask_specs)
            mask = pending.mask_layer
            if len(mask.neuron_shape) == 3:
                c, h, w = mask.neuron_shape
                spec = MaskSpec(slot, mask.layer_name, "conv", (1, h * w, c))
            else:
                spec = MaskSpec(slot, mask.layer_name, "linear", (1, mask.neuron_shape[0]))
            mask_specs.append(spec)
        bias = pending.bias.astype(dtype)
        if isinstance(pending.layer, Conv2d):
            layer = pending.layer
            k = layer.kernel_size
            # (C_out, C_in*K*K) -> (K*K*C_in, C_out) so the GEMM emits NHWC.
            weight_t = np.ascontiguousarray(
                pending.weight.reshape(layer.out_channels, layer.in_channels, k, k)
                .transpose(2, 3, 1, 0)
                .reshape(k * k * layer.in_channels, layer.out_channels),
                dtype=dtype,
            )
            out_shape = tuple(layer.output_shape(pending.in_shape))
            kernels.append(
                ConvGemmMaskKernel(
                    index,
                    name=f"gemm{index}",
                    weight_t=weight_t,
                    bias=bias,
                    kernel_size=k,
                    stride=layer.stride,
                    padding=layer.padding,
                    in_shape=pending.in_shape,
                    out_shape=out_shape,
                    mask=spec,
                )
            )
        else:
            weight = pending.weight
            if nhwc_permutation is not None:
                # First Linear after the features: consume NHWC-ordered columns.
                weight = weight[:, nhwc_permutation]
                nhwc_permutation = None
            weight_t = np.ascontiguousarray(weight.T, dtype=dtype)
            kernels.append(
                LinearMaskKernel(
                    index,
                    name=f"gemm{index}",
                    weight_t=weight_t,
                    bias=bias,
                    mask=spec,
                    relu=pending.relu,
                )
            )
        pending = None

    def walk(layer) -> None:
        nonlocal pending, shape
        if isinstance(layer, (Conv2d, Linear)):
            flush()
            pending = _PendingGemm(layer, shape)
            shape = tuple(layer.output_shape(shape))
        elif isinstance(layer, (BatchNorm2d, BatchNorm1d)):
            if pending is None:
                raise CompileError("BatchNorm without a preceding Conv2d/Linear")
            pending.weight, pending.bias = _fold_batchnorm(pending.weight, pending.bias, layer)
        elif isinstance(layer, ThresholdMask):
            if pending is None:
                raise CompileError("ThresholdMask without a preceding Conv2d/Linear")
            pending.mask_layer = layer
            flush()
        elif isinstance(layer, ReLU):
            if pending is not None:
                pending.relu = True
                flush()
            else:
                raise CompileError("ReLU without a preceding Conv2d/Linear")
        elif isinstance(layer, MaxPool2d):
            flush()
            out_shape = tuple(layer.output_shape(shape))
            kernels.append(
                MaxPoolKernel(
                    len(kernels),
                    layer.kernel_size,
                    layer.stride,
                    out_shape,
                    name=f"pool{len(kernels)}",
                )
            )
            shape = out_shape
        elif isinstance(layer, (Dropout, Flatten)):
            flush()  # Dropout never fires at inference; Flatten is inserted explicitly.
        else:
            raise CompileError(f"cannot compile layer type {type(layer).__name__}")

    for layer in network._feature_layers:
        walk(layer)
    flush()
    kernels.append(FlattenKernel(len(kernels)))
    boundary_c, boundary_h, boundary_w = shape
    # Maps NHWC-flattened feature index j to the training model's (C, H, W)
    # flat index, so exactly one downstream weight matrix absorbs the layout
    # change at compile time.
    nhwc_permutation = (
        np.arange(boundary_c * boundary_h * boundary_w)
        .reshape(boundary_c, boundary_h, boundary_w)
        .transpose(1, 2, 0)
        .ravel()
    )
    shape = (int(np.prod(shape)),)
    for layer in network._classifier_layers:
        walk(layer)
    flush()

    if len(mask_specs) != len(network.masks()):
        raise CompileError(
            f"compiled {len(mask_specs)} masks but the network has {len(network.masks())}"
        )

    plan = EnginePlan(
        dtype=dtype,
        input_shape=input_shape,
        kernels=kernels,
        mask_specs=mask_specs,
        head_permutation=nhwc_permutation,  # still pending if no trunk Linear consumed it
    )
    for task in network.registry:
        plan.add_task(task)
    return plan
